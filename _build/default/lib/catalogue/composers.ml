type composer = { name : string; dates : string; nationality : string }
type m = composer list
type n = (string * string) list

let composer ~name ~dates ~nationality = { name; dates; nationality }
let unknown_dates = "????-????"
let pair_of c = (c.name, c.nationality)
let canon_m m = List.sort_uniq compare m
let equal_m m1 m2 = canon_m m1 = canon_m m2

let pp_composer ppf c =
  Fmt.pf ppf "%s, %s, %s" c.name c.dates c.nationality

let m_space =
  Bx.Model.make ~name:"M" ~equal:equal_m
    ~pp:(Fmt.brackets (Fmt.list ~sep:Fmt.semi pp_composer))

let n_space =
  Bx.Model.make ~name:"N"
    ~equal:(fun a b -> a = b)
    ~pp:
      (Fmt.brackets
         (Fmt.list ~sep:Fmt.semi
            (Fmt.pair ~sep:(Fmt.any ", ") Fmt.string Fmt.string)))

(* Consistency (section 4): (i) every composer in m has an entry in n with
   the same name and nationality; (ii) every entry in n has such a
   composer in m. *)
let consistent m n =
  let pairs_m = List.map pair_of m in
  List.for_all (fun c -> List.mem (pair_of c) n) m
  && List.for_all (fun p -> List.mem p pairs_m) n

(* Forward restoration: delete entries of n with no matching composer;
   append missing pairs at the end in alphabetical order (by name, then
   nationality), without duplicates. *)
let fwd m n =
  let pairs_m = List.sort_uniq compare (List.map pair_of m) in
  let kept = List.filter (fun p -> List.mem p pairs_m) n in
  let missing = List.filter (fun p -> not (List.mem p kept)) pairs_m in
  kept @ missing

(* Backward restoration: delete composers with no matching entry; add a
   composer with unknown dates for each pair not derivable from the kept
   composers. *)
let bwd m n =
  let kept = List.filter (fun c -> List.mem (pair_of c) n) m in
  let derivable = List.map pair_of kept in
  let missing =
    List.sort_uniq compare
      (List.filter (fun p -> not (List.mem p derivable)) n)
  in
  canon_m
    (kept
    @ List.map
        (fun (name, nationality) ->
          { name; dates = unknown_dates; nationality })
        missing)

let bx = Bx.Symmetric.make ~name:"COMPOSERS" ~consistent ~fwd ~bwd

let template =
  let open Bx_repo in
  Template.make ~title:"COMPOSERS"
    ~classes:[ Template.Precise ]
    ~overview:
      "This example stands for many cases where two slightly, but \
       significantly, different representations of the same real world \
       data are needed. The definition of consistency is easy, but there \
       is a choice of ways to restore consistency."
    ~models:
      [
        Template.model_desc ~name:"M"
          "A model m comprises a set of (unrelated) objects of class \
           Composer, representing musical composers, each with a name, \
           dates and nationality.";
        Template.model_desc ~name:"N"
          "A model n is an ordered list of pairs, each comprising a name \
           and a nationality.";
      ]
    ~consistency:
      "Models m and n are consistent if they embody the same set of \
       (name, nationality) pairs: (i) for every composer in m there is at \
       least one entry in n with the same name and nationality; and (ii) \
       for every entry in n there is at least one element of m with the \
       same name and nationality (there may be many such, each with \
       distinct dates)."
    ~restoration:
      {
        Template.rest_forward =
          "Produce a modified version of n by deleting from n any entry \
           for which there is no element of m with the same name and \
           nationality, and adding at the end of n an entry comprising \
           each (name, nationality) pair derivable from an element of m \
           but not already occurring in n. Such additional entries should \
           be in alphabetical order by name, and within name, by \
           nationality; no duplicates should be added.";
        Template.rest_backward =
          "Produce a modified version of m by deleting from m any \
           composer for which there is no entry in n with the same name \
           and nationality, and adding to m a new composer for each \
           (name, nationality) pair that occurs in n but is not derivable \
           from an element already occurring in m. The dates of any newly \
           added composer should be ????-????.";
      }
    ~properties:
      Bx.Properties.
        [
          Satisfies Correct;
          Satisfies Hippocratic;
          Violates Undoable;
          Satisfies Simply_matching;
        ]
    ~variants:
      [
        Template.variant ~name:"name-as-key"
          "Do we ever modify the name and/or nationality of an existing \
           composer, or do we create a new composer in the event of any \
           mismatch? If name is a key in the models then there is no \
           choice: see the name-key variant, which updates nationality in \
           place.";
        Template.variant ~name:"insertion-position"
          "Where in the list n is a new composer added? Choices include \
           at the beginning or at the end; an alphabetically determined \
           position would force reordering of user-added composers and \
           lose hippocraticness.";
        Template.variant ~name:"fresh-dates"
          "What dates are used for a newly added composer in m? The base \
           example uses ????-????; any fixed token works.";
      ]
    ~discussion:
      "This has been used as an example of why undoability is too strong. \
       Consider a composer currently present (just once) in both of a \
       consistent pair of models. If we delete it from n, and enforce \
       consistency on m, the representation of the composer in m, \
       including this composer's dates, is lost. If we now restore it to \
       n and re-enforce consistency on m, then the absence of any extra \
       information besides the models means that the dates cannot be \
       restored, so m cannot return to exactly its original state."
    ~references:
      [
        Reference.make ~authors:[ "Perdita Stevens" ]
          ~title:"A Landscape of Bidirectional Model Transformations"
          ~venue:"GTTSE, Springer LNCS 5235" ~year:2008
          ~doi:"10.1007/978-3-540-88643-3_9" ();
        Reference.make
          ~authors:
            [
              "Aaron Bohannon"; "J. Nathan Foster"; "Benjamin C. Pierce";
              "Alexandre Pilkiewicz"; "Alan Schmitt";
            ]
          ~title:"Boomerang: Resourceful Lenses for String Data"
          ~venue:"POPL" ~year:2008 ~doi:"10.1145/1328438.1328487" ();
      ]
    ~authors:
      [
        Bx_repo.Contributor.make ~affiliation:"University of Edinburgh"
          "Perdita Stevens";
        Bx_repo.Contributor.make ~affiliation:"University of Edinburgh"
          "James McKinna";
        Bx_repo.Contributor.make ~affiliation:"University of Edinburgh"
          "James Cheney";
      ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/composers.ml";
      ]
    ()

type undo_trace = {
  initial_m : m;
  initial_n : n;
  n_after_delete : n;
  m_after_first_bwd : m;
  n_after_restore : n;
  m_after_second_bwd : m;
  dates_lost : bool;
}

let undoability_counterexample () =
  let britten =
    { name = "Britten"; dates = "1913-1976"; nationality = "English" }
  in
  let tippett =
    { name = "Tippett"; dates = "1905-1998"; nationality = "English" }
  in
  let initial_m = canon_m [ britten; tippett ] in
  let initial_n = fwd initial_m [] in
  assert (consistent initial_m initial_n);
  (* Delete Britten from n and enforce consistency on m: the dates go. *)
  let n_after_delete =
    List.filter (fun (name, _) -> name <> "Britten") initial_n
  in
  let m_after_first_bwd = bwd initial_m n_after_delete in
  (* Restore the entry to n and enforce consistency on m again. *)
  let n_after_restore = initial_n in
  let m_after_second_bwd = bwd m_after_first_bwd n_after_restore in
  {
    initial_m;
    initial_n;
    n_after_delete;
    m_after_first_bwd;
    n_after_restore;
    m_after_second_bwd;
    dates_lost = not (equal_m initial_m m_after_second_bwd);
  }
