open Bx_models

let type_of_attr = function
  | Uml.String_t -> Relational.Text_t
  | Uml.Integer_t -> Relational.Int_t
  | Uml.Boolean_t -> Relational.Bool_t

let attr_of_type = function
  | Relational.Text_t -> Uml.String_t
  | Relational.Int_t -> Uml.Integer_t
  | Relational.Bool_t -> Uml.Boolean_t

let col_of_attr (a : Uml.attribute) =
  Relational.column ~primary:a.Uml.is_key a.Uml.attr_name
    (type_of_attr a.Uml.attr_type)

let attr_of_col (c : Relational.column) =
  Uml.attribute ~is_key:c.Relational.primary c.Relational.col_name
    (attr_of_type c.Relational.col_type)

let table_of_class (c : Uml.clazz) =
  Relational.table c.Uml.class_name (List.map col_of_attr c.Uml.attributes)

let class_of_table (t : Relational.table) =
  Uml.clazz ~persistent:true t.Relational.table_name
    (List.map attr_of_col t.Relational.columns)

let uml_space =
  Bx.Model.make ~name:"UML" ~equal:Uml.equal ~pp:Uml.pp

let schema_space =
  Bx.Model.make ~name:"RDBMS" ~equal:Relational.equal_schema
    ~pp:Relational.pp_schema

let derive model = List.map table_of_class (Uml.persistent_classes model)

let consistent model schema =
  Relational.equal_schema (derive model) schema

let fwd model _schema = derive model

let bwd model schema =
  let hidden = List.filter (fun c -> not c.Uml.persistent) model in
  hidden @ List.map class_of_table schema

let bx = Bx.Symmetric.make ~name:"UML2RDBMS" ~consistent ~fwd ~bwd

let template =
  let open Bx_repo in
  Template.make ~title:"UML2RDBMS"
    ~classes:[ Template.Precise ]
    ~overview:
      "The classic mapping between a UML class diagram and a relational \
       schema: persistent classes correspond to tables, attributes to \
       typed columns, key attributes to primary keys."
    ~models:
      [
        Template.model_desc ~name:"UML"
          "A set of classes, each with a name, a persistence flag and \
           typed attributes, some marked as keys.";
        Template.model_desc ~name:"RDBMS"
          "A set of tables, each with a name and typed columns, some \
           forming the primary key.";
      ]
    ~consistency:
      "The schema's tables are exactly the images of the model's \
       persistent classes: same names, and columns matching the \
       attributes one to one (name, type via String/Text, \
       Integer/Int, Boolean/Bool, key flag via primary)."
    ~restoration:
      {
        Template.rest_forward =
          "Replace the schema by the derived one: one table per \
           persistent class. Tables with no corresponding class are \
           dropped; missing ones are created; mismatching ones rebuilt.";
        Template.rest_backward =
          "Keep all non-persistent classes (they are private to the UML \
           side); replace the persistent classes by those derived from \
           the schema's tables.";
      }
    ~properties:
      Bx.Properties.
        [
          Satisfies Correct;
          Satisfies Hippocratic;
          Satisfies Undoable;
          Satisfies History_ignorant;
        ]
    ~variants:
      [
        Template.variant ~name:"private-columns"
          "Let the database hold extra columns unknown to the class \
           model (audit fields, denormalisations). Consistency then only \
           requires the class's columns to be a subset, backward \
           restoration must preserve the extra columns, and undoability \
           is lost exactly as in COMPOSERS.";
        Template.variant ~name:"inheritance"
          "Map inheritance hierarchies to tables: one table per class, \
           per concrete class, or per hierarchy — the choice multiplies \
           the example's variants in the literature.";
      ]
    ~discussion:
      "The example every MDE bx paper reaches for. In this base form the \
       persistent part of the model and the schema determine each other, \
       so restoration is undoable and history-ignorant in both \
       directions; the private-columns variant shows how quickly that \
       degrades in practice."
    ~references:
      [
        Reference.make ~authors:[ "Object Management Group" ]
          ~title:"MOF 2.0 Query/View/Transformation Specification"
          ~venue:"OMG" ~year:2008 ();
        Reference.make ~authors:[ "Perdita Stevens" ]
          ~title:
            "Bidirectional model transformations in QVT: Semantic issues \
             and open questions"
          ~venue:"SoSyM 9(1)" ~year:2010 ~doi:"10.1007/s10270-008-0109-9" ();
      ]
    ~authors:
      [
        Contributor.make ~affiliation:"University of Edinburgh"
          "Perdita Stevens";
      ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/uml2rdbms.ml";
      ]
    ()
