(** SCHEMA-COEVOLUTION — an INDUSTRIAL-class entry.

    The paper (section 2) anticipates industrial-scale examples,
    "accompanied by appropriate artefacts", which "clearly could not be
    expected to be explained with full precision separately from their
    artefacts".  This entry records such a case — co-evolving an
    application's class model and its production database schema across
    releases — described at the level of precision an industrial entry
    can offer, with its artefacts pointing into this repository's
    executable UML2RDBMS bx and the BenchmarX-style scenario driver. *)

val template : Bx_repo.Template.t
