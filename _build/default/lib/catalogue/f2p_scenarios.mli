(** BenchmarX-style measurement scenarios for FAMILIES2PERSONS.

    The paper's section 2 (and its section 6) discusses the companion
    BenchmarX paper's position that benchmarks are a distinct class of
    repository entry.  This module provides the runnable workload for the
    FAMILIES2PERSONS entry's BENCHMARK classification: deterministic
    scenario generators in the BenchmarX style (batch vs incremental,
    forward vs backward), an interpreter that alternates edits with
    restoration, and invariant checks on every step. *)

open Bx_models.Genealogy

(** One step of a scenario: edit one side, then restore the other. *)
type step =
  | Edit_families of string * (families -> families)
  | Edit_persons of string * (persons -> persons)

type scenario = {
  scenario_name : string;
  description : string;
  initial_families : families;
  steps : step list;
}

type outcome = {
  final_families : families;
  final_persons : persons;
  restorations : int;  (** Number of restoration calls performed. *)
  consistent_after_every_step : bool;
}

val synthetic_families : int -> families
(** [synthetic_families k]: [k] families, each with two parents and two
    children, deterministic names. *)

val batch_forward : int -> scenario
(** Create [k] families at once, then derive the persons register in one
    restoration — BenchmarX's batch-forward shape. *)

val incremental_forward : int -> scenario
(** Add families one at a time, restoring after each — the incremental
    shape that stresses hippocraticness (earlier persons must not be
    disturbed). *)

val backward_churn : int -> scenario
(** Starting consistent, repeatedly delete and re-add persons, restoring
    the families after each step — the shape that exhibits information
    loss (roles forgotten). *)

val run : ?policy:Families2persons.policy -> scenario -> outcome
(** Interpret a scenario, restoring after every edit and checking
    consistency each time. *)

val all : int -> scenario list
(** The three scenario shapes at the given size. *)
