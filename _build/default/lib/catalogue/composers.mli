(** COMPOSERS — the paper's worked example (section 4), implemented with
    exactly the semantics its template prescribes.

    Model [M]: a set of (unrelated) composer objects, each with a name,
    dates and nationality.  Model [N]: an ordered list of (name,
    nationality) pairs.  The models are consistent when they embody the
    same set of (name, nationality) pairs.

    Restoration follows the template to the letter:
    - {e forward} (M authoritative): delete entries of [N] with no matching
      composer, then append each missing (name, nationality) pair at the
      end, in alphabetical order by name then nationality, without
      duplicates;
    - {e backward} (N authoritative): delete composers with no matching
      entry, then add a new composer for each underivable pair, with dates
      [????-????].

    Claimed properties (all machine-checked in the test suite): correct,
    hippocratic, {e not} undoable, simply matching. *)

type composer = {
  name : string;
  dates : string;  (** e.g. ["1685-1750"]; private to the M side. *)
  nationality : string;
}

type m = composer list
(** Treated as a set: order and duplicates are irrelevant; {!canon_m}
    computes the canonical form. *)

type n = (string * string) list
(** Ordered (name, nationality) pairs; order is significant, duplicates
    permitted. *)

val composer : name:string -> dates:string -> nationality:string -> composer

val unknown_dates : string
(** ["????-????"], the dates given to composers created by backward
    restoration. *)

val canon_m : m -> m
(** Sorted, duplicate-free set representative. *)

val equal_m : m -> m -> bool
(** Set equality. *)

val m_space : m Bx.Model.t
val n_space : n Bx.Model.t

val bx : (m, n) Bx.Symmetric.t
(** The base example's bx. *)

val template : Bx_repo.Template.t
(** The repository entry, mirroring the paper's section 4 instance
    (version 0.1, PRECISE, no reviewers yet). *)

(** The undoability counterexample of the paper's Discussion field, as an
    executable trace: a composer is deleted from [n], consistency is
    enforced on [m], the entry is restored to [n] and consistency enforced
    again — and the dates cannot come back. *)
type undo_trace = {
  initial_m : m;
  initial_n : n;
  n_after_delete : n;
  m_after_first_bwd : m;
  n_after_restore : n;
  m_after_second_bwd : m;
  dates_lost : bool;
}

val undoability_counterexample : unit -> undo_trace
