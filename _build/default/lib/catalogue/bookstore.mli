(** BOOKSTORE — a tree lens in the tradition of Foster et al.'s
    "Combinators for bidirectional tree transformations": an XML-ish store
    of books (title, author, price) viewed as a flat price list (title,
    price).  Authors are the hidden data; [put] aligns books by title so
    an author follows its book when the view is reordered. *)

type book = { title : string; author : string; price : int }

val store_of_books : book list -> string Bx_models.Tree.t
(** Encode as a tree: a ["store"] node whose children are ["book"] nodes
    with ["title="], ["author="] and ["price="] leaf children. *)

val books_of_store : string Bx_models.Tree.t -> book list
(** Decode; unlabelled or malformed children are ignored. *)

val book_of_node : string Bx_models.Tree.t -> book option
(** Decode one ["book"] node; [None] when a field is missing or the
    price is not an integer. *)

val lens : (string Bx_models.Tree.t, (string * int) list) Bx.Lens.t
(** get: the (title, price) list in store order.  put: books keep their
    authors by title alignment; new titles get author ["unknown"].
    Well-behaved but not very well-behaved (PutPut fails when a title is
    dropped and re-added). *)

val store_space : string Bx_models.Tree.t Bx.Model.t
val view_space : (string * int) list Bx.Model.t

val template : Bx_repo.Template.t
