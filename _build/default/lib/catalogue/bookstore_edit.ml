open Bx_models

type store = string Tree.t
type view_edit = (string * int) Bx.Elens.list_edit
type store_edit = string Tree_edit.edit

let well_formed (store : store) =
  List.for_all
    (fun (c : store) ->
      String.equal c.Tree.label "book" && Bookstore.book_of_node c <> None)
    store.Tree.children

(* Bookstore re-exports book parsing; recover (title, price, author). *)
let book_fields node =
  Option.map
    (fun (b : Bookstore.book) -> (b.Bookstore.title, b.Bookstore.price, b.Bookstore.author))
    (Bookstore.book_of_node node)

let book_node ~title ~author ~price : store =
  Tree.node "book"
    [
      Tree.leaf ("title=" ^ title);
      Tree.leaf ("author=" ^ author);
      Tree.leaf ("price=" ^ string_of_int price);
    ]

let view_of_store (store : store) =
  List.filter_map
    (fun node ->
      Option.map (fun (t, p, _) -> (t, p)) (book_fields node))
    store.Tree.children

let view_module : (view_edit, (string * int) list) Bx.Elens.edit_module =
  Bx.Elens.list_edit_module ()

let store_module : (store_edit, store) Bx.Elens.edit_module =
  Tree_edit.edit_module ()

let apply_store e store =
  Option.value ~default:store (Tree_edit.apply e store)

(* Translate one view operation against the current store. *)
let bwd_op op (store : store) : store_edit =
  let nth_book i = List.nth_opt store.Tree.children i in
  match (op : (string * int) Bx.Elens.list_op) with
  | Bx.Elens.Insert_at (i, (title, price)) ->
      [ Tree_edit.Insert_child ([], i, book_node ~title ~author:"unknown" ~price) ]
  | Bx.Elens.Delete_at i -> [ Tree_edit.Delete_child ([], i) ]
  | Bx.Elens.Update_at (i, (title, price)) -> (
      match Option.bind (nth_book i) book_fields with
      | None -> []
      | Some (old_title, old_price, _) ->
          (* Relabel exactly the changed leaves. *)
          (if String.equal old_title title then []
           else [ Tree_edit.Relabel ([ i; 0 ], "title=" ^ title) ])
          @
          if old_price = price then []
          else [ Tree_edit.Relabel ([ i; 2 ], "price=" ^ string_of_int price) ])

(* Translate one tree operation to a view edit. *)
let fwd_op op (store : store) : view_edit =
  match (op : string Tree_edit.op) with
  | Tree_edit.Insert_child ([], i, subtree) -> (
      match book_fields subtree with
      | Some (title, price, _) -> [ Bx.Elens.Insert_at (i, (title, price)) ]
      | None -> [])
  | Tree_edit.Delete_child ([], i) -> [ Bx.Elens.Delete_at i ]
  | Tree_edit.Relabel ([ i; field ], label) -> (
      match Option.bind (List.nth_opt store.Tree.children i) book_fields with
      | None -> []
      | Some (title, price, _) -> (
          let value prefix =
            if String.length label > String.length prefix
               && String.sub label 0 (String.length prefix) = prefix
            then Some (String.sub label (String.length prefix)
                         (String.length label - String.length prefix))
            else None
          in
          match field with
          | 0 -> (
              match value "title=" with
              | Some t -> [ Bx.Elens.Update_at (i, (t, price)) ]
              | None -> [])
          | 2 -> (
              match Option.bind (value "price=") int_of_string_opt with
              | Some p -> [ Bx.Elens.Update_at (i, (title, p)) ]
              | None -> [])
          | _ -> [] (* author relabels are private to the store side *)))
  | Tree_edit.Relabel (_, _)
  | Tree_edit.Insert_child (_, _, _)
  | Tree_edit.Delete_child (_, _) ->
      [] (* deeper structural edits are outside the documented domain *)

(* Orientation: the lens's left edit language is the view's (price-list
   rows), the right is the store's (tree edits); fwd realises view edits
   in the store, bwd abstracts store edits back to the view. *)
let lens : (store, view_edit, store_edit) Bx.Elens.t =
  Bx.Elens.make ~name:"BOOKSTORE-EDIT" ~init:(Tree.node "store" [])
    ~fwd:(fun view_edits store ->
      let out, store' =
        List.fold_left
          (fun (acc, store) op ->
            let tree_ops = bwd_op op store in
            (acc @ tree_ops, apply_store tree_ops store))
          ([], store) view_edits
      in
      (out, store'))
    ~bwd:(fun tree_edits store ->
      let out, store' =
        List.fold_left
          (fun (acc, store) op ->
            let view_ops = fwd_op op store in
            (acc @ view_ops, apply_store [ op ] store))
          ([], store) tree_edits
      in
      (out, store'))

let initial : store = Tree.node "store" []

let template =
  let open Bx_repo in
  Template.make ~title:"BOOKSTORE-EDIT"
    ~classes:[ Template.Precise ]
    ~overview:
      "The delta-based bookstore: price-list edits against tree edits on \
       the store, with the current store as the lens's complement. An \
       update to one book's price translates to a relabel of exactly one \
       tree leaf."
    ~models:
      [
        Template.model_desc ~name:"PriceListEdits"
          "Position-based insertions, deletions and updates of (title, \
           price) rows.";
        Template.model_desc ~name:"StoreEdits"
          "Tree edits (relabel, insert-child, delete-child by path) on \
           the store of book nodes.";
      ]
    ~consistency:
      "As in BOOKSTORE: the price list equals the store's books \
       projected to (title, price), in order; the lens maintains a \
       consistent pair via its complement."
    ~restoration:
      {
        Template.rest_forward =
          "Translate each view edit: insertion becomes a whole book \
           subtree with an unknown author; deletion deletes the subtree; \
           an update relabels only the leaves whose values changed.";
        Template.rest_backward =
          "Translate each tree edit: book insertions and deletions map \
           to row edits; title and price relabels become row updates; \
           author relabels translate to the empty edit — authors are \
           the store's private data.";
      }
    ~properties:
      Bx.Properties.[ Satisfies Correct; Satisfies Hippocratic ]
    ~variants:
      [
        Template.variant ~name:"strict-domain"
          "Reject out-of-shape tree edits (deep structural changes) \
           instead of translating them to the empty edit.";
      ]
    ~discussion:
      "Compare with BOOKSTORE's state-based put, which rebuilds the \
       whole store and relies on title alignment to rescue authors: the \
       edit lens never touches unrelated books, so author preservation \
       is structural rather than heuristic. The cost is a domain \
       discipline on which tree edits are translatable."
    ~references:
      [
        Reference.make
          ~authors:[ "Martin Hofmann"; "Benjamin C. Pierce"; "Daniel Wagner" ]
          ~title:"Edit Lenses" ~venue:"POPL" ~year:2012
          ~doi:"10.1145/2103656.2103715" ();
      ]
    ~authors:
      [ Contributor.make ~affiliation:"University of Oxford" "Jeremy Gibbons" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/bookstore_edit.ml";
        Template.artefact ~name:"tree-edit-substrate" ~kind:Template.Code
          "lib/models/tree_edit.ml";
      ]
    ()
