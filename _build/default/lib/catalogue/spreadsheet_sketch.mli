(** SPREADSHEET — a SKETCH-class entry: a situation where a bx would
    clearly apply but whose details are not worked out (section 2 of the
    paper anticipates exactly this class, "of particular benefit to
    outsiders wondering whether bx are of interest to them").  There is
    deliberately no executable artefact. *)

val template : Bx_repo.Template.t
