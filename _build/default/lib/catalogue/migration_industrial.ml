let template =
  let open Bx_repo in
  Template.make ~title:"SCHEMA-COEVOLUTION"
    ~classes:[ Template.Industrial ]
    ~overview:
      "Keeping an application's class model and its production database \
       schema consistent across releases, where both sides are edited \
       concurrently: modellers refactor classes while DBAs tune the \
       schema. An industrial-scale instance of UML2RDBMS."
    ~models:
      [
        Template.model_desc ~name:"ApplicationModel"
          "The release-branch class model, thousands of classes, under \
           version control.";
        Template.model_desc ~name:"ProductionSchema"
          "The deployed relational schema, including DBA-owned indexes, \
           denormalisations and audit columns that the model never sees.";
      ]
    ~consistency:
      "Every persistent class has a corresponding table whose columns \
       include the class's attributes; tables may carry extra DBA-owned \
       columns (the private-columns variant of UML2RDBMS at scale)."
    ~restoration:
      {
        Template.rest_forward =
          "Generate migration scripts from model changes; DBA-owned \
           columns are untouched.";
        Template.rest_backward =
          "Reverse-engineer schema hotfixes into model change requests; \
           the mapping of types and keys follows the PRECISE UML2RDBMS \
           entry.";
      }
    ~properties:
      Bx.Properties.[ Satisfies Correct; Violates Undoable ]
    ~discussion:
      "Industrial entries cannot be precise separately from their \
       artefacts; this one delegates its exact semantics to the \
       executable UML2RDBMS bx and exercises scale through the scenario \
       driver. The operational lesson it records: the private-columns \
       freedom that makes the bx practical is exactly what destroys \
       undoability, so migrations must be journaled rather than derived."
    ~authors:
      [
        Contributor.make ~affiliation:"University of Edinburgh" "Perdita Stevens";
      ]
    ~artefacts:
      [
        Template.artefact ~name:"precise-core" ~kind:Template.Code
          "lib/catalogue/uml2rdbms.ml";
        Template.artefact ~name:"scenario-driver" ~kind:Template.Code
          "lib/catalogue/f2p_scenarios.ml";
        Template.artefact ~name:"benchmarks" ~kind:Template.Sample_data
          "bench/main.ml (series P1, P7)";
      ]
    ()
