lib/catalogue/composers_edit.mli: Bx Bx_repo Composers
