lib/catalogue/composers_symlens.ml: Bx Bx_repo Composers Contributor List Option Reference Template
