lib/catalogue/spreadsheet_sketch.ml: Bx_repo Contributor Template
