lib/catalogue/composers_string.ml: Bx Bx_regex Bx_repo Bx_strlens Composers Contributor Cset Fun List Printf Reference Regex Slens String Template
