lib/catalogue/formatter.mli: Bx_regex Bx_repo Bx_strlens
