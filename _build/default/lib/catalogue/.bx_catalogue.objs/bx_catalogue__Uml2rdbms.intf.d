lib/catalogue/uml2rdbms.mli: Bx Bx_models Bx_repo
