lib/catalogue/celsius.mli: Bx Bx_models Bx_repo
