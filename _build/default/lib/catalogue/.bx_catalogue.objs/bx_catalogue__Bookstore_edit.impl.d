lib/catalogue/bookstore_edit.ml: Bookstore Bx Bx_models Bx_repo Contributor List Option Reference String Template Tree Tree_edit
