lib/catalogue/bookstore_edit.mli: Bx Bx_models Bx_repo
