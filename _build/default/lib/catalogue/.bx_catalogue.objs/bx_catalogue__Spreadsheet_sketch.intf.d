lib/catalogue/spreadsheet_sketch.mli: Bx_repo
