lib/catalogue/migration_industrial.mli: Bx_repo
