lib/catalogue/composers_symlens.mli: Bx Bx_repo Composers
