lib/catalogue/families2persons.ml: Bx Bx_models Bx_repo Contributor Genealogy Hashtbl List Option Reference Template
