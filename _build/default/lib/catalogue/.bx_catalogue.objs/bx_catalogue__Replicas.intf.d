lib/catalogue/replicas.mli: Bx Bx_repo
