lib/catalogue/composers_variants.ml: Bx Composers List Printf
