lib/catalogue/composers_string.mli: Bx_repo Bx_strlens Composers
