lib/catalogue/uml2rdbms.ml: Bx Bx_models Bx_repo Contributor List Reference Relational Template Uml
