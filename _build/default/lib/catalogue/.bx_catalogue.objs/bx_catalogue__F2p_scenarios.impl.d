lib/catalogue/f2p_scenarios.ml: Array Bx Bx_models Families2persons Fun List Printf
