lib/catalogue/families2persons.mli: Bx Bx_models Bx_repo
