lib/catalogue/bookstore.mli: Bx Bx_models Bx_repo
