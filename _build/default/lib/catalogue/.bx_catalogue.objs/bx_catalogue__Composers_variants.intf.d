lib/catalogue/composers_variants.mli: Bx Composers
