lib/catalogue/people.mli: Bx Bx_repo
