lib/catalogue/composers.mli: Bx Bx_repo
