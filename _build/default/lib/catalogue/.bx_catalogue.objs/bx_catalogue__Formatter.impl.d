lib/catalogue/formatter.ml: Bx Bx_regex Bx_repo Bx_strlens Canonizer Contributor Cset List Reference Regex Slens String Template
