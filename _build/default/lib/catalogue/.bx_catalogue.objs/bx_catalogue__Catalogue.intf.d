lib/catalogue/catalogue.mli: Bx_repo
