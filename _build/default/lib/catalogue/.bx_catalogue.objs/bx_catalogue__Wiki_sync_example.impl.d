lib/catalogue/wiki_sync_example.ml: Bx Bx_repo Contributor Reference Template
