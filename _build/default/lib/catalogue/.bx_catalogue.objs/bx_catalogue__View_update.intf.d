lib/catalogue/view_update.mli: Bx Bx_models Bx_repo
