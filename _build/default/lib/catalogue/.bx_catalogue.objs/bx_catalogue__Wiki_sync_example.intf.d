lib/catalogue/wiki_sync_example.mli: Bx Bx_repo
