lib/catalogue/migration_industrial.ml: Bx Bx_repo Contributor Template
