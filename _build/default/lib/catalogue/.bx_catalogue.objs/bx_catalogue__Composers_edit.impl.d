lib/catalogue/composers_edit.ml: Bx Bx_repo Composers Contributor List Option Reference Template
