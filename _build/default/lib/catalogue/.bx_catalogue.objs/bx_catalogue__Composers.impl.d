lib/catalogue/composers.ml: Bx Bx_repo Fmt List Reference Template
