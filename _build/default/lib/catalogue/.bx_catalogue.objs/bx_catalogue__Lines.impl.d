lib/catalogue/lines.ml: Bx Bx_repo Contributor Fmt List String Template
