lib/catalogue/replicas.ml: Bx Bx_repo Contributor Fmt Reference String Template
