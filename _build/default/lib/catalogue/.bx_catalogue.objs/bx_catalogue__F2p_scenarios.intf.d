lib/catalogue/f2p_scenarios.mli: Bx_models Families2persons
