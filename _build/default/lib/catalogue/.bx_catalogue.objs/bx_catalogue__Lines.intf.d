lib/catalogue/lines.mli: Bx Bx_repo
