lib/catalogue/bookstore.ml: Array Bx Bx_models Bx_repo Contributor Fmt List Option Reference String Template Tree
