lib/catalogue/view_update.ml: Bx Bx_models Bx_repo Contributor Fmt Reference Relalg Relational Template
