lib/catalogue/celsius.ml: Bx Bx_models Bx_repo Contributor Rational Template
