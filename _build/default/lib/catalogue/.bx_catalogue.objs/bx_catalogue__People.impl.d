lib/catalogue/people.ml: Bx Bx_repo Contributor Fmt Template
