open Bx_models

let nine_fifths = Rational.make 9 5
let thirty_two = Rational.of_int 32

let to_fahrenheit c = Rational.add (Rational.mul c nine_fifths) thirty_two
let to_celsius f = Rational.div (Rational.sub f thirty_two) nine_fifths

let iso = Bx.Iso.make ~name:"CELSIUS" ~fwd:to_fahrenheit ~bwd:to_celsius
let bx = Bx.Symmetric.of_iso iso ~equal_b:Rational.equal

let space name =
  Bx.Model.make ~name ~equal:Rational.equal ~pp:Rational.pp

let celsius_space = space "celsius"
let fahrenheit_space = space "fahrenheit"

let template =
  let open Bx_repo in
  Template.make ~title:"CELSIUS"
    ~classes:[ Template.Precise ]
    ~overview:
      "Celsius and Fahrenheit temperatures kept consistent by the affine \
       conversion f = 9c/5 + 32 — the canonical bijective bx, computed \
       over exact rationals."
    ~models:
      [
        Template.model_desc ~name:"Celsius" "A rational temperature in degrees Celsius.";
        Template.model_desc ~name:"Fahrenheit" "A rational temperature in degrees Fahrenheit.";
      ]
    ~consistency:"f = 9c/5 + 32."
    ~restoration:
      {
        Template.rest_forward = "Apply the conversion.";
        Template.rest_backward = "Apply the inverse conversion.";
      }
    ~properties:
      Bx.Properties.
        [
          Satisfies Bijective;
          Satisfies Correct;
          Satisfies Hippocratic;
          Satisfies Undoable;
          Satisfies History_ignorant;
          Satisfies Oblivious;
        ]
    ~variants:
      [
        Template.variant ~name:"floating-point"
          "Compute over IEEE floats: round-tripping then fails on values \
           like 0.1, a reminder that bx laws are sensitive to the carrier \
           set's arithmetic.";
      ]
    ~discussion:
      "Included as the repository's minimal PRECISE entry and as a \
       glossary anchor for the bijective, oblivious end of the property \
       spectrum."
    ~authors:
      [ Contributor.make ~affiliation:"University of Oxford" "Jeremy Gibbons" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/celsius.ml";
      ]
    ()
