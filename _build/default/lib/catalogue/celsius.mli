(** CELSIUS — temperature unit conversion as a bijective bx, computed over
    exact rationals so the inverse laws hold on the nose (floating point
    would violate them, which is itself an instructive variant). *)

val to_fahrenheit : Bx_models.Rational.t -> Bx_models.Rational.t
(** f = c * 9/5 + 32. *)

val to_celsius : Bx_models.Rational.t -> Bx_models.Rational.t

val iso : (Bx_models.Rational.t, Bx_models.Rational.t) Bx.Iso.t
val bx : (Bx_models.Rational.t, Bx_models.Rational.t) Bx.Symmetric.t

val celsius_space : Bx_models.Rational.t Bx.Model.t
val fahrenheit_space : Bx_models.Rational.t Bx.Model.t

val template : Bx_repo.Template.t
