(** UML2RDBMS — "the notorious UML class diagram to RDBMS schema example"
    (the paper's introduction), in the QVT tradition: persistent classes
    correspond to tables, attributes to typed columns, key attributes to
    primary-key columns.

    Non-persistent classes are private to the UML side and survive
    restoration untouched.  Because a table determines its class exactly
    (and vice versa for persistent classes), this bx is {e undoable} —
    a useful contrast with COMPOSERS; the variant where the database may
    hold private columns would lose that, as the template's Variants field
    records. *)

val attr_of_col : Bx_models.Relational.column -> Bx_models.Uml.attribute
val col_of_attr : Bx_models.Uml.attribute -> Bx_models.Relational.column
val table_of_class : Bx_models.Uml.clazz -> Bx_models.Relational.table
val class_of_table : Bx_models.Relational.table -> Bx_models.Uml.clazz

val uml_space : Bx_models.Uml.model Bx.Model.t
val schema_space : Bx_models.Relational.schema Bx.Model.t

val bx : (Bx_models.Uml.model, Bx_models.Relational.schema) Bx.Symmetric.t
(** Consistency: the schema's tables are exactly the images of the model's
    persistent classes.  Forward derives the schema; backward rebuilds the
    persistent classes from the tables, keeping non-persistent classes. *)

val template : Bx_repo.Template.t
