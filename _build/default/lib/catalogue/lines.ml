let valid_document s =
  String.equal s "" || s.[String.length s - 1] = '\n'

let valid_lines ls = List.for_all (fun l -> not (String.contains l '\n')) ls

let split s =
  if String.equal s "" then []
  else
    let pieces = String.split_on_char '\n' s in
    (* A valid document ends in '\n', so the last piece is empty. *)
    List.filteri (fun i _ -> i < List.length pieces - 1) pieces

let join ls = String.concat "" (List.map (fun l -> l ^ "\n") ls)

let iso = Bx.Iso.make ~name:"LINES" ~fwd:split ~bwd:join
let lens = Bx.Lens.of_iso iso
let bx = Bx.Symmetric.of_iso iso ~equal_b:(fun a b -> a = b)

let document_space =
  Bx.Model.make ~name:"document" ~equal:String.equal
    ~pp:(fun ppf s -> Fmt.pf ppf "%S" s)

let lines_space =
  Bx.Model.make ~name:"lines"
    ~equal:(fun a b -> a = b)
    ~pp:(Fmt.brackets (Fmt.list ~sep:Fmt.semi (Fmt.fmt "%S")))

let template =
  let open Bx_repo in
  Template.make ~title:"LINES"
    ~classes:[ Template.Precise ]
    ~overview:
      "A newline-terminated text document against its list of lines: the \
       degenerate but instructive case where consistency is a bijection."
    ~models:
      [
        Template.model_desc ~name:"Document"
          "A string that is empty or ends with a newline; lines contain \
           no newline themselves.";
        Template.model_desc ~name:"Lines"
          "A list of strings, none containing a newline.";
      ]
    ~consistency:"The document is exactly the lines, each terminated by a newline."
    ~restoration:
      {
        Template.rest_forward = "Split the document at newlines.";
        Template.rest_backward = "Concatenate the lines, terminating each.";
      }
    ~properties:
      Bx.Properties.
        [
          Satisfies Bijective;
          Satisfies Correct;
          Satisfies Hippocratic;
          Satisfies Undoable;
          Satisfies History_ignorant;
          Satisfies Oblivious;
        ]
    ~variants:
      [
        Template.variant ~name:"final-newline-optional"
          "Permit an unterminated final line: the relation becomes \
           non-bijective (documents 'a' and 'a\\n' map to the same lines) \
           and a choice of canonical form is needed — a quotient lens in \
           Boomerang terms.";
      ]
    ~discussion:
      "Useful as the first example of a bx and as a regression test for \
       frameworks: every property in the glossary holds, so any failure \
       is the framework's fault."
    ~authors:
      [ Contributor.make ~affiliation:"University of Edinburgh" "James Cheney" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/lines.ml";
      ]
    ()
