type t = {
  state_labels : Regex.t array;
  trans : (Cset.t * int) list array;
  accept : bool array;
}

let initial = 0

let build root =
  let ids = Hashtbl.create 64 in
  let labels = ref [] and count = ref 0 in
  let id_of r =
    match Hashtbl.find_opt ids r with
    | Some i -> (i, false)
    | None ->
        let i = !count in
        incr count;
        Hashtbl.add ids r i;
        labels := r :: !labels;
        (i, true)
  in
  let trans_tbl = Hashtbl.create 64 in
  let rec explore r =
    let i, fresh = id_of r in
    if fresh then begin
      let classes = Regex.derivative_classes r in
      let outgoing =
        List.filter_map
          (fun cls ->
            match Cset.choose cls with
            | None -> None
            | Some c ->
                let r' = Regex.deriv c r in
                let j = explore r' in
                Some (cls, j))
          classes
      in
      Hashtbl.replace trans_tbl i outgoing
    end;
    i
  in
  let _root_id = explore root in
  let n = !count in
  let state_labels = Array.make n Regex.empty in
  List.iteri
    (fun k r -> state_labels.(n - 1 - k) <- r)
    !labels;
  let trans = Array.make n [] in
  let accept = Array.make n false in
  for i = 0 to n - 1 do
    trans.(i) <- Hashtbl.find trans_tbl i;
    accept.(i) <- Regex.nullable state_labels.(i)
  done;
  { state_labels; trans; accept }

let size d = Array.length d.state_labels
let regex_of_state d i = d.state_labels.(i)
let states d = d.state_labels
let transitions d i = d.trans.(i)

let step d i c =
  let rec find = function
    | [] -> invalid_arg "Dfa.step: transition classes do not cover the byte"
    | (cls, j) :: rest -> if Cset.mem c cls then j else find rest
  in
  find d.trans.(i)

let accepting d i = d.accept.(i)

let run_from d i s =
  let st = ref i in
  String.iter (fun c -> st := step d !st c) s;
  !st

let accepts d s = accepting d (run_from d initial s)

let prefix_marks d s =
  let n = String.length s in
  let marks = Array.make (n + 1) false in
  let st = ref initial in
  marks.(0) <- accepting d initial;
  for i = 0 to n - 1 do
    st := step d !st s.[i];
    marks.(i + 1) <- accepting d !st
  done;
  marks

let is_empty_lang d = not (Array.exists Fun.id d.accept)

let shortest_accepted d =
  let n = size d in
  let visited = Array.make n false in
  let queue = Queue.create () in
  Queue.add (initial, []) queue;
  visited.(initial) <- true;
  let rec bfs () =
    if Queue.is_empty queue then None
    else
      let i, path = Queue.take queue in
      if accepting d i then
        Some (String.init (List.length path) (List.nth (List.rev path)))
      else begin
        List.iter
          (fun (cls, j) ->
            if not visited.(j) then begin
              visited.(j) <- true;
              match Cset.choose cls with
              | Some c -> Queue.add (j, c :: path) queue
              | None -> ()
            end)
          d.trans.(i);
        bfs ()
      end
  in
  bfs ()

(* Moore partition refinement.  Blocks are refined by acceptance and by
   the block each byte leads to, until stable. *)
let minimise d =
  let n = size d in
  if n = 0 then d
  else begin
    let block = Array.init n (fun i -> if d.accept.(i) then 1 else 0) in
    (* If all states agree on acceptance there is a single block. *)
    let normalise () =
      (* Renumber blocks densely in order of first occurrence. *)
      let mapping = Hashtbl.create 8 in
      let next = ref 0 in
      Array.iteri
        (fun i b ->
          match Hashtbl.find_opt mapping b with
          | Some b' -> block.(i) <- b'
          | None ->
              Hashtbl.add mapping b !next;
              block.(i) <- !next;
              incr next)
        block;
      !next
    in
    let count = ref (normalise ()) in
    let changed = ref true in
    while !changed do
      changed := false;
      (* Signature of a state: its block plus the blocks of all byte
         transitions. *)
      let signatures = Hashtbl.create n in
      let next_sig = ref 0 in
      let new_block = Array.make n 0 in
      for i = 0 to n - 1 do
        let sig_i =
          ( block.(i),
            List.map (fun (cls, j) -> (Cset.to_ranges cls, block.(j))) d.trans.(i)
          )
        in
        (* Transition lists may carve classes differently between states,
           so expand per byte for a canonical signature. *)
        let per_byte =
          Array.init 256 (fun b -> block.(step d i (Char.chr b)))
        in
        let key = (fst sig_i, Array.to_list per_byte) in
        match Hashtbl.find_opt signatures key with
        | Some b -> new_block.(i) <- b
        | None ->
            Hashtbl.add signatures key !next_sig;
            new_block.(i) <- !next_sig;
            incr next_sig
      done;
      if !next_sig <> !count then begin
        changed := true;
        count := !next_sig;
        Array.blit new_block 0 block 0 n
      end
    done;
    let block_count = normalise () in
    (* Reindex so the block of the old initial state is 0. *)
    let initial_block = block.(initial) in
    let rename b =
      if b = initial_block then 0
      else if b < initial_block then b + 1
      else b
    in
    Array.iteri (fun i b -> block.(i) <- rename b) block;
    (* Representative state of each block. *)
    let repr = Array.make block_count (-1) in
    Array.iteri (fun i b -> if repr.(b) < 0 then repr.(b) <- i) block;
    let state_labels = Array.map (fun r -> d.state_labels.(r)) repr in
    let accept = Array.map (fun r -> d.accept.(r)) repr in
    let trans =
      Array.map
        (fun r ->
          (* Group bytes by target block into maximal character sets. *)
          let targets = Array.init 256 (fun b -> block.(step d r (Char.chr b))) in
          let by_target = Hashtbl.create 4 in
          Array.iteri
            (fun b t ->
              let set =
                Option.value ~default:Cset.empty (Hashtbl.find_opt by_target t)
              in
              Hashtbl.replace by_target t
                (Cset.union set (Cset.singleton (Char.chr b))))
            targets;
          Hashtbl.fold (fun t set acc -> (set, t) :: acc) by_target []
          |> List.sort compare)
        repr
    in
    { state_labels; trans; accept }
  end

(* GNFA state elimination.  Two virtual states are added: a start S with
   an epsilon edge to state 0, and an accept F with epsilon edges from
   every accepting state.  Eliminating a state k replaces every path
   i -> k -> j by the regex R(i,k) R(k,k)* R(k,j), merged into R(i,j). *)
let to_regex d =
  let n = size d in
  if n = 0 then Regex.empty
  else begin
    let start = n and final = n + 1 in
    let edges : (int * int, Regex.t) Hashtbl.t = Hashtbl.create 64 in
    let get i j = Hashtbl.find_opt edges (i, j) in
    let add i j r =
      match get i j with
      | None -> Hashtbl.replace edges (i, j) r
      | Some r0 -> Hashtbl.replace edges (i, j) (Regex.alt r0 r)
    in
    for i = 0 to n - 1 do
      List.iter (fun (cls, j) -> add i j (Regex.cset cls)) d.trans.(i);
      if d.accept.(i) then add i final Regex.epsilon
    done;
    add start 0 Regex.epsilon;
    let states = List.init n Fun.id in
    List.iter
      (fun k ->
        let loop =
          match get k k with None -> Regex.epsilon | Some r -> Regex.star r
        in
        let sources =
          Hashtbl.fold
            (fun (i, j) r acc -> if j = k && i <> k then (i, r) :: acc else acc)
            edges []
        in
        let targets =
          Hashtbl.fold
            (fun (i, j) r acc -> if i = k && j <> k then (j, r) :: acc else acc)
            edges []
        in
        List.iter
          (fun (i, rin) ->
            List.iter
              (fun (j, rout) ->
                add i j (Regex.seq rin (Regex.seq loop rout)))
              targets)
          sources;
        (* Remove every edge touching k. *)
        Hashtbl.iter
          (fun (i, j) _ ->
            if i = k || j = k then Hashtbl.remove edges (i, j))
          (Hashtbl.copy edges))
      states;
    match get start final with None -> Regex.empty | Some r -> r
  end

(* The complemented automaton: same transitions, accepting states
   flipped.  State labels are kept verbatim and no longer denote the
   states' residual languages; use the result only where labels are not
   consulted (matching, minimisation, to_regex). *)
let complement d =
  { d with accept = Array.map not d.accept }
