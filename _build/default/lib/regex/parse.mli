(** A concrete syntax for regular expressions, so lens types can be given
    on the command line and in artefact files.

    Grammar (POSIX-ish):
    - alternation [a|b], concatenation by juxtaposition,
      postfix [*], [+], [?];
    - grouping [( )];
    - character classes [[a-z0-9]] and negated classes [[^...]];
    - [.] for any byte;
    - [\\] escapes the next character ([\\n], [\\t], [\\r] denote the
      control characters, anything else denotes itself);
    - every other character is a literal. *)

val of_string : string -> (Regex.t, string) result
(** Parse; errors carry a byte position. *)

val to_parseable : Regex.t -> string
(** Render a regex in a form {!of_string} accepts (escaping as needed).
    Raises [Invalid_argument] on [Regex.Empty], which has no concrete
    syntax. *)
