(** The Boomerang typing obligations (Bohannon et al., POPL 2008): string
    lens combinators are only well defined when the regular expressions
    they are typed with can be parsed unambiguously.  This module decides
    those side conditions exactly, with witnesses for failures. *)

val unambig_concat : Regex.t -> Regex.t -> (unit, string) result
(** [unambig_concat r1 r2] is [Ok ()] when every string of
    [L(r1) · L(r2)] has exactly one decomposition into an [r1]-part and an
    [r2]-part.  On failure, [Error q] exhibits a nonempty {e overlap}
    [q]: a string with [p, p·q ∈ L(r1)] and [q·s, s ∈ L(r2)] for some
    [p, s], so [p·q·s] splits two ways. *)

val unambig_star : Regex.t -> (unit, string) result
(** [unambig_star r] is [Ok ()] when every string in the iteration of [r]
    decomposes uniquely into a sequence of [r]-chunks.  Requires
    [ε ∉ L(r)] (witness [""]), plus unambiguity of [r] concatenated with
    its own iteration. *)

val disjoint_union : Regex.t -> Regex.t -> (unit, string) result
(** [Ok ()] when the two languages are disjoint, as the [union] lens
    requires; [Error w] exhibits a shared string. *)
