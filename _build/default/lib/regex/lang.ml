(* Generic BFS over pairs of derivatives.  [accept d1 d2] decides whether a
   pair state is a witness; the search returns the shortest string reaching
   such a pair. *)
let pair_bfs ~accept r1 r2 =
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.add ((r1, r2), []) queue;
  Hashtbl.add visited (r1, r2) ();
  let rec bfs () =
    if Queue.is_empty queue then None
    else
      let (d1, d2), path = Queue.take queue in
      if accept d1 d2 then
        Some (String.init (List.length path) (List.nth (List.rev path)))
      else begin
        let classes =
          Cset.refine
            (Regex.derivative_classes d1 @ Regex.derivative_classes d2)
        in
        List.iter
          (fun cls ->
            match Cset.choose cls with
            | None -> ()
            | Some c ->
                let next = (Regex.deriv c d1, Regex.deriv c d2) in
                (* Dead pairs cannot produce any witness for the
                   intersection-style searches; they are still explored for
                   complement-style acceptance, which [accept] encodes, so
                   only prune exact [Empty, Empty]. *)
                if not (Hashtbl.mem visited next) then begin
                  Hashtbl.add visited next ();
                  Queue.add (next, c :: path) queue
                end)
          classes;
        bfs ()
      end
  in
  bfs ()

let inter_witness r1 r2 =
  pair_bfs ~accept:(fun d1 d2 -> Regex.nullable d1 && Regex.nullable d2) r1 r2

let disjoint r1 r2 =
  match inter_witness r1 r2 with None -> Ok () | Some w -> Error w

let subset_counterexample r1 r2 =
  pair_bfs
    ~accept:(fun d1 d2 -> Regex.nullable d1 && not (Regex.nullable d2))
    r1 r2

let subset r1 r2 = subset_counterexample r1 r2 = None

let equiv_counterexample r1 r2 =
  pair_bfs
    ~accept:(fun d1 d2 -> Regex.nullable d1 <> Regex.nullable d2)
    r1 r2

let equivalent r1 r2 = equiv_counterexample r1 r2 = None

let is_empty r = inter_witness r r = None

let shortest r =
  pair_bfs ~accept:(fun d1 _ -> Regex.nullable d1) r r

(* Closure operations that escape the regex syntax via automata:
   complement and intersection as regexes (Kleene's theorem made
   executable).  Results are language-correct but syntactically large;
   both minimise before eliminating states. *)
let complement r =
  Dfa.to_regex (Dfa.minimise (Dfa.complement (Dfa.build r)))

let inter r1 r2 =
  (* De Morgan over the available complement. *)
  complement (Regex.alt (complement r1) (complement r2))

let enumerate ~max_length r =
  let out = ref [] in
  (* Breadth-first over (derivative, word) pairs; expand per derivative
     class so only one representative byte per class is explored — and
     every byte in an accepted class contributes, so expand the class's
     members individually. *)
  let queue = Queue.create () in
  Queue.add (r, "") queue;
  while not (Queue.is_empty queue) do
    let d, w = Queue.take queue in
    if Regex.nullable d then out := w :: !out;
    if String.length w < max_length then
      List.iter
        (fun cls ->
          List.iter
            (fun (lo, hi) ->
              let rec chars c =
                if c > Char.code hi then ()
                else begin
                  let ch = Char.chr c in
                  let d' = Regex.deriv ch d in
                  if not (Regex.equal d' Regex.empty) then
                    Queue.add (d', w ^ String.make 1 ch) queue;
                  chars (c + 1)
                end
              in
              chars (Char.code lo))
            (Cset.to_ranges cls))
        (Regex.derivative_classes d)
  done;
  List.rev !out
