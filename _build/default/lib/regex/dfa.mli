(** Deterministic finite automata built from regular expressions by
    Brzozowski-derivative closure.  State 0 is initial; every state is
    reachable; the transition function is total (character classes partition
    the byte space in every state). *)

type t

val build : Regex.t -> t
(** Construct the DFA recognising the regex's language. *)

val size : t -> int
(** Number of states. *)

val initial : int
(** The initial state index (always [0]). *)

val regex_of_state : t -> int -> Regex.t
(** The canonical derivative labelling a state (its residual language). *)

val states : t -> Regex.t array
(** All state labels, indexed by state. *)

val transitions : t -> int -> (Cset.t * int) list
(** Outgoing transitions of a state as disjoint character classes. *)

val step : t -> int -> char -> int
(** One transition. *)

val accepting : t -> int -> bool
val accepts : t -> string -> bool
val run_from : t -> int -> string -> int
(** Run the automaton over a string from a given state. *)

val prefix_marks : t -> string -> bool array
(** [prefix_marks d s] has length [String.length s + 1]; element [i] tells
    whether the prefix [s[0..i)] is accepted. *)

val is_empty_lang : t -> bool
(** Whether the language is empty (no accepting state exists; all states
    are reachable by construction). *)

val shortest_accepted : t -> string option
(** A shortest member of the language, by breadth-first search. *)

val minimise : t -> t
(** The minimal DFA for the same language, by Moore partition refinement.
    State labels are taken from block representatives (the residual
    languages are equivalent within a block); state 0 remains initial. *)

val complement : t -> t
(** Same transitions, accepting states flipped.  State labels are left
    untouched and no longer describe the residual languages; use the
    result only where labels are not consulted ({!accepts},
    {!minimise}, {!to_regex}). *)

val to_regex : t -> Regex.t
(** A regular expression for the automaton's language, by GNFA state
    elimination (Kleene).  The result can be large; it is language-equal
    to every state-0 label but syntactically unrelated.  Minimising
    first usually helps. *)
