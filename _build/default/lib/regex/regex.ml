type t =
  | Empty
  | Epsilon
  | Cset of Cset.t
  | Seq of t * t
  | Alt of t * t
  | Star of t

let empty = Empty
let epsilon = Epsilon
let cset s = if Cset.is_empty s then Empty else Cset s
let chr c = Cset (Cset.singleton c)
let any = Cset Cset.full

let compare = Stdlib.compare
let equal a b = compare a b = 0

(* Smart constructors maintain a canonical form so that the derivative
   closure of any expression is finite:
   - Seq is right-associated, with Empty absorbing and Epsilon a unit;
   - Alt is right-associated over a sorted, duplicate-free list of
     alternatives, with Empty a unit; adjacent character sets are merged;
   - Star collapses nested stars and trivial bodies. *)

let rec seq a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, r | r, Epsilon -> r
  | Seq (x, y), r -> seq x (seq y r)
  | a, b -> Seq (a, b)

let alt a b =
  let rec flatten = function
    | Alt (x, y) -> flatten x @ flatten y
    | Empty -> []
    | r -> [ r ]
  in
  let parts = List.sort_uniq compare (flatten a @ flatten b) in
  (* Merge all character-set alternatives into one. *)
  let csets, others =
    List.partition (function Cset _ -> true | _ -> false) parts
  in
  let merged =
    match csets with
    | [] -> []
    | _ ->
        let s =
          List.fold_left
            (fun acc r ->
              match r with Cset s -> Cset.union acc s | _ -> acc)
            Cset.empty csets
        in
        if Cset.is_empty s then [] else [ Cset s ]
  in
  match merged @ others with
  | [] -> Empty
  | [ r ] -> r
  | r :: rest -> List.fold_left (fun acc x -> Alt (acc, x)) r rest

let star = function
  | Empty | Epsilon -> Epsilon
  | Star _ as r -> r
  | r -> Star r

let plus r = seq r (star r)
let opt r = alt Epsilon r

let str s =
  let rec go i = if i >= String.length s then Epsilon else seq (chr s.[i]) (go (i + 1)) in
  go 0

let concat_list rs = List.fold_right seq rs Epsilon
let alt_list = function [] -> Empty | r :: rest -> List.fold_left alt r rest

let rec repeat n r = if n <= 0 then Epsilon else seq r (repeat (n - 1) r)

let rec nullable = function
  | Empty | Cset _ -> false
  | Epsilon | Star _ -> true
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b

let rec deriv c = function
  | Empty | Epsilon -> Empty
  | Cset s -> if Cset.mem c s then Epsilon else Empty
  | Seq (a, b) ->
      let d = seq (deriv c a) b in
      if nullable a then alt d (deriv c b) else d
  | Alt (a, b) -> alt (deriv c a) (deriv c b)
  | Star a as r -> seq (deriv c a) r

let matches r s =
  let rec go r i =
    if r = Empty then false
    else if i >= String.length s then nullable r
    else go (deriv s.[i] r) (i + 1)
  in
  go r 0

let rec reverse = function
  | (Empty | Epsilon | Cset _) as r -> r
  | Seq (a, b) -> seq (reverse b) (reverse a)
  | Alt (a, b) -> alt (reverse a) (reverse b)
  | Star a -> star (reverse a)

let rec derivative_classes = function
  | Empty | Epsilon -> [ Cset.full ]
  | Cset s -> Cset.refine [ s ]
  | Seq (a, b) ->
      if nullable a then
        Cset.refine (derivative_classes a @ derivative_classes b)
      else derivative_classes a
  | Alt (a, b) -> Cset.refine (derivative_classes a @ derivative_classes b)
  | Star a -> derivative_classes a

let rec size = function
  | Empty | Epsilon | Cset _ -> 1
  | Seq (a, b) | Alt (a, b) -> 1 + size a + size b
  | Star a -> 1 + size a

(* Precedence: Alt (lowest) < Seq < Star (highest). *)
let rec pp_prec prec ppf r =
  match r with
  | Empty -> Fmt.string ppf "{empty}"
  | Epsilon -> Fmt.string ppf "{eps}"
  | Cset s -> Cset.pp ppf s
  | Seq (a, b) ->
      let doc ppf () =
        Fmt.pf ppf "%a%a" (pp_prec 1) a (pp_prec 1) b
      in
      if prec > 1 then Fmt.parens doc ppf () else doc ppf ()
  | Alt (a, b) ->
      let doc ppf () = Fmt.pf ppf "%a|%a" (pp_prec 0) a (pp_prec 0) b in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | Star a -> Fmt.pf ppf "%a*" (pp_prec 2) a

let pp = pp_prec 0
let to_string r = Fmt.str "%a" pp r
