(** Decision procedures on regular languages, implemented by breadth-first
    exploration of pairs of Brzozowski derivatives (the pair space is finite
    because derivatives are canonicalised).  Each procedure produces a
    shortest witness when the answer is negative, for use in error
    messages. *)

val inter_witness : Regex.t -> Regex.t -> string option
(** A shortest string in the intersection of the two languages, or [None]
    if the intersection is empty. *)

val disjoint : Regex.t -> Regex.t -> (unit, string) result
(** [Ok ()] when the languages are disjoint; [Error w] exhibits a shared
    string [w]. *)

val subset_counterexample : Regex.t -> Regex.t -> string option
(** A shortest string in [L(r1) \ L(r2)], or [None] when [L(r1) ⊆ L(r2)]. *)

val subset : Regex.t -> Regex.t -> bool

val equivalent : Regex.t -> Regex.t -> bool
(** Language equality. *)

val equiv_counterexample : Regex.t -> Regex.t -> string option
(** A shortest string in the symmetric difference, or [None] if the
    languages are equal. *)

val is_empty : Regex.t -> bool
(** Language emptiness. *)

val shortest : Regex.t -> string option
(** A shortest member of the language. *)

val complement : Regex.t -> Regex.t
(** A regex for the complement language, via DFA complementation and
    state elimination.  Language-correct; syntactically unrelated to the
    input and potentially large. *)

val inter : Regex.t -> Regex.t -> Regex.t
(** A regex for the intersection, by De Morgan over {!complement}. *)

val enumerate : max_length:int -> Regex.t -> string list
(** All members of the language with length at most [max_length], in
    shortlex order (breadth-first over derivatives).  Intended for tests
    and examples; the result can be exponentially large in
    [max_length]. *)
