(** Regular expressions with Brzozowski derivatives.

    Expressions are kept in a canonical form by smart constructors
    (associativity, neutral and absorbing elements, idempotent and sorted
    alternation, collapsed stars), which guarantees that the set of
    derivatives of any expression is finite — the property {!Dfa}
    construction relies on. *)

type t = private
  | Empty  (** The empty language. *)
  | Epsilon  (** The language containing only the empty string. *)
  | Cset of Cset.t  (** Any single character from the set. *)
  | Seq of t * t  (** Concatenation (kept right-associated). *)
  | Alt of t * t  (** Union (kept right-associated, sorted, deduplicated). *)
  | Star of t  (** Kleene iteration. *)

(** {1 Constructors} *)

val empty : t
val epsilon : t
val cset : Cset.t -> t
val chr : char -> t
val str : string -> t
(** The literal string. *)

val any : t
(** Any single byte. *)

val seq : t -> t -> t
val alt : t -> t -> t
val star : t -> t
val plus : t -> t
(** One or more repetitions. *)

val opt : t -> t
(** Zero or one occurrence. *)

val concat_list : t list -> t
val alt_list : t list -> t
val repeat : int -> t -> t
(** Exactly [n] copies in sequence. *)

(** {1 Semantics} *)

val nullable : t -> bool
(** Does the language contain the empty string? *)

val deriv : char -> t -> t
(** Brzozowski derivative: the language of suffixes after consuming one
    character. *)

val matches : t -> string -> bool
(** Membership test by iterated derivatives. *)

val reverse : t -> t
(** The regex denoting the reversal of the language. *)

val derivative_classes : t -> Cset.t list
(** A partition of the byte space such that [deriv] is constant on each
    block.  May be finer than necessary, never coarser. *)

(** {1 Utilities} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val size : t -> int
(** Number of syntax nodes. *)

val pp : Format.formatter -> t -> unit
(** Render in a conventional concrete syntax. *)

val to_string : t -> string
