lib/regex/ambig.ml: Array Cset Dfa Hashtbl Lang List Queue Regex String
