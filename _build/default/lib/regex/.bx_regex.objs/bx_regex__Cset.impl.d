lib/regex/cset.ml: Char Fmt List Stdlib String
