lib/regex/regex.mli: Cset Format
