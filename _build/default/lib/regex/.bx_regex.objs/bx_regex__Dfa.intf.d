lib/regex/dfa.mli: Cset Regex
