lib/regex/ambig.mli: Regex
