lib/regex/dfa.ml: Array Char Cset Fun Hashtbl List Option Queue Regex String
