lib/regex/lang.ml: Char Cset Dfa Hashtbl List Queue Regex String
