lib/regex/lang.mli: Regex
