lib/regex/cset.mli: Format
