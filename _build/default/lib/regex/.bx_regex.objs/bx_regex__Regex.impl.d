lib/regex/regex.ml: Cset Fmt List Stdlib String
