lib/regex/parse.ml: Char Cset List Printf Regex String
