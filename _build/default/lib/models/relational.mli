(** A small relational data model: schemas (tables with typed columns and
    primary keys) and instances (rows conforming to a schema).  The target
    space of the classic UML-class-diagram-to-RDBMS bx. *)

type col_type = Int_t | Text_t | Bool_t

type column = {
  col_name : string;
  col_type : col_type;
  primary : bool;  (** Part of the table's primary key. *)
}

type table = { table_name : string; columns : column list }

type schema = table list
(** A schema is a set of tables; functions treat it order-insensitively. *)

type value = Int_v of int | Text_v of string | Bool_v of bool

type row = value list
(** Values in column order. *)

type instance = (string * row list) list
(** Rows per table name. *)

(** {1 Schemas} *)

val column : ?primary:bool -> string -> col_type -> column
val table : string -> column list -> table

val find_table : schema -> string -> table option
val add_table : schema -> table -> schema
(** Add or replace the table of that name. *)

val remove_table : schema -> string -> schema
val table_names : schema -> string list
(** Sorted. *)

val validate_schema : schema -> (unit, string) result
(** Table names unique and nonempty; each table has at least one column
    with unique column names. *)

val equal_schema : schema -> schema -> bool
(** Order-insensitive on tables and on nothing else: column order matters
    (it fixes row layout). *)

val pp_schema : Format.formatter -> schema -> unit

(** {1 Instances} *)

val type_of_value : value -> col_type

val conforms : schema -> instance -> (unit, string) result
(** Every listed table exists in the schema, every row has the right arity
    and column types, and primary-key values are unique per table. *)

val rows_of : instance -> string -> row list

val pp_value : Format.formatter -> value -> unit
val pp_instance : Format.formatter -> instance -> unit

val equal_instance : instance -> instance -> bool
(** Order-insensitive on tables and on rows within a table. *)
