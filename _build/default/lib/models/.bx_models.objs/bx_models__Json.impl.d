lib/models/json.ml: Buffer Char List Printf String
