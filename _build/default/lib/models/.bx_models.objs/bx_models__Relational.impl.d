lib/models/relational.ml: Fmt List Printf String
