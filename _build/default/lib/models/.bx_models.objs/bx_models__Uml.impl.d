lib/models/uml.ml: Fmt List Printf String
