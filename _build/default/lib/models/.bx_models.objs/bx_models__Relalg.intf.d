lib/models/relalg.mli: Bx Relational
