lib/models/genealogy.mli: Format
