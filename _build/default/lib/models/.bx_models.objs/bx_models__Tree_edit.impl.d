lib/models/tree_edit.ml: Array Bx List Option Tree
