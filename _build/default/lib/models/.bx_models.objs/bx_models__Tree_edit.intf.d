lib/models/tree_edit.mli: Bx Tree
