lib/models/json.mli:
