lib/models/uml.mli: Format
