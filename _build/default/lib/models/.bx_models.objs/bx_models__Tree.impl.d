lib/models/tree.ml: Fmt List
