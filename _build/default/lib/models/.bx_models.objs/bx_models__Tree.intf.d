lib/models/tree.mli: Format
