lib/models/rational.ml: Fmt Stdlib
