lib/models/relational.mli: Format
