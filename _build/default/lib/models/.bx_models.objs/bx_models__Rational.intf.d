lib/models/rational.mli: Format
