lib/models/csv.ml: Fmt List String
