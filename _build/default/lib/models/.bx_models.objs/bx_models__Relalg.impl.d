lib/models/relalg.ml: Array Bx Fun List Printf Relational String
