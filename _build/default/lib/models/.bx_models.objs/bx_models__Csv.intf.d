lib/models/csv.mli: Format
