lib/models/genealogy.ml: Fmt List Option Printf String
