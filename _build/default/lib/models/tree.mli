(** Rose trees with labelled nodes — a stand-in for the XML-ish documents
    of the tree-lens literature (Foster et al.'s bookstore examples). *)

type 'a t = { label : 'a; children : 'a t list }

val leaf : 'a -> 'a t
val node : 'a -> 'a t list -> 'a t

val size : 'a t -> int
(** Number of nodes. *)

val depth : 'a t -> int
(** 1 for a leaf. *)

val map : ('a -> 'b) -> 'a t -> 'b t
val fold : ('a -> 'b list -> 'b) -> 'a t -> 'b
(** Bottom-up fold: the label and the folded children. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

val find_child : ('a -> bool) -> 'a t -> 'a t option
(** The first immediate child whose label satisfies the predicate. *)

val children_labelled : 'a -> 'a t -> 'a t list
(** All immediate children with the given label (by structural equality). *)

val with_children : 'a t -> 'a t list -> 'a t
(** Replace the children. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
