(** Edits on rose trees: paths, primitive operations, application and a
    diff whose output replays one tree into another — the delta substrate
    for tree-shaped models (the edit-lens counterpart of {!Tree}).

    A {e path} addresses a node by child indices from the root; the root
    itself is []. *)

type path = int list

type 'a op =
  | Relabel of path * 'a  (** Replace the label at the node. *)
  | Insert_child of path * int * 'a Tree.t
      (** Insert a whole subtree before child index [i] of the node. *)
  | Delete_child of path * int  (** Delete child [i] of the node. *)

type 'a edit = 'a op list
(** Applied left to right. *)

val apply_op : 'a op -> 'a Tree.t -> 'a Tree.t option
(** [None] when the path or index is out of range. *)

val apply : 'a edit -> 'a Tree.t -> 'a Tree.t option

val edit_module : unit -> ('a edit, 'a Tree.t) Bx.Elens.edit_module
(** The edit monoid, packaged for {!Bx.Elens}. *)

val diff : equal:('a -> 'a -> bool) -> 'a Tree.t -> 'a Tree.t -> 'a edit
(** An edit replaying the first tree into the second:
    [apply (diff ~equal t1 t2) t1 = Some t2].  Children are aligned by an
    LCS on labels, so subtrees that merely moved relative to insertions
    and deletions are edited in place rather than rebuilt. *)

val edit_size : 'a edit -> int
(** Number of primitive operations (a crude edit distance). *)
