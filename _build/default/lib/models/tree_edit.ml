type path = int list

type 'a op =
  | Relabel of path * 'a
  | Insert_child of path * int * 'a Tree.t
  | Delete_child of path * int

type 'a edit = 'a op list

(* Apply a function at the node addressed by a path. *)
let rec at_path path f (t : 'a Tree.t) =
  match path with
  | [] -> f t
  | i :: rest ->
      if i < 0 || i >= List.length t.Tree.children then None
      else
        let child = List.nth t.Tree.children i in
        Option.map
          (fun child' ->
            Tree.with_children t
              (List.mapi
                 (fun j c -> if j = i then child' else c)
                 t.Tree.children))
          (at_path rest f child)

let apply_op op t =
  match op with
  | Relabel (path, label) ->
      at_path path (fun node -> Some { node with Tree.label }) t
  | Insert_child (path, i, subtree) ->
      at_path path
        (fun node ->
          let n = List.length node.Tree.children in
          if i < 0 || i > n then None
          else
            let rec ins i cs =
              if i = 0 then subtree :: cs
              else match cs with [] -> [ subtree ] | c :: tl -> c :: ins (i - 1) tl
            in
            Some (Tree.with_children node (ins i node.Tree.children)))
        t
  | Delete_child (path, i) ->
      at_path path
        (fun node ->
          if i < 0 || i >= List.length node.Tree.children then None
          else
            Some
              (Tree.with_children node
                 (List.filteri (fun j _ -> j <> i) node.Tree.children)))
        t

let apply edit t =
  List.fold_left
    (fun acc op -> match acc with None -> None | Some t -> apply_op op t)
    (Some t) edit

let edit_module () =
  {
    Bx.Elens.module_name = "tree-edits";
    apply;
    compose = (fun e1 e2 -> e1 @ e2);
    identity = [];
  }

(* LCS over child labels, as index pairs. *)
let lcs_pairs equal a b =
  let n = Array.length a and m = Array.length b in
  let table = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      table.(i).(j) <-
        (if equal a.(i) b.(j) then 1 + table.(i + 1).(j + 1)
         else max table.(i + 1).(j) table.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i >= n || j >= m then List.rev acc
    else if equal a.(i) b.(j) then walk (i + 1) (j + 1) ((i, j) :: acc)
    else if table.(i + 1).(j) >= table.(i).(j + 1) then walk (i + 1) j acc
    else walk i (j + 1) acc
  in
  walk 0 0 []

let rec diff ~equal (t1 : 'a Tree.t) (t2 : 'a Tree.t) = diff_at ~equal [] t1 t2

and diff_at ~equal path t1 t2 =
  let relabel =
    if equal t1.Tree.label t2.Tree.label then []
    else [ Relabel (path, t2.Tree.label) ]
  in
  let a = Array.of_list t1.Tree.children in
  let b = Array.of_list t2.Tree.children in
  let anchors =
    lcs_pairs (fun x y -> equal x.Tree.label y.Tree.label) a b
    @ [ (Array.length a, Array.length b) ] (* sentinel *)
  in
  (* Between consecutive anchors, pair leftover old and new children in
     order ("replacements", edited in place via recursion); extra olds
     are deleted, extra news inserted.  This keeps changed children as
     in-place edits instead of delete+insert pairs. *)
  let pairs = ref [] (* (old index, new index), both kept *) in
  let deletions = ref [] and insertions = ref [] in
  let prev_i = ref 0 and prev_j = ref 0 in
  List.iter
    (fun (ai, aj) ->
      let olds = List.init (ai - !prev_i) (fun k -> !prev_i + k) in
      let news = List.init (aj - !prev_j) (fun k -> !prev_j + k) in
      let rec zip olds news =
        match (olds, news) with
        | i :: olds', j :: news' ->
            pairs := (i, j) :: !pairs;
            zip olds' news'
        | olds', [] -> List.iter (fun i -> deletions := i :: !deletions) olds'
        | [], news' -> List.iter (fun j -> insertions := j :: !insertions) news'
      in
      zip olds news;
      if ai < Array.length a then pairs := (ai, aj) :: !pairs;
      prev_i := ai + 1;
      prev_j := aj + 1)
    anchors;
  (* Deletions highest original index first, so earlier deletions do not
     shift later targets; insertions at their final indices, ascending. *)
  let delete_ops =
    List.sort (fun x y -> compare y x) !deletions
    |> List.map (fun i -> Delete_child (path, i))
  in
  let insert_ops =
    List.sort compare !insertions
    |> List.map (fun j -> Insert_child (path, j, b.(j)))
  in
  (* Kept children (anchors and replacements) now sit at their target
     indices; recurse on each. *)
  let recursions =
    List.concat_map
      (fun (i, j) -> diff_at ~equal (path @ [ j ]) a.(i) b.(j))
      (List.rev !pairs)
  in
  relabel @ delete_ops @ insert_ops @ recursions

let edit_size = List.length
