type family = {
  last_name : string;
  father : string option;
  mother : string option;
  sons : string list;
  daughters : string list;
}

type families = family list

let family ?father ?mother ?(sons = []) ?(daughters = []) last_name =
  { last_name; father; mother; sons; daughters }

let rec unique = function
  | [] | [ _ ] -> true
  | x :: (y :: _ as rest) -> x <> y && unique rest

let validate_families fams =
  let names = List.map (fun f -> f.last_name) fams in
  if List.exists (fun n -> String.length n = 0) names then
    Error "families: empty last name"
  else if not (unique (List.sort String.compare names)) then
    Error "families: duplicate last name"
  else
    let bad =
      List.find_opt
        (fun f ->
          let members =
            Option.to_list f.father @ Option.to_list f.mother @ f.sons
            @ f.daughters
          in
          not (unique (List.sort String.compare members)))
        fams
    in
    match bad with
    | Some f ->
        Error
          (Printf.sprintf "families: duplicate first name in family %s"
             f.last_name)
    | None -> Ok ()

let family_members f =
  List.map (fun n -> (n, `Male)) (Option.to_list f.father @ f.sons)
  @ List.map (fun n -> (n, `Female)) (Option.to_list f.mother @ f.daughters)

let canon_family f =
  {
    f with
    sons = List.sort String.compare f.sons;
    daughters = List.sort String.compare f.daughters;
  }

let equal_families f1 f2 =
  let canon fams =
    List.map canon_family fams
    |> List.sort (fun a b -> String.compare a.last_name b.last_name)
  in
  canon f1 = canon f2

let pp_family ppf f =
  let pp_opt name ppf = function
    | None -> ()
    | Some n -> Fmt.pf ppf "@,%s: %s" name n
  in
  Fmt.pf ppf "@[<v 2>family %s:%a%a%a%a@]" f.last_name (pp_opt "father")
    f.father (pp_opt "mother") f.mother
    (fun ppf sons ->
      if sons <> [] then
        Fmt.pf ppf "@,sons: %a" (Fmt.list ~sep:Fmt.comma Fmt.string) sons)
    f.sons
    (fun ppf daughters ->
      if daughters <> [] then
        Fmt.pf ppf "@,daughters: %a"
          (Fmt.list ~sep:Fmt.comma Fmt.string)
          daughters)
    f.daughters

let pp_families ppf fams =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_family) fams

type gender = Male | Female
type person = { full_name : string; gender : gender; birthday : string }
type persons = person list

let person ?(birthday = "unknown") gender full_name =
  { full_name; gender; birthday }

let split_full_name full =
  match String.index_opt full ' ' with
  | None -> None
  | Some i ->
      Some
        ( String.sub full 0 i,
          String.sub full (i + 1) (String.length full - i - 1) )

let equal_persons p1 p2 = List.sort compare p1 = List.sort compare p2

let pp_person ppf p =
  Fmt.pf ppf "%s (%s, born %s)" p.full_name
    (match p.gender with Male -> "M" | Female -> "F")
    p.birthday

let pp_persons ppf ps =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_person) ps
