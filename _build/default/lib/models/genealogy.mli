(** The two model spaces of the classic Families-to-Persons benchmark
    (Anjorin et al., "BenchmarX", BX 2014 — the companion paper the
    repository proposal discusses): a register of families with role-tagged
    members, and a flat register of persons with gender. *)

(** {1 Families} *)

type family = {
  last_name : string;
  father : string option;  (** First name. *)
  mother : string option;
  sons : string list;
  daughters : string list;
}

type families = family list

val family :
  ?father:string -> ?mother:string -> ?sons:string list
  -> ?daughters:string list -> string -> family

val validate_families : families -> (unit, string) result
(** Last names unique and nonempty; no duplicate first name within one
    family. *)

val family_members : family -> (string * [ `Male | `Female ]) list
(** All members as (first name, gender): father and sons male, mother and
    daughters female. *)

val equal_families : families -> families -> bool
(** Order-insensitive on families and on the member lists within each. *)

val pp_families : Format.formatter -> families -> unit

(** {1 Persons} *)

type gender = Male | Female

type person = {
  full_name : string;  (** ["First Last"]. *)
  gender : gender;
  birthday : string;  (** Private to the persons side, e.g. ["1970-01-01"]. *)
}

type persons = person list

val person : ?birthday:string -> gender -> string -> person

val split_full_name : string -> (string * string) option
(** ["First Last"] into [(first, last)]; [None] when there is no space. *)

val equal_persons : persons -> persons -> bool
(** Order-insensitive. *)

val pp_persons : Format.formatter -> persons -> unit
