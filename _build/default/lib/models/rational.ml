type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num r = r.num
let den r = r.den
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)
let div a b = if b.num = 0 then raise Division_by_zero else make (a.num * b.den) (a.den * b.num)
let neg a = { a with num = -a.num }
let equal a b = a.num = b.num && a.den = b.den
let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Fmt.int ppf a.num else Fmt.pf ppf "%d/%d" a.num a.den

let to_string a = Fmt.str "%a" pp a
