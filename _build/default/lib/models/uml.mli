(** A small UML-style class model: named classes with typed attributes and
    a persistence flag.  The source space of the "notorious" UML class
    diagram to RDBMS schema bx that the paper's introduction cites as the
    canonical shared example. *)

type attr_type = String_t | Integer_t | Boolean_t

type attribute = {
  attr_name : string;
  attr_type : attr_type;
  is_key : bool;  (** Marked as (part of) the class's identifying key. *)
}

type clazz = {
  class_name : string;
  persistent : bool;  (** Only persistent classes map to tables. *)
  attributes : attribute list;
}

type model = clazz list
(** A model is a set of classes; functions treat it order-insensitively. *)

val attribute : ?is_key:bool -> string -> attr_type -> attribute
val clazz : ?persistent:bool -> string -> attribute list -> clazz

val find_class : model -> string -> clazz option
val add_class : model -> clazz -> model
(** Add or replace the class of that name. *)

val remove_class : model -> string -> model
val class_names : model -> string list
(** Sorted. *)

val persistent_classes : model -> clazz list

val validate : model -> (unit, string) result
(** Class names unique and nonempty; attribute names unique per class;
    every class has at least one attribute. *)

val equal : model -> model -> bool
(** Order-insensitive on classes; attribute order matters. *)

val pp : Format.formatter -> model -> unit
