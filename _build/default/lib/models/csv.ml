type row = string list
type t = row list

let field_ok ~sep f =
  not (String.exists (fun c -> c = sep || c = '\n') f)

let parse ~sep s =
  if String.equal s "" then Ok []
  else if s.[String.length s - 1] <> '\n' then
    Error "csv: final record is not newline-terminated"
  else
    let lines = String.split_on_char '\n' s in
    (* split_on_char leaves a trailing "" after the final newline. *)
    let lines = List.filteri (fun i _ -> i < List.length lines - 1) lines in
    Ok (List.map (String.split_on_char sep) lines)

let print ~sep t =
  let sep_s = String.make 1 sep in
  String.concat ""
    (List.map (fun row -> String.concat sep_s row ^ "\n") t)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (Fmt.list ~sep:Fmt.semi Fmt.string))
    t
