type col_type = Int_t | Text_t | Bool_t

type column = { col_name : string; col_type : col_type; primary : bool }
type table = { table_name : string; columns : column list }
type schema = table list
type value = Int_v of int | Text_v of string | Bool_v of bool
type row = value list
type instance = (string * row list) list

let column ?(primary = false) col_name col_type = { col_name; col_type; primary }
let table table_name columns = { table_name; columns }

let find_table schema name =
  List.find_opt (fun t -> String.equal t.table_name name) schema

let remove_table schema name =
  List.filter (fun t -> not (String.equal t.table_name name)) schema

let add_table schema t = remove_table schema t.table_name @ [ t ]

let table_names schema =
  List.sort String.compare (List.map (fun t -> t.table_name) schema)

let rec unique = function
  | [] | [ _ ] -> true
  | x :: (y :: _ as rest) -> x <> y && unique rest

let validate_schema schema =
  let names = List.map (fun t -> t.table_name) schema in
  if List.exists (fun n -> String.length n = 0) names then
    Error "schema: empty table name"
  else if not (unique (List.sort String.compare names)) then
    Error "schema: duplicate table name"
  else
    let bad_table =
      List.find_opt
        (fun t ->
          t.columns = []
          || not
               (unique
                  (List.sort String.compare
                     (List.map (fun c -> c.col_name) t.columns))))
        schema
    in
    match bad_table with
    | Some t ->
        Error
          (Printf.sprintf "schema: table %s has no columns or duplicate columns"
             t.table_name)
    | None -> Ok ()

let sort_tables schema =
  List.sort (fun a b -> String.compare a.table_name b.table_name) schema

let equal_schema s1 s2 = sort_tables s1 = sort_tables s2

let pp_col_type ppf = function
  | Int_t -> Fmt.string ppf "INT"
  | Text_t -> Fmt.string ppf "TEXT"
  | Bool_t -> Fmt.string ppf "BOOL"

let pp_column ppf c =
  Fmt.pf ppf "%s %a%s" c.col_name pp_col_type c.col_type
    (if c.primary then " PRIMARY" else "")

let pp_table ppf t =
  Fmt.pf ppf "@[<v 2>TABLE %s (@,%a@]@,)" t.table_name
    (Fmt.list ~sep:Fmt.comma pp_column)
    t.columns

let pp_schema ppf s = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_table) s

let type_of_value = function
  | Int_v _ -> Int_t
  | Text_v _ -> Text_t
  | Bool_v _ -> Bool_t

let rows_of instance name =
  match List.assoc_opt name instance with Some rows -> rows | None -> []

let conforms schema instance =
  let check_table (name, rows) =
    match find_table schema name with
    | None -> Error (Printf.sprintf "instance: unknown table %s" name)
    | Some t ->
        let arity = List.length t.columns in
        let bad_row =
          List.find_opt
            (fun row ->
              List.length row <> arity
              || not
                   (List.for_all2
                      (fun v c -> type_of_value v = c.col_type)
                      row t.columns))
            rows
        in
        if bad_row <> None then
          Error (Printf.sprintf "instance: ill-typed row in table %s" name)
        else
          let key_of row =
            List.filteri
              (fun i _ -> (List.nth t.columns i).primary)
              row
          in
          let keys = List.map key_of rows in
          let has_key = List.exists (fun c -> c.primary) t.columns in
          if has_key && not (unique (List.sort compare keys)) then
            Error
              (Printf.sprintf "instance: duplicate primary key in table %s" name)
          else Ok ()
  in
  List.fold_left
    (fun acc t -> match acc with Error _ -> acc | Ok () -> check_table t)
    (Ok ()) instance

let pp_value ppf = function
  | Int_v n -> Fmt.int ppf n
  | Text_v s -> Fmt.pf ppf "%S" s
  | Bool_v b -> Fmt.bool ppf b

let pp_instance ppf inst =
  let pp_rows ppf (name, rows) =
    Fmt.pf ppf "@[<v 2>%s:@,%a@]" name
      (Fmt.list ~sep:Fmt.cut (Fmt.brackets (Fmt.list ~sep:Fmt.comma pp_value)))
      rows
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_rows) inst

let equal_instance i1 i2 =
  let canon i =
    List.map (fun (n, rows) -> (n, List.sort compare rows)) i
    |> List.sort compare
  in
  canon i1 = canon i2
