(** Exact rational arithmetic over machine integers.

    Used by catalogue examples whose isomorphisms must be exact (e.g. the
    Celsius/Fahrenheit bx, where floating point would break the inverse
    laws).  Values are kept normalised: positive denominator, numerator and
    denominator coprime. *)

type t

val make : int -> int -> t
(** [make num den] is the normalised fraction.  Raises [Division_by_zero]
    when [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val neg : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
