(** A small JSON implementation (AST, printer, parser) — enough to give
    repository entries a structured interchange format.  Numbers are
    integers only (the repository's data model needs nothing more);
    strings are byte strings, with ["\u00XX"] escapes for non-printable
    bytes and code points above 255 rejected on input. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render; [indent] > 0 pretty-prints with that step (default 0:
    compact). *)

val of_string : string -> (t, string) result
(** Parse; errors carry a byte position. *)

val member : string -> t -> t option
(** Field lookup on objects; [None] on other shapes. *)

val to_list : t -> t list option
val to_str : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option

val equal : t -> t -> bool
