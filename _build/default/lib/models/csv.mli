(** A deliberately small CSV codec: newline-terminated records whose fields
    are separated by a single character.  No quoting — fields must not
    contain the separator or newlines ({!field_ok} checks).  Sufficient for
    the string-shaped catalogue examples and their benchmarks. *)

type row = string list
type t = row list

val field_ok : sep:char -> string -> bool
(** The field contains neither the separator nor a newline. *)

val parse : sep:char -> string -> (t, string) result
(** Parse a document of zero or more newline-terminated records.  The empty
    string is the empty document; a final record missing its newline is an
    error. *)

val print : sep:char -> t -> string
(** Inverse of {!parse} on valid data: each row joined by [sep], each
    record terminated by a newline. *)

val pp : Format.formatter -> t -> unit
