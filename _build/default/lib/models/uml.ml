type attr_type = String_t | Integer_t | Boolean_t

type attribute = { attr_name : string; attr_type : attr_type; is_key : bool }
type clazz = { class_name : string; persistent : bool; attributes : attribute list }
type model = clazz list

let attribute ?(is_key = false) attr_name attr_type = { attr_name; attr_type; is_key }
let clazz ?(persistent = true) class_name attributes = { class_name; persistent; attributes }

let find_class model name =
  List.find_opt (fun c -> String.equal c.class_name name) model

let remove_class model name =
  List.filter (fun c -> not (String.equal c.class_name name)) model

let add_class model c = remove_class model c.class_name @ [ c ]

let class_names model =
  List.sort String.compare (List.map (fun c -> c.class_name) model)

let persistent_classes model = List.filter (fun c -> c.persistent) model

let rec unique = function
  | [] | [ _ ] -> true
  | x :: (y :: _ as rest) -> x <> y && unique rest

let validate model =
  let names = List.map (fun c -> c.class_name) model in
  if List.exists (fun n -> String.length n = 0) names then
    Error "model: empty class name"
  else if not (unique (List.sort String.compare names)) then
    Error "model: duplicate class name"
  else
    let bad =
      List.find_opt
        (fun c ->
          c.attributes = []
          || not
               (unique
                  (List.sort String.compare
                     (List.map (fun a -> a.attr_name) c.attributes))))
        model
    in
    match bad with
    | Some c ->
        Error
          (Printf.sprintf
             "model: class %s has no attributes or duplicate attributes"
             c.class_name)
    | None -> Ok ()

let equal m1 m2 =
  let sort m = List.sort (fun a b -> String.compare a.class_name b.class_name) m in
  sort m1 = sort m2

let pp_attr_type ppf = function
  | String_t -> Fmt.string ppf "String"
  | Integer_t -> Fmt.string ppf "Integer"
  | Boolean_t -> Fmt.string ppf "Boolean"

let pp_attribute ppf a =
  Fmt.pf ppf "%s%s : %a" a.attr_name (if a.is_key then " {key}" else "")
    pp_attr_type a.attr_type

let pp_clazz ppf c =
  Fmt.pf ppf "@[<v 2>%sclass %s {@,%a@]@,}"
    (if c.persistent then "persistent " else "")
    c.class_name
    (Fmt.list ~sep:Fmt.cut pp_attribute)
    c.attributes

let pp ppf m = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_clazz) m
