type 'a t = { label : 'a; children : 'a t list }

let leaf label = { label; children = [] }
let node label children = { label; children }

let rec size t = 1 + List.fold_left (fun n c -> n + size c) 0 t.children

let rec depth t =
  1 + List.fold_left (fun d c -> max d (depth c)) 0 t.children

let rec map f t = { label = f t.label; children = List.map (map f) t.children }

let rec fold f t = f t.label (List.map (fold f) t.children)

let rec equal eq t1 t2 =
  eq t1.label t2.label
  && List.length t1.children = List.length t2.children
  && List.for_all2 (equal eq) t1.children t2.children

let find_child p t = List.find_opt (fun c -> p c.label) t.children
let children_labelled l t = List.filter (fun c -> c.label = l) t.children
let with_children t children = { t with children }

let rec pp pp_label ppf t =
  match t.children with
  | [] -> pp_label ppf t.label
  | _ ->
      Fmt.pf ppf "@[<hov 2>%a(%a)@]" pp_label t.label
        (Fmt.list ~sep:Fmt.comma (pp pp_label))
        t.children
