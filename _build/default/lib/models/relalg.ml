open Relational

type pred =
  | Eq of string * value
  | Ne of string * value
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type query = Select of pred | Project of string list | Seq of query * query

exception Bad_query of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_query m)) fmt

let column_index table name =
  let rec scan i = function
    | [] -> bad "unknown column %s in table %s" name table.table_name
    | c :: _ when String.equal c.col_name name -> i
    | _ :: rest -> scan (i + 1) rest
  in
  scan 0 table.columns

let rec eval_pred table pred row =
  match pred with
  | Eq (col, v) -> List.nth row (column_index table col) = v
  | Ne (col, v) -> List.nth row (column_index table col) <> v
  | And (p, q) -> eval_pred table p row && eval_pred table q row
  | Or (p, q) -> eval_pred table p row || eval_pred table q row
  | Not p -> not (eval_pred table p row)

let key_columns table =
  List.filter (fun c -> c.primary) table.columns
  |> List.map (fun c -> c.col_name)

let rec view_table table = function
  | Select pred ->
      (* Validate the predicate's columns once, against an empty row
         check at use time; here just check names. *)
      let rec check = function
        | Eq (c, _) | Ne (c, _) -> ignore (column_index table c)
        | And (p, q) | Or (p, q) ->
            check p;
            check q
        | Not p -> check p
      in
      check pred;
      table
  | Project cols ->
      let keep =
        List.map
          (fun name -> List.nth table.columns (column_index table name))
          cols
      in
      let keys = key_columns table in
      List.iter
        (fun k ->
          if not (List.mem k cols) then
            bad "projection drops key column %s: update not translatable" k)
        keys;
      { table with columns = keep }
  | Seq (q1, q2) -> view_table (view_table table q1) q2

let default_value = function
  | Int_t -> Int_v 0
  | Text_t -> Text_v ""
  | Bool_t -> Bool_v false

(* Columns whose value is forced by the positive Eq conjuncts of a
   selection predicate: rows created through the view must satisfy the
   selection, so these become the completion defaults (Dayal–Bernstein's
   condition for insert translatability through a selection). *)
let rec defaults_of_pred = function
  | Eq (col, v) -> [ (col, v) ]
  | And (p, q) -> defaults_of_pred p @ defaults_of_pred q
  | Ne _ | Or _ | Not _ -> []

let select_lens table pred =
  ignore (view_table table (Select pred));
  let keep row = eval_pred table pred row in
  Bx.Lens.make ~name:"select"
    ~get:(List.filter keep)
    ~put:(fun view rows ->
      List.iter
        (fun v ->
          if not (keep v) then
            Bx.Lens.error
              "select view contains a row violating the selection predicate")
        view;
      (* Weave updated matching rows among the preserved non-matching
         ones, as the generic filter lens does. *)
      let rec weave vs rows =
        match (vs, rows) with
        | vs, [] -> vs
        | vs, r :: rest when not (keep r) -> r :: weave vs rest
        | v :: vs', _ :: rest -> v :: weave vs' rest
        | [], _ :: rest -> weave [] rest
      in
      weave view rows)
    ~create:Fun.id

let project_lens ?(defaults = []) table cols =
  let vtable = view_table table (Project cols) in
  ignore vtable;
  let indices = List.map (column_index table) cols in
  let project row = List.map (List.nth row) indices in
  let keys = key_columns table in
  let key_indices_src = List.map (column_index table) keys in
  let key_of_source row = List.map (List.nth row) key_indices_src in
  let key_indices_view =
    List.map
      (fun k ->
        let rec scan i = function
          | [] -> assert false (* keys ⊆ cols, checked by view_table *)
          | c :: _ when String.equal c k -> i
          | _ :: rest -> scan (i + 1) rest
        in
        scan 0 cols)
      keys
  in
  let key_of_view vrow = List.map (List.nth vrow) key_indices_view in
  let rebuild vrow old_row =
    (* Produce a full row: projected columns from the view, others from
       the old row (or defaults). *)
    List.mapi
      (fun i col ->
        match List.find_index (fun j -> j = i) indices with
        | Some _ ->
            let rec pos k = function
              | [] -> assert false
              | j :: _ when j = i -> k
              | _ :: rest -> pos (k + 1) rest
            in
            List.nth vrow (pos 0 indices)
        | None -> (
            match old_row with
            | Some row -> List.nth row i
            | None -> (
                match List.assoc_opt col.col_name defaults with
                | Some v -> v
                | None -> default_value col.col_type)))
      table.columns
  in
  Bx.Lens.make ~name:"project" ~get:(List.map project)
    ~put:(fun view rows ->
      let consumed = Array.make (List.length rows) false in
      let row_arr = Array.of_list rows in
      let find_source k =
        let rec scan i =
          if i >= Array.length row_arr then None
          else if (not consumed.(i)) && key_of_source row_arr.(i) = k then begin
            consumed.(i) <- true;
            Some row_arr.(i)
          end
          else scan (i + 1)
        in
        scan 0
      in
      List.map (fun vrow -> rebuild vrow (find_source (key_of_view vrow))) view)
    ~create:(fun view -> List.map (fun vrow -> rebuild vrow None) view)

let rec lens_with defaults table = function
  | Select pred -> select_lens table pred
  | Project cols -> project_lens ~defaults table cols
  | Seq (q1, q2) ->
      let defaults' =
        match q1 with
        | Select pred -> defaults_of_pred pred @ defaults
        | _ -> defaults
      in
      let l1 = lens_with defaults table q1 in
      let l2 = lens_with defaults' (view_table table q1) q2 in
      Bx.Lens.compose l1 l2

let lens table query = lens_with [] table query

let eval table query rows = (lens table query).Bx.Lens.get rows
