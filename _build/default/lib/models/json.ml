type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string ?(indent = 0) json =
  let buf = Buffer.create 256 in
  let pad level =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ')
    end
  in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            go (level + 1) item)
          items;
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf (if indent > 0 then ": " else ":");
            go (level + 1) v)
          fields;
        pad level;
        Buffer.add_char buf '}'
  in
  go 0 json;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Fail of string

type state = { input : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st "expected %c" c

let literal st word value =
  String.iter (fun c -> expect st c) word;
  value

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'u' ->
            advance st;
            let hex =
              if st.pos + 4 <= String.length st.input then (
                let h = String.sub st.input st.pos 4 in
                st.pos <- st.pos + 4;
                h)
              else fail st "truncated \\u escape"
            in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 256 -> Buffer.add_char buf (Char.chr code)
            | Some _ -> fail st "\\u escape above 00ff unsupported"
            | None -> fail st "bad \\u escape %s" hex);
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_int st =
  let start = st.pos in
  if peek st = Some '-' then advance st;
  let rec digits () =
    match peek st with
    | Some ('0' .. '9') -> advance st; digits ()
    | _ -> ()
  in
  digits ();
  if st.pos = start then fail st "expected a number";
  match int_of_string_opt (String.sub st.input start (st.pos - start)) with
  | Some n -> n
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string_body st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then (advance st; List [])
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; items (v :: acc)
          | Some ']' -> advance st; List.rev (v :: acc)
          | _ -> fail st "expected , or ] in array"
        in
        List (items [])
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then (advance st; Obj [])
      else
        let rec fields acc =
          skip_ws st;
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; fields ((k, v) :: acc)
          | Some '}' -> advance st; List.rev ((k, v) :: acc)
          | _ -> fail st "expected , or } in object"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> Int (parse_int st)
  | _ -> fail st "unexpected input"

let of_string input =
  let st = { input; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos < String.length input then
      Error (Printf.sprintf "at %d: trailing input" st.pos)
    else Ok v
  with Fail m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let equal (a : t) b = a = b
