(** Single-table relational algebra with view-update translation — the
    database ancestry of bx (Bancilhon–Spyratos complements, Dayal–Bernstein
    correct update translation) that the paper's introduction places
    alongside MDE and programming languages.

    Queries are selections and projections over one table; each query
    yields a {e view lens} from the table's rows to the view rows, with
    the classical translatability conditions enforced:
    - a selection view accepts only rows satisfying its predicate;
    - a projection view must retain the table's full primary key, so view
      rows can be aligned with source rows and the projected-away columns
      restored. *)

(** Predicates over rows, by column name. *)
type pred =
  | Eq of string * Relational.value  (** column = constant *)
  | Ne of string * Relational.value
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type query =
  | Select of pred
  | Project of string list  (** Columns to keep, in order. *)
  | Seq of query * query  (** Left then right. *)

exception Bad_query of string

val eval_pred : Relational.table -> pred -> Relational.row -> bool
(** Raises {!Bad_query} for unknown columns. *)

val view_table : Relational.table -> query -> Relational.table
(** The schema of the view: selection keeps the table; projection keeps
    the named columns (raises {!Bad_query} if a projection drops part of
    the primary key, making the update untranslatable). *)

val eval : Relational.table -> query -> Relational.row list -> Relational.row list
(** The query's get direction. *)

val lens :
  Relational.table -> query
  -> (Relational.row list, Relational.row list) Bx.Lens.t
(** The view-update lens.

    Selection [put]: view rows must satisfy the predicate (else
    {!Bx.Lens.Error}); rows not satisfying it are preserved in place, as
    in the classical treatment.

    Projection [put]: view rows are aligned with source rows on the key
    columns; matched rows keep their hidden column values, new keys get
    type-appropriate defaults ([0], [""], [false]).

    [Seq] composes the lenses. *)

val default_value : Relational.col_type -> Relational.value
