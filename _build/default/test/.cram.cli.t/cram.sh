  $ bxrepo list | head -6
  $ bxrepo list | wc -l
  $ bxrepo render COMPOSERS | head -9
  $ bxrepo check COMPOSERS
  $ bxrepo cite COMPOSERS
  $ bxrepo search --property 'not undoable'
  $ bxrepo search --class BENCHMARK
  $ bxrepo glossary hippocratic
  $ bxrepo show NONESUCH
  $ bxrepo demo-undoability
  $ bxrepo export ./wiki-copy
  $ bxrepo import ./wiki-copy | head -3
  $ bxrepo show LINES --json | head -5
  $ bxrepo show CELSIUS --json > draft.json
  $ bxrepo validate draft.json
  $ sed 's/"overview": ".*"/"overview": ""/' draft.json > broken.json
  $ bxrepo validate broken.json
  $ bxrepo check COMPOSERS-SYMLENS
  $ bxrepo index | head -5
  $ bxrepo manuscript | head -1
  $ bxrepo scenario --size 4
