The CLI end to end, against the seeded repository.

Listing shows every entry, provisional at 0.1, as in the paper:

  $ bxrepo list | head -6
  BOOKSTORE              v0.1   PRECISE              A tree lens: an XML-ish bookstore of (title, author, pric...
  BOOKSTORE-EDIT         v0.1   PRECISE              The delta-based bookstore: price-list edits against tree ...
  CELSIUS                v0.1   PRECISE              Celsius and Fahrenheit temperatures kept consistent by th...
  COMPOSERS              v0.1   PRECISE              This example stands for many cases where two slightly, bu...
  COMPOSERS-BOOMERANG    v0.1   PRECISE              The original, asymmetric form of the Composers example: a...
  COMPOSERS-EDIT         v0.1   PRECISE              The delta-based Composers: the same two models as COMPOSE...

  $ bxrepo list | wc -l
  17

The section 4 entry's wiki page, through the Sync lens:

  $ bxrepo render COMPOSERS | head -9
  + COMPOSERS
  
  ++ Version
  
  0.1
  
  ++ Type
  
  PRECISE





Machine verification of the paper's claims (E1):

  $ bxrepo check COMPOSERS
  COMPOSERS: claimed properties vs machine verification
  correct                verified
  hippocratic            verified
  not undoable           verified
  simply-matching        unsupported (human review)

Citations are stable and version-pinned:

  $ bxrepo cite COMPOSERS
  Perdita Stevens, James McKinna, James Cheney. "COMPOSERS", version 0.1. The Bx Examples Repository, http://bx-community.wikidot.com/examples:composers.

Search by property claim:

  $ bxrepo search --property 'not undoable'
  COMPOSERS
  FAMILIES2PERSONS
  SCHEMA-COEVOLUTION

  $ bxrepo search --class BENCHMARK
  FAMILIES2PERSONS

The glossary resolves template vocabulary:

  $ bxrepo glossary hippocratic
  hippocratic
    Restoration never modifies models that are already consistent ('first, do
    no harm').

Unknown entries fail cleanly:

  $ bxrepo show NONESUCH
  bxrepo: no entry NONESUCH
  [1]

The undoability counterexample (E2), straight from the paper's Discussion:

  $ bxrepo demo-undoability
  The COMPOSERS undoability counterexample (paper, section 4):
  
    m0 = [Britten, 1913-1976, English; Tippett, 1905-1998, English]
    n0 = [Britten, English; Tippett, English]
  
  delete Britten from n:
    n1 = [Tippett, English]
  enforce consistency on m (bwd):
    m1 = [Tippett, 1905-1998, English]
  
  restore Britten to n:
    n2 = [Britten, English; Tippett, English]
  enforce consistency on m again (bwd):
    m2 = [Britten, ????-????, English; Tippett, 1905-1998, English]
  
  dates lost: true — m cannot return to its original state.





Export writes the section 5.4 local copy; import reads it back:

  $ bxrepo export ./wiki-copy
  exported 52 files to ./wiki-copy
  $ bxrepo import ./wiki-copy | head -3
  loaded 17 entries:
    BOOKSTORE              versions 0.1
    BOOKSTORE-EDIT         versions 0.1

Structured JSON for platform moves (section 5.1):

  $ bxrepo show LINES --json | head -5
  {
    "title": "LINES",
    "version": "0.1",
    "classes": [
      "PRECISE"

Contributors validate their JSON drafts before submitting:

  $ bxrepo show CELSIUS --json > draft.json
  $ bxrepo validate draft.json
  validates.
  no style advice.
  $ sed 's/"overview": ".*"/"overview": ""/' draft.json > broken.json
  $ bxrepo validate broken.json
  error: overview must be present
  [1]

The symlens repair verifies Undoable where the base entry denies it:

  $ bxrepo check COMPOSERS-SYMLENS
  COMPOSERS-SYMLENS: claimed properties vs machine verification
  correct                verified
  hippocratic            verified
  undoable               verified

The cross-reference index and the archival manuscript:

  $ bxrepo index | head -5
  + Index
  
  ++ By class
  
  * PRECISE: BOOKSTORE, BOOKSTORE-EDIT, CELSIUS, COMPOSERS, COMPOSERS-BOOMERANG, COMPOSERS-EDIT, COMPOSERS-SYMLENS, FAMILIES2PERSONS, FORMATTER, LINES, MASTER-REPLICAS, PEOPLE, SELECT-PROJECT-VIEW, UML2RDBMS, WIKI-SYNC

  $ bxrepo manuscript | head -1
  + The Bx Examples Repository: Collected Examples

The BENCHMARK entry's scenarios stay consistent throughout:

  $ bxrepo scenario --size 4
  batch-forward(4)             create all families, derive persons once
    families=4 persons=16 restorations=2 consistent-throughout=true
  incremental-forward(4)       add families one at a time, restoring after each
    families=4 persons=16 restorations=5 consistent-throughout=true
  backward-churn(4)            delete and re-add persons, restoring families each time
    families=1 persons=4 restorations=9 consistent-throughout=true
