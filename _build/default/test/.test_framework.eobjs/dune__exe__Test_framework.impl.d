test/test_framework.ml: Alcotest Bx Char Fmt Fun Int List QCheck2 QCheck_alcotest String
