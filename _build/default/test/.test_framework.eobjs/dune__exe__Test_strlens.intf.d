test/test_strlens.mli:
