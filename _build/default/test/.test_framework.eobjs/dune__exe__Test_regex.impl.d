test/test_regex.ml: Alcotest Ambig Array Bx_regex Cset Dfa Lang List Parse QCheck2 QCheck_alcotest Regex String
