test/test_models.ml: Alcotest Bx Bx_models Csv Fmt Genealogy Json List QCheck2 QCheck_alcotest Rational Relalg Relational Result String Tree Tree_edit Uml
