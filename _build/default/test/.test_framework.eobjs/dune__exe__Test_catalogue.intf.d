test/test_catalogue.mli:
