test/test_strlens.ml: Alcotest Bx Bx_regex Bx_strlens Canonizer Cset Fun List QCheck2 QCheck_alcotest Regex Slens Split String
