test/test_check.ml: Alcotest Bx Bx_catalogue Bx_check Bx_models Bx_regex Bx_repo Bx_strlens Fmt List QCheck2 Result String
