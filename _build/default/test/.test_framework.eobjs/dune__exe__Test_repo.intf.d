test/test_repo.mli:
