(* Tests for the verification harness (bx_check): the executable
   counterpart of the paper's review step, and experiment E1 — every
   property claim of every catalogue entry is machine-checked. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Qlaw *)

let qlaw_tests =
  [
    tc "sampling is deterministic for a fixed seed" (fun () ->
        let gen = QCheck2.Gen.int_range 0 1000 in
        check Alcotest.(list int) "same" (Bx_check.Qlaw.sample ~count:10 gen)
          (Bx_check.Qlaw.sample ~count:10 gen));
    tc "different seeds differ" (fun () ->
        let gen = QCheck2.Gen.int_range 0 1000 in
        check Alcotest.bool "differ" true
          (Bx_check.Qlaw.sample ~seed:1 ~count:10 gen
          <> Bx_check.Qlaw.sample ~seed:2 ~count:10 gen));
    tc "holds_on_samples accepts a true law" (fun () ->
        let law =
          Bx.Law.make ~name:"nonneg" ~description:"x*x >= 0" (fun x ->
              Bx.Law.require (x * x >= 0) "negative square")
        in
        check Alcotest.bool "ok" true
          (Bx_check.Qlaw.holds_on_samples QCheck2.Gen.small_int law = Ok ()));
    tc "holds_on_samples reports the first violation" (fun () ->
        let law =
          Bx.Law.make ~name:"small" ~description:"x < 5" (fun x ->
              Bx.Law.require (x < 5) "too big: %d" x)
        in
        match Bx_check.Qlaw.holds_on_samples QCheck2.Gen.(0 -- 100) law with
        | Error msg ->
            check Alcotest.bool "mentions law" true
              (String.length msg > 0)
        | Ok () -> Alcotest.fail "expected a violation");
    tc "find_counterexample is None for true laws" (fun () ->
        let law =
          Bx.Law.make ~name:"refl" ~description:"x = x" (fun x ->
              Bx.Law.require (x = x) "impossible")
        in
        check Alcotest.bool "none" true
          (Bx_check.Qlaw.find_counterexample QCheck2.Gen.small_int law = None));
  ]

(* ------------------------------------------------------------------ *)
(* Verify on a hand-made bx *)

let verify_tests =
  [
    tc "a lossy bx: correct verified, undoable refuted as claimed" (fun () ->
        (* M = int * string, N = int; the string is hidden and destroyed
           by bwd — the COMPOSERS failure in miniature. *)
        let bx =
          Bx.Symmetric.make ~name:"mini-lossy"
            ~consistent:(fun (a, _) n -> a = n)
            ~fwd:(fun (a, _) _ -> a)
            ~bwd:(fun _ n -> (n, ""))
        in
        let m_space = Bx.Model.(pair int string) in
        let n_space = Bx.Model.int in
        let gen_m = QCheck2.Gen.(pair small_int (oneofl [ ""; "x"; "y" ])) in
        let gen_n = QCheck2.Gen.small_int in
        let suite =
          Bx_check.Verify.symmetric_suite ~m_space ~n_space ~gen_m ~gen_n bx
        in
        let rows =
          Bx_check.Verify.check_claims suite
            Bx.Properties.
              [
                Satisfies Correct;
                Violates Undoable;
                Violates Hippocratic (* bwd rewrites the string *);
                Satisfies Simply_matching (* unsupported *);
              ]
        in
        check Alcotest.bool "all upheld" true (Bx_check.Verify.all_upheld rows);
        let outcome_of claim =
          (List.find (fun r -> r.Bx_check.Verify.claim = claim) rows)
            .Bx_check.Verify.outcome
        in
        check Alcotest.bool "correct verified" true
          (outcome_of (Bx.Properties.Satisfies Bx.Properties.Correct)
          = Bx_check.Verify.Verified);
        check Alcotest.bool "simply-matching unsupported" true
          (outcome_of (Bx.Properties.Satisfies Bx.Properties.Simply_matching)
          = Bx_check.Verify.Unsupported));
    tc "a false claim is refuted" (fun () ->
        let bx =
          Bx.Symmetric.make ~name:"mini-broken"
            ~consistent:(fun m n -> m = n)
            ~fwd:(fun m _ -> m + 1) (* not even correct *)
            ~bwd:(fun _ n -> n)
        in
        let suite =
          Bx_check.Verify.symmetric_suite ~m_space:Bx.Model.int
            ~n_space:Bx.Model.int ~gen_m:QCheck2.Gen.small_int
            ~gen_n:QCheck2.Gen.small_int bx
        in
        let rows =
          Bx_check.Verify.check_claims suite
            [ Bx.Properties.Satisfies Bx.Properties.Correct ]
        in
        check Alcotest.bool "refuted" false (Bx_check.Verify.all_upheld rows));
    tc "a wrong 'not P' claim is refuted when no counterexample exists" (fun () ->
        let suite =
          Bx_check.Verify.symmetric_suite ~m_space:Bx.Model.int
            ~n_space:Bx.Model.int ~gen_m:QCheck2.Gen.small_int
            ~gen_n:QCheck2.Gen.small_int Bx.Symmetric.identity
        in
        let rows =
          Bx_check.Verify.check_claims suite
            [ Bx.Properties.Violates Bx.Properties.Correct ]
        in
        check Alcotest.bool "refuted" false (Bx_check.Verify.all_upheld rows));
  ]

(* ------------------------------------------------------------------ *)
(* E1: the catalogue's claimed-vs-verified table *)

let catalogue_reports_tests =
  let reports = Bx_check.Examples_check.all_reports ~count:120 () in
  [
    tc "every entry with claims produces a report" (fun () ->
        let titles = List.map fst reports in
        List.iter
          (fun expected ->
            check Alcotest.bool expected true (List.mem expected titles))
          [
            "COMPOSERS"; "COMPOSERS-BOOMERANG"; "UML2RDBMS";
            "FAMILIES2PERSONS"; "BOOKSTORE"; "PEOPLE"; "LINES"; "CELSIUS";
            "WIKI-SYNC";
          ]);
    tc "E1: no claim of any catalogue entry is refuted" (fun () ->
        List.iter
          (fun (title, rows) ->
            if not (Bx_check.Verify.all_upheld rows) then
              Alcotest.failf "%s:@.%a" title Bx_check.Verify.pp_report rows)
          reports);
    tc "COMPOSERS: the paper's four claims resolve as expected" (fun () ->
        let rows =
          match Bx_check.Examples_check.report_for ~count:150 "COMPOSERS" with
          | Ok rows -> rows
          | Error e -> Alcotest.fail e
        in
        let outcome_of name =
          List.find_map
            (fun r ->
              if Bx.Properties.claim_name r.Bx_check.Verify.claim = name then
                Some r.Bx_check.Verify.outcome
              else None)
            rows
        in
        check Alcotest.bool "correct verified" true
          (outcome_of "correct" = Some Bx_check.Verify.Verified);
        check Alcotest.bool "hippocratic verified" true
          (outcome_of "hippocratic" = Some Bx_check.Verify.Verified);
        check Alcotest.bool "not undoable verified by counterexample" true
          (outcome_of "not undoable" = Some Bx_check.Verify.Verified);
        check Alcotest.bool "simply-matching left to humans" true
          (outcome_of "simply-matching" = Some Bx_check.Verify.Unsupported));
    tc "unknown titles are an error; sketches have no suite" (fun () ->
        check Alcotest.bool "unknown" true
          (Result.is_error (Bx_check.Examples_check.report_for "NONESUCH"));
        check Alcotest.bool "sketch has no suite" true
          (Bx_check.Examples_check.suite_for "SPREADSHEET" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Generator sanity: the domains the suites rely on *)

let generator_tests =
  let sample gen = Bx_check.Qlaw.sample ~count:150 gen in
  [
    tc "composers_complement is always a consistent pair" (fun () ->
        List.iter
          (fun (m, n) ->
            check Alcotest.bool "consistent" true
              (Bx_catalogue.Composers.bx.Bx.Symmetric.consistent m n))
          (sample Bx_check.Generators.composers_complement));
    tc "employee_rows have unique ids and conform to the schema" (fun () ->
        List.iter
          (fun rows ->
            let ids = List.map (fun r -> List.nth r 0) rows in
            check Alcotest.bool "unique ids" true
              (List.length (List.sort_uniq compare ids) = List.length ids);
            check Alcotest.bool "conforms" true
              (Bx_models.Relational.conforms
                 [ Bx_catalogue.View_update.employees ]
                 [ ("employees", rows) ]
              = Ok ()))
          (sample Bx_check.Generators.employee_rows));
    tc "generated persons always have splittable names" (fun () ->
        List.iter
          (fun persons ->
            List.iter
              (fun p ->
                check Alcotest.bool "splits" true
                  (Bx_models.Genealogy.split_full_name
                     p.Bx_models.Genealogy.full_name
                  <> None))
              persons)
          (sample Bx_check.Generators.persons));
    tc "generated uml models validate" (fun () ->
        List.iter
          (fun m ->
            check Alcotest.bool "valid" true (Bx_models.Uml.validate m = Ok ()))
          (sample Bx_check.Generators.uml_model));
    tc "generated composers sources are well-typed for the lens" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool "in source type" true
              (Bx_strlens.Slens.in_source Bx_catalogue.Composers_string.lens s))
          (sample Bx_check.Generators.composers_source));
    tc "generated sloppy configs canonize into the canonical type" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool "in ctype" true
              (Bx_regex.Regex.matches
                 Bx_catalogue.Formatter.canonizer.Bx_strlens.Canonizer.ctype s))
          (sample Bx_check.Generators.sloppy_config));
    tc "random templates validate after normalisation" (fun () ->
        List.iter
          (fun t ->
            (* The generator aims for structural validity; a PRECISE class
               without two models would be the only sin, and it always
               emits at least one model plus restoration text. *)
            match Bx_repo.Template.validate t with
            | Ok () -> ()
            | Error msgs ->
                (* Only the PRECISE two-model rule may fire. *)
                List.iter
                  (fun m ->
                    check Alcotest.bool m true
                      (m = "a PRECISE example must describe at least two models"))
                  msgs)
          (sample Bx_check.Generators.template));
  ]

(* ------------------------------------------------------------------ *)
(* Suite mechanics *)

let suite_mechanics_tests =
  [
    tc "lens_suite covers the well-behavedness spectrum" (fun () ->
        let suite =
          Bx_check.Verify.lens_suite ~count:50
            ~s_space:Bx.Model.(pair int string)
            ~v_space:Bx.Model.int
            ~gen_s:QCheck2.Gen.(pair small_int (small_string ~gen:printable))
            ~gen_v:QCheck2.Gen.small_int
            (Bx.Lens.first ~default:"d")
        in
        let has p = List.mem_assoc p suite in
        List.iter
          (fun p -> check Alcotest.bool (Bx.Properties.name p) true (has p))
          Bx.Properties.
            [ Well_behaved; Very_well_behaved; Correct; Hippocratic;
              Undoable; History_ignorant; Oblivious; Bijective ];
        (* first is very well-behaved: everything checkable passes. *)
        let rows =
          Bx_check.Verify.check_claims suite
            Bx.Properties.
              [ Satisfies Well_behaved; Satisfies Very_well_behaved;
                Satisfies Correct; Satisfies Hippocratic ]
        in
        check Alcotest.bool "all verified" true (Bx_check.Verify.all_upheld rows));
    tc "report rows render" (fun () ->
        let rows =
          Bx_check.Verify.
            [
              { claim = Bx.Properties.Satisfies Bx.Properties.Correct;
                outcome = Verified };
              { claim = Bx.Properties.Violates Bx.Properties.Undoable;
                outcome = Refuted "nope" };
              { claim = Bx.Properties.Satisfies Bx.Properties.Least_change;
                outcome = Unsupported };
            ]
        in
        let text = Fmt.str "%a" Bx_check.Verify.pp_report rows in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true
              (let h = text and n = needle in
               let hl = String.length h and nl = String.length n in
               let rec scan i = i + nl <= hl && (String.sub h i nl = n || scan (i + 1)) in
               nl = 0 || scan 0))
          [ "correct"; "verified"; "REFUTED"; "unsupported" ]);
    tc "every catalogue entry with an executable bx has a suite" (fun () ->
        List.iter
          (fun title ->
            check Alcotest.bool title true
              (Bx_check.Examples_check.suite_for title <> None))
          [ "COMPOSERS"; "COMPOSERS-BOOMERANG"; "COMPOSERS-EDIT";
            "COMPOSERS-SYMLENS"; "UML2RDBMS"; "FAMILIES2PERSONS"; "BOOKSTORE";
            "BOOKSTORE-EDIT"; "SELECT-PROJECT-VIEW"; "MASTER-REPLICAS";
            "PEOPLE"; "LINES"; "CELSIUS"; "FORMATTER"; "WIKI-SYNC" ]);
    tc "documentation-only entries have no suite" (fun () ->
        List.iter
          (fun title ->
            check Alcotest.bool title true
              (Bx_check.Examples_check.suite_for title = None))
          [ "SPREADSHEET"; "SCHEMA-COEVOLUTION" ]);
  ]

let () =
  Alcotest.run "bx-check"
    [
      ("qlaw", qlaw_tests);
      ("verify", verify_tests);
      ("catalogue-reports", catalogue_reports_tests);
      ("generators", generator_tests);
      ("suite-mechanics", suite_mechanics_tests);
    ]
