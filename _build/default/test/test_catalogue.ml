(* Tests for the catalogue examples: each entry's semantics in detail,
   including the paper's section 4 scenarios (experiments E1-E4). *)

open Bx_catalogue

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let law_holds l x =
  match l.Bx.Law.check x with Bx.Law.Holds -> true | Bx.Law.Violated _ -> false

let expect_holds msg l x = check Alcotest.bool msg true (law_holds l x)
let expect_violated msg l x = check Alcotest.bool msg false (law_holds l x)

let c name dates nationality = Composers.composer ~name ~dates ~nationality

let bach = c "Bach" "1685-1750" "German"
let britten = c "Britten" "1913-1976" "English"
let cage = c "Cage" "1912-1992" "American"

(* ------------------------------------------------------------------ *)
(* COMPOSERS: semantics of the base example *)

let composers_tests =
  [
    tc "consistency per the template" (fun () ->
        let m = [ bach; britten ] in
        check Alcotest.bool "consistent" true
          (Composers.bx.consistent m
             [ ("Bach", "German"); ("Britten", "English") ]);
        check Alcotest.bool "missing entry" false
          (Composers.bx.consistent m [ ("Bach", "German") ]);
        check Alcotest.bool "extra entry" false
          (Composers.bx.consistent m
             [ ("Bach", "German"); ("Britten", "English"); ("Cage", "American") ]);
        check Alcotest.bool "duplicates in n are fine" true
          (Composers.bx.consistent [ bach ]
             [ ("Bach", "German"); ("Bach", "German") ]));
    tc "two composers sharing name+nationality with distinct dates" (fun () ->
        let m = [ bach; c "Bach" "1714-1788" "German" ] in
        check Alcotest.bool "consistent with one entry" true
          (Composers.bx.consistent m [ ("Bach", "German") ]));
    tc "fwd deletes unmatched entries, appends missing in order" (fun () ->
        let m = [ cage; bach ] in
        let n = [ ("Britten", "English"); ("Bach", "German") ] in
        check
          Alcotest.(list (pair string string))
          "result"
          [ ("Bach", "German"); ("Cage", "American") ]
          (Composers.bx.fwd m n));
    tc "fwd appends alphabetically by name then nationality" (fun () ->
        let m =
          [ c "Z" "?" "Austrian"; c "A" "?" "Danish"; c "A" "?" "Czech" ]
        in
        check
          Alcotest.(list (pair string string))
          "sorted tail"
          [ ("A", "Czech"); ("A", "Danish"); ("Z", "Austrian") ]
          (Composers.bx.fwd m []));
    tc "fwd preserves the surviving prefix order (hippocratic core)" (fun () ->
        let m = [ bach; britten ] in
        let n = [ ("Britten", "English"); ("Bach", "German") ] in
        check
          Alcotest.(list (pair string string))
          "kept order" n (Composers.bx.fwd m n));
    tc "fwd adds no duplicates even with duplicate composers" (fun () ->
        let m = [ bach; c "Bach" "1714-1788" "German" ] in
        check
          Alcotest.(list (pair string string))
          "single entry"
          [ ("Bach", "German") ]
          (Composers.bx.fwd m []));
    tc "bwd deletes unmatched composers and invents ????-???? dates" (fun () ->
        let m = [ bach; britten ] in
        let n = [ ("Bach", "German"); ("Cage", "American") ] in
        let m' = Composers.bx.bwd m n in
        check Alcotest.bool "result" true
          (Composers.equal_m m'
             [ bach; c "Cage" Composers.unknown_dates "American" ]));
    tc "bwd keeps all composers deriving an entry" (fun () ->
        let m = [ bach; c "Bach" "1714-1788" "German" ] in
        let m' = Composers.bx.bwd m [ ("Bach", "German") ] in
        check Alcotest.bool "both Bachs kept" true (Composers.equal_m m' m));
    tc "E1: correct and hippocratic on directed cases" (fun () ->
        let pairs =
          [
            ([ bach ], []);
            ([], [ ("Bach", "German") ]);
            ([ bach; britten ], [ ("Britten", "English") ]);
            ([ bach ], [ ("Bach", "German") ]);
          ]
        in
        List.iter
          (expect_holds "correct" (Bx.Symmetric.correct_law Composers.bx))
          pairs;
        List.iter
          (expect_holds "hippocratic"
             (Bx.Symmetric.hippocratic_law Composers.m_space Composers.n_space
                Composers.bx))
          pairs);
    tc "E2: the Discussion's undoability counterexample" (fun () ->
        let trace = Composers.undoability_counterexample () in
        check Alcotest.bool "dates lost" true trace.Composers.dates_lost;
        (* The lost composer is back, but with unknown dates. *)
        check Alcotest.bool "Britten re-created" true
          (List.exists
             (fun (x : Composers.composer) ->
               x.Composers.name = "Britten"
               && x.Composers.dates = Composers.unknown_dates)
             trace.Composers.m_after_second_bwd);
        (* And the law itself reports the violation on that input. *)
        expect_violated "undoable-bwd law"
          (Bx.Symmetric.undoable_bwd_law Composers.m_space Composers.bx)
          (trace.Composers.initial_m, trace.Composers.initial_n,
           trace.Composers.n_after_delete));
    tc "the paper's section 4 template validates and lints clean" (fun () ->
        (match Bx_repo.Template.validate Composers.template with
        | Ok () -> ()
        | Error msgs -> Alcotest.failf "invalid: %s" (String.concat "; " msgs));
        check Alcotest.(list string) "no lint" []
          (Bx_repo.Template.lint Composers.template));
    tc "template matches the paper: version 0.1, PRECISE, no reviewers" (fun () ->
        let t = Composers.template in
        check Alcotest.string "version" "0.1"
          (Bx_repo.Version.to_string t.Bx_repo.Template.version);
        check Alcotest.bool "precise" true
          (t.Bx_repo.Template.classes = [ Bx_repo.Template.Precise ]);
        check Alcotest.bool "no reviewers yet" true
          (t.Bx_repo.Template.reviewers = []);
        check Alcotest.int "three variants" 3
          (List.length t.Bx_repo.Template.variants);
        check Alcotest.int "two references" 2
          (List.length t.Bx_repo.Template.references));
  ]

(* ------------------------------------------------------------------ *)
(* COMPOSERS variants (E3) *)

let variants_tests =
  [
    tc "insert_at_beginning prepends missing entries" (fun () ->
        let m = [ bach; britten ] in
        let n = [ ("Britten", "English") ] in
        check
          Alcotest.(list (pair string string))
          "prepended"
          [ ("Bach", "German"); ("Britten", "English") ]
          (Composers_variants.insert_at_beginning.fwd m n));
    tc "insert_at_beginning stays correct and hippocratic" (fun () ->
        let law =
          Bx.Symmetric.hippocratic_law Composers.m_space Composers.n_space
            Composers_variants.insert_at_beginning
        in
        expect_holds "hippocratic" law
          ([ bach ], [ ("Bach", "German") ]);
        expect_holds "correct"
          (Bx.Symmetric.correct_law Composers_variants.insert_at_beginning)
          ([ bach; britten ], [ ("Cage", "American") ]));
    tc "fresh_dates uses the chosen token" (fun () ->
        let bx = Composers_variants.fresh_dates "0000-0000" in
        let m' = bx.bwd [] [ ("Cage", "American") ] in
        check Alcotest.bool "token used" true
          (List.exists
             (fun (x : Composers.composer) -> x.Composers.dates = "0000-0000")
             m'));
    tc "name_as_key updates nationality in place, keeping dates" (fun () ->
        (* The Britten, British vs Britten, English question. *)
        let m = [ c "Britten" "1913-1976" "British" ] in
        let n = [ ("Britten", "English") ] in
        let m' = Composers_variants.name_as_key.bwd m n in
        check Alcotest.bool "one Britten with dates kept" true
          (Composers.equal_m m' [ c "Britten" "1913-1976" "English" ]));
    tc "base example creates a second composer instead" (fun () ->
        let m = [ c "Britten" "1913-1976" "British" ] in
        let n = [ ("Britten", "English") ] in
        let m' = Composers.bx.bwd m n in
        check Alcotest.bool "old Britten gone, new one unknown" true
          (Composers.equal_m m'
             [ c "Britten" Composers.unknown_dates "English" ]));
    tc "name_as_key consistency requires names to be keys" (fun () ->
        check Alcotest.bool "functional violation" false
          (Composers_variants.name_as_key.consistent
             [ c "Britten" "?" "British"; c "Britten" "?" "English" ]
             [ ("Britten", "British"); ("Britten", "English") ]));
    tc "E3: alphabetical_n forfeits hippocraticness, as the paper warns" (fun () ->
        let m = [ bach; britten ] in
        (* Consistent but not alphabetically ordered. *)
        let n = [ ("Britten", "English"); ("Bach", "German") ] in
        check Alcotest.bool "consistent" true
          (Composers_variants.alphabetical_n.consistent m n);
        expect_violated "hippocratic-fwd fails"
          (Bx.Symmetric.hippocratic_fwd_law Composers.n_space
             Composers_variants.alphabetical_n)
          (m, n);
        (* It is still correct. *)
        expect_holds "correct"
          (Bx.Symmetric.correct_law Composers_variants.alphabetical_n)
          (m, n));
  ]

(* ------------------------------------------------------------------ *)
(* COMPOSERS-BOOMERANG (E4) *)

let boomerang_tests =
  [
    tc "get projects the dates away" (fun () ->
        check Alcotest.string "projection" "Bach, German\nCage, American\n"
          (Composers_string.lens.get
             "Bach, 1685-1750, German\nCage, 1912-1992, American\n"));
    tc "E4: dictionary put preserves dates under reordering" (fun () ->
        let src = "Bach, 1685-1750, German\nCage, 1912-1992, American\n" in
        check Alcotest.string "reordered with dates intact"
          "Cage, 1912-1992, American\nBach, 1685-1750, German\n"
          (Composers_string.lens.put "Cage, American\nBach, German\n" src));
    tc "E4 ablation: positional put mismatches dates under reordering" (fun () ->
        let src = "Bach, 1685-1750, German\nCage, 1912-1992, American\n" in
        check Alcotest.string "dates stay positional"
          "Cage, 1685-1750, American\nBach, 1912-1992, German\n"
          (Composers_string.positional_lens.put
             "Cage, American\nBach, German\n" src));
    tc "created records use ????-????" (fun () ->
        check Alcotest.string "created"
          "Unknown, ????-????, Composer\n"
          (Composers_string.lens.put "Unknown, Composer\n" ""));
    tc "multi-word names pass the lens types" (fun () ->
        let src = "Ralph Vaughan Williams, 1872-1958, English\n" in
        check Alcotest.string "get" "Ralph Vaughan Williams, English\n"
          (Composers_string.lens.get src);
        check Alcotest.string "put round-trip" src
          (Composers_string.lens.put (Composers_string.lens.get src) src));
    tc "source_of_composers renders canonically" (fun () ->
        check Alcotest.string "sorted"
          "Bach, 1685-1750, German\nBritten, 1913-1976, English\n"
          (Composers_string.source_of_composers [ britten; bach ]));
    tc "lens source/view types accept exactly the documented shapes" (fun () ->
        check Alcotest.bool "source ok" true
          (Bx_strlens.Slens.in_source Composers_string.lens
             "Bach, 1685-1750, German\n");
        check Alcotest.bool "missing dates rejected" false
          (Bx_strlens.Slens.in_source Composers_string.lens "Bach, German\n");
        check Alcotest.bool "view ok" true
          (Bx_strlens.Slens.in_view Composers_string.lens "Bach, German\n"));
  ]

(* ------------------------------------------------------------------ *)
(* UML2RDBMS *)

let person_class =
  Bx_models.Uml.clazz "Person"
    [
      Bx_models.Uml.attribute ~is_key:true "id" Bx_models.Uml.Integer_t;
      Bx_models.Uml.attribute "name" Bx_models.Uml.String_t;
    ]

let scratch_class =
  Bx_models.Uml.clazz ~persistent:false "Scratch"
    [ Bx_models.Uml.attribute "note" Bx_models.Uml.String_t ]

let uml2rdbms_tests =
  [
    tc "round-trip between classes and tables" (fun () ->
        let t = Uml2rdbms.table_of_class person_class in
        check Alcotest.string "table name" "Person" t.Bx_models.Relational.table_name;
        check Alcotest.bool "class rebuilt" true
          (Uml2rdbms.class_of_table t = person_class));
    tc "fwd derives tables only for persistent classes" (fun () ->
        let schema = Uml2rdbms.bx.fwd [ person_class; scratch_class ] [] in
        check Alcotest.(list string) "tables" [ "Person" ]
          (Bx_models.Relational.table_names schema));
    tc "bwd keeps non-persistent classes" (fun () ->
        let schema = [ Uml2rdbms.table_of_class person_class ] in
        let model = Uml2rdbms.bx.bwd [ scratch_class ] schema in
        check Alcotest.(list string) "classes" [ "Person"; "Scratch" ]
          (Bx_models.Uml.class_names model));
    tc "bwd drops persistent classes missing from the schema" (fun () ->
        let model = Uml2rdbms.bx.bwd [ person_class; scratch_class ] [] in
        check Alcotest.(list string) "only hidden" [ "Scratch" ]
          (Bx_models.Uml.class_names model));
    tc "undoable, unlike COMPOSERS" (fun () ->
        let m = [ person_class; scratch_class ] in
        let n = Uml2rdbms.bx.fwd m [] in
        expect_holds "undoable-bwd"
          (Bx.Symmetric.undoable_bwd_law Uml2rdbms.uml_space Uml2rdbms.bx)
          (m, n, []);
        expect_holds "undoable-fwd"
          (Bx.Symmetric.undoable_fwd_law Uml2rdbms.schema_space Uml2rdbms.bx)
          (m, [], n));
    tc "attribute/column type mapping is a bijection" (fun () ->
        List.iter
          (fun ty ->
            let col =
              Uml2rdbms.col_of_attr (Bx_models.Uml.attribute "x" ty)
            in
            check Alcotest.bool "round-trip" true
              ((Uml2rdbms.attr_of_col col).Bx_models.Uml.attr_type = ty))
          Bx_models.Uml.[ String_t; Integer_t; Boolean_t ]);
  ]

(* ------------------------------------------------------------------ *)
(* FAMILIES2PERSONS *)

open Bx_models.Genealogy

let march =
  family ~father:"Jim" ~mother:"Cindy" ~sons:[ "Brandon" ] "March"

let families_tests =
  [
    tc "consistency compares multisets of (name, gender)" (fun () ->
        let pers =
          [
            person Male "Jim March";
            person Female "Cindy March";
            person Male "Brandon March";
          ]
        in
        check Alcotest.bool "consistent" true
          ((Families2persons.bx ()).consistent [ march ] pers);
        check Alcotest.bool "wrong gender" false
          ((Families2persons.bx ()).consistent [ march ]
             [ person Female "Jim March"; person Female "Cindy March";
               person Male "Brandon March" ]));
    tc "fwd keeps birthdays of surviving persons" (fun () ->
        let pers = [ person ~birthday:"1960-05-05" Male "Jim March" ] in
        let pers' = (Families2persons.bx ()).fwd [ march ] pers in
        let jim = List.find (fun p -> p.full_name = "Jim March") pers' in
        check Alcotest.string "birthday kept" "1960-05-05" jim.birthday;
        check Alcotest.int "all members present" 3 (List.length pers'));
    tc "fwd deletes persons with no member" (fun () ->
        let pers = [ person Male "David Sailor" ] in
        let pers' = (Families2persons.bx ()).fwd [ march ] pers in
        check Alcotest.bool "David gone" true
          (not (List.exists (fun p -> p.full_name = "David Sailor") pers')));
    tc "bwd removes members with no person" (fun () ->
        let fams' =
          (Families2persons.bx ()).bwd [ march ]
            [ person Male "Jim March"; person Female "Cindy March" ]
        in
        let m = List.find (fun f -> f.last_name = "March") fams' in
        check Alcotest.(list string) "no sons" [] m.sons;
        check Alcotest.bool "parents kept" true
          (m.father = Some "Jim" && m.mother = Some "Cindy"));
    tc "bwd prefer-parent fills free parent slots" (fun () ->
        let fams =
          [ family ~mother:"Jackie" ~sons:[ "David" ] "Sailor" ]
        in
        let pers =
          [
            person Female "Jackie Sailor";
            person Male "David Sailor";
            person Male "Peter Sailor";
          ]
        in
        let fams' = (Families2persons.bx ()).bwd fams pers in
        let s = List.find (fun f -> f.last_name = "Sailor") fams' in
        check Alcotest.(option string) "Peter is father" (Some "Peter") s.father);
    tc "bwd prefer-child always adds children" (fun () ->
        let fams =
          [ family ~mother:"Jackie" ~sons:[ "David" ] "Sailor" ]
        in
        let pers =
          [
            person Female "Jackie Sailor";
            person Male "David Sailor";
            person Male "Peter Sailor";
          ]
        in
        let fams' =
          (Families2persons.bx ~policy:Families2persons.Prefer_child ()).bwd
            fams pers
        in
        let s = List.find (fun f -> f.last_name = "Sailor") fams' in
        check Alcotest.(option string) "no father" None s.father;
        check Alcotest.(list string) "David and Peter sons"
          [ "David"; "Peter" ] s.sons);
    tc "bwd founds a new family for unknown last names" (fun () ->
        let fams' =
          (Families2persons.bx ()).bwd [] [ person Female "Ana Smith" ]
        in
        check Alcotest.int "one family" 1 (List.length fams');
        check Alcotest.(option string) "Ana is mother" (Some "Ana")
          (List.hd fams').mother);
    tc "not undoable (bwd): a deleted son comes back as a father" (fun () ->
        (* Jim is a son in a family without a father; deleting and
           re-adding him makes prefer-parent promote him. *)
        let fams = [ family ~mother:"Cindy" ~sons:[ "Jim" ] "March" ] in
        let pers = (Families2persons.bx ()).fwd fams [] in
        let pers_without_jim =
          List.filter (fun p -> p.full_name <> "Jim March") pers
        in
        expect_violated "undoable-bwd"
          (Bx.Symmetric.undoable_bwd_law Families2persons.families_space
             (Families2persons.bx ()))
          (fams, pers, pers_without_jim));
    tc "not undoable (fwd): birthdays die with their person" (fun () ->
        let fams = [ march ] in
        let pers =
          [
            person ~birthday:"1960-05-05" Male "Jim March";
            person Female "Cindy March";
            person Male "Brandon March";
          ]
        in
        (* An interfering family register without Jim deletes his person;
           restoring with the original register recreates him with an
           unknown birthday. *)
        let fams_without_jim =
          [ family ~mother:"Cindy" ~sons:[ "Brandon" ] "March" ]
        in
        expect_violated "undoable-fwd"
          (Bx.Symmetric.undoable_fwd_law Families2persons.persons_space
             (Families2persons.bx ()))
          (fams, fams_without_jim, pers));
    tc "empty families survive restoration (documented choice)" (fun () ->
        let empty = family "Empty" in
        let fams' = (Families2persons.bx ()).bwd [ empty ] [] in
        check Alcotest.bool "kept" true
          (List.exists (fun f -> f.last_name = "Empty") fams'));
  ]

(* ------------------------------------------------------------------ *)
(* BOOKSTORE / LINES / PEOPLE / CELSIUS *)

let small_tests =
  [
    tc "bookstore: get projects, put preserves authors by title" (fun () ->
        let store =
          Bookstore.store_of_books
            [
              { Bookstore.title = "tapl"; author = "pierce"; price = 60 };
              { Bookstore.title = "sicp"; author = "abelson"; price = 40 };
            ]
        in
        check Alcotest.bool "get" true
          (Bookstore.lens.get store = [ ("tapl", 60); ("sicp", 40) ]);
        let store' = Bookstore.lens.put [ ("sicp", 45); ("tapl", 60) ] store in
        let books = Bookstore.books_of_store store' in
        check Alcotest.bool "authors followed titles" true
          (List.map (fun b -> (b.Bookstore.title, b.Bookstore.author)) books
          = [ ("sicp", "abelson"); ("tapl", "pierce") ]));
    tc "bookstore: PutPut fails (drop then re-add loses the author)" (fun () ->
        let store =
          Bookstore.store_of_books
            [ { Bookstore.title = "tapl"; author = "pierce"; price = 60 } ]
        in
        expect_violated "PutPut"
          (Bx.Lens.put_put_law Bookstore.store_space Bookstore.lens)
          (store, [], [ ("tapl", 60) ]));
    tc "lines: iso laws on the documented domain" (fun () ->
        expect_holds "bwd-fwd"
          (Bx.Iso.fwd_bwd_law Lines.document_space Lines.iso)
          "ab\n\ncd\n";
        expect_holds "fwd-bwd"
          (Bx.Iso.bwd_fwd_law Lines.lines_space Lines.iso)
          [ "ab"; ""; "cd" ]);
    tc "lines: empty document is the empty list" (fun () ->
        check Alcotest.(list string) "split" [] (Lines.iso.fwd "");
        check Alcotest.string "join" "" (Lines.iso.bwd []));
    tc "lines: validity predicates" (fun () ->
        check Alcotest.bool "terminated ok" true (Lines.valid_document "a\n");
        check Alcotest.bool "unterminated bad" false (Lines.valid_document "a");
        check Alcotest.bool "lines ok" true (Lines.valid_lines [ "a"; "b" ]);
        check Alcotest.bool "embedded newline bad" false
          (Lines.valid_lines [ "a\nb" ]));
    tc "people: emails follow names through reorders" (fun () ->
        let src =
          [
            { People.person = "ann"; age = 31; email = "ann@x.org" };
            { People.person = "bob"; age = 42; email = "bob@y.org" };
          ]
        in
        let src' = People.lens.put [ ("bob", 43); ("ann", 31) ] src in
        check Alcotest.bool "emails kept" true
          (List.map (fun e -> (e.People.person, e.People.email)) src'
          = [ ("bob", "bob@y.org"); ("ann", "ann@x.org") ]));
    tc "people: new names get the default email" (fun () ->
        let src' = People.lens.put [ ("zoe", 7) ] [] in
        check Alcotest.bool "default" true
          ((List.hd src').People.email = "unknown@example.org"));
    tc "celsius: exact conversions" (fun () ->
        let open Bx_models.Rational in
        check Alcotest.bool "0C = 32F" true
          (equal (Celsius.to_fahrenheit zero) (of_int 32));
        check Alcotest.bool "100C = 212F" true
          (equal (Celsius.to_fahrenheit (of_int 100)) (of_int 212));
        check Alcotest.bool "-40 fixed point" true
          (equal (Celsius.to_fahrenheit (of_int (-40))) (of_int (-40))));
    tc "celsius: bijective law holds exactly" (fun () ->
        expect_holds "bijective"
          (Bx.Symmetric.bijective_law Celsius.celsius_space
             Celsius.fahrenheit_space Celsius.bx)
          (Bx_models.Rational.make 1 3, Bx_models.Rational.of_int 99));
  ]

(* ------------------------------------------------------------------ *)
(* Catalogue as a whole *)

let catalogue_tests =
  [
    tc "all templates validate" (fun () ->
        List.iter
          (fun t ->
            match Bx_repo.Template.validate t with
            | Ok () -> ()
            | Error msgs ->
                Alcotest.failf "%s: %s" t.Bx_repo.Template.title
                  (String.concat "; " msgs))
          (Catalogue.all ()));
    tc "seventeen entries, titles unique" (fun () ->
        let titles =
          List.map (fun t -> t.Bx_repo.Template.title) (Catalogue.all ())
        in
        check Alcotest.int "count" 17 (List.length titles);
        check Alcotest.int "unique" 17
          (List.length (List.sort_uniq String.compare titles)));
    tc "find is case-insensitive" (fun () ->
        check Alcotest.bool "lower" true (Catalogue.find "composers" <> None);
        check Alcotest.bool "mixed" true (Catalogue.find "Uml2Rdbms" <> None);
        check Alcotest.bool "missing" true (Catalogue.find "nonesuch" = None));
    tc "seed registry holds the whole catalogue, all provisional" (fun () ->
        let reg = Catalogue.seed () in
        check Alcotest.int "size" 17 (Bx_repo.Registry.size reg);
        List.iter
          (fun id ->
            match Bx_repo.Registry.latest reg id with
            | Ok t ->
                check Alcotest.bool "provisional" true
                  (Bx_repo.Template.is_provisional t)
            | Error e -> Alcotest.fail (Bx_repo.Registry.error_message e))
          (Bx_repo.Registry.ids reg));
    tc "seeded entries render to parseable wiki pages" (fun () ->
        let reg = Catalogue.seed () in
        List.iter
          (fun (path, text) ->
            match Bx_repo.Sync.of_wiki_text text with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: %s" path e)
          (Bx_repo.Registry.export reg));
    tc "every PRECISE entry has machine-checked claims or artefacts" (fun () ->
        List.iter
          (fun t ->
            if List.mem Bx_repo.Template.Precise t.Bx_repo.Template.classes then
              check Alcotest.bool
                (t.Bx_repo.Template.title ^ " has claims")
                true
                (t.Bx_repo.Template.properties <> []))
          (Catalogue.all ()));
    tc "the sketch entry has no artefacts, by design" (fun () ->
        match Catalogue.find "SPREADSHEET" with
        | Some t ->
            check Alcotest.bool "sketch" true
              (t.Bx_repo.Template.classes = [ Bx_repo.Template.Sketch ]);
            check Alcotest.bool "no artefacts" true
              (t.Bx_repo.Template.artefacts = [])
        | None -> Alcotest.fail "missing SPREADSHEET");
  ]

(* ------------------------------------------------------------------ *)
(* COMPOSERS-EDIT: the delta-based variant *)

let edit_tests =
  let open Composers_edit in
  let pair_m m = m in
  [
    tc "adding a composer inserts its entry at the end" (fun () ->
        let c0 = (pair_m [ bach ], [ ("Bach", "German") ]) in
        let edits = [ Add_composer britten ] in
        let n_edits, (m', n') = lens.Bx.Elens.fwd edits c0 in
        check Alcotest.bool "insert at end" true
          (n_edits = [ Insert_entry (1, ("Britten", "English")) ]);
        check Alcotest.bool "complement updated consistently" true
          (consistent_complement (m', n')));
    tc "adding a covered composer translates to no edit" (fun () ->
        (* A second Bach with different dates: the pair is already in n. *)
        let c0 = ([ bach ], [ ("Bach", "German") ]) in
        let other_bach = c "Bach" "1714-1788" "German" in
        let n_edits, _ = lens.Bx.Elens.fwd [ Add_composer other_bach ] c0 in
        check Alcotest.bool "silent" true (n_edits = []));
    tc "removing one of two covering composers is silent" (fun () ->
        let other_bach = c "Bach" "1714-1788" "German" in
        let m = Composers.canon_m [ bach; other_bach ] in
        let c0 = (m, [ ("Bach", "German") ]) in
        let n_edits, (m', n') =
          lens.Bx.Elens.fwd [ Remove_composer bach ] c0
        in
        check Alcotest.bool "no n-edit" true (n_edits = []);
        check Alcotest.bool "still consistent" true
          (consistent_complement (m', n'));
        check Alcotest.int "one Bach left" 1 (List.length m'));
    tc "removing the last covering composer deletes all its entries" (fun () ->
        let c0 =
          ([ bach ], [ ("Bach", "German"); ("Bach", "German") ])
        in
        let n_edits, (_, n') = lens.Bx.Elens.fwd [ Remove_composer bach ] c0 in
        check Alcotest.int "two deletions" 2 (List.length n_edits);
        check Alcotest.(list (pair string string)) "empty" [] n');
    tc "inserting an underivable entry creates a composer" (fun () ->
        let c0 = ([], []) in
        let m_edits, (m', n') =
          lens.Bx.Elens.bwd [ Insert_entry (0, ("Cage", "American")) ] c0
        in
        check Alcotest.int "one m-edit" 1 (List.length m_edits);
        check Alcotest.bool "unknown dates" true
          (List.exists
             (fun (x : Composers.composer) ->
               x.Composers.dates = Composers.unknown_dates)
             m');
        check Alcotest.bool "consistent" true (consistent_complement (m', n')));
    tc "deleting a duplicated entry keeps the composer" (fun () ->
        let c0 = ([ bach ], [ ("Bach", "German"); ("Bach", "German") ]) in
        let m_edits, (m', n') = lens.Bx.Elens.bwd [ Delete_entry 0 ] c0 in
        check Alcotest.bool "no m-edit" true (m_edits = []);
        check Alcotest.int "Bach survives" 1 (List.length m');
        check Alcotest.bool "consistent" true (consistent_complement (m', n')));
    tc "deleting the last entry removes every covering composer" (fun () ->
        let other_bach = c "Bach" "1714-1788" "German" in
        let m = Composers.canon_m [ bach; other_bach ] in
        let c0 = (m, [ ("Bach", "German") ]) in
        let m_edits, (m', _) = lens.Bx.Elens.bwd [ Delete_entry 0 ] c0 in
        check Alcotest.int "two removals" 2 (List.length m_edits);
        check Alcotest.int "empty" 0 (List.length m'));
    tc "within a session, delete then re-insert keeps nothing extra" (fun () ->
        (* The edit lens's complement remembers the models, not deleted
           data: delete Bach's entry, re-insert it -- the recreated
           composer has unknown dates, same as the state-based story, but
           the *translation* shows exactly which objects died. *)
        let c0 = ([ bach ], [ ("Bach", "German") ]) in
        let m_edits1, c1 = lens.Bx.Elens.bwd [ Delete_entry 0 ] c0 in
        check Alcotest.bool "Bach removed" true
          (m_edits1 = [ Remove_composer bach ]);
        let m_edits2, (m2, _) =
          lens.Bx.Elens.bwd [ Insert_entry (0, ("Bach", "German")) ] c1
        in
        check Alcotest.int "one re-creation" 1 (List.length m_edits2);
        check Alcotest.bool "unknown dates" true
          (List.for_all
             (fun (x : Composers.composer) ->
               x.Composers.dates = Composers.unknown_dates)
             m2));
    tc "apply_consistently applies both sides" (fun () ->
        match
          Composers_edit.apply_consistently ([], [])
            [ Add_composer bach; Add_composer britten ]
        with
        | Ok (m', n') ->
            check Alcotest.int "two composers" 2 (List.length m');
            check Alcotest.int "two entries" 2 (List.length n');
            check Alcotest.bool "consistent" true
              (Composers_edit.consistent_complement (m', n'))
        | Error e -> Alcotest.fail e);
    tc "inapplicable edits are reported" (fun () ->
        match
          Composers_edit.apply_consistently ([], [])
            [ Remove_composer bach ]
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
    tc "edit modules satisfy the identity law" (fun () ->
        check Alcotest.bool "m identity" true
          (Composers_edit.m_module.Bx.Elens.apply [] [ bach ] = Some [ bach ]);
        check Alcotest.bool "n identity" true
          (Composers_edit.n_module.Bx.Elens.apply [] [] = Some []));
  ]

(* ------------------------------------------------------------------ *)
(* FAMILIES2PERSONS scenarios (BenchmarX style) *)

let scenario_tests =
  [
    tc "batch forward produces all members" (fun () ->
        let out = F2p_scenarios.run (F2p_scenarios.batch_forward 5) in
        check Alcotest.int "20 persons" 20 (List.length out.F2p_scenarios.final_persons);
        check Alcotest.bool "consistent throughout" true
          out.F2p_scenarios.consistent_after_every_step);
    tc "incremental forward stays consistent at every step" (fun () ->
        let out = F2p_scenarios.run (F2p_scenarios.incremental_forward 6) in
        check Alcotest.bool "consistent" true
          out.F2p_scenarios.consistent_after_every_step;
        check Alcotest.int "6 families" 6
          (List.length out.F2p_scenarios.final_families);
        check Alcotest.int "restorations = steps + 1" 7
          out.F2p_scenarios.restorations);
    tc "backward churn stays consistent but forgets roles" (fun () ->
        let scenario = F2p_scenarios.backward_churn 4 in
        let out = F2p_scenarios.run scenario in
        check Alcotest.bool "consistent" true
          out.F2p_scenarios.consistent_after_every_step;
        (* The churned fathers come back as parents under prefer-parent
           (slot freed by their own deletion), so sizes are stable. *)
        check Alcotest.int "families stable"
          (List.length scenario.F2p_scenarios.initial_families)
          (List.length out.F2p_scenarios.final_families));
    tc "policies can differ on the same scenario" (fun () ->
        let scenario = F2p_scenarios.backward_churn 2 in
        let parent = F2p_scenarios.run ~policy:Families2persons.Prefer_parent scenario in
        let child = F2p_scenarios.run ~policy:Families2persons.Prefer_child scenario in
        check Alcotest.bool "both consistent" true
          (parent.F2p_scenarios.consistent_after_every_step
          && child.F2p_scenarios.consistent_after_every_step);
        (* Under prefer-child the re-added father lands among the sons. *)
        let sons_of out =
          List.concat_map
            (fun f -> f.Bx_models.Genealogy.sons)
            out.F2p_scenarios.final_families
        in
        check Alcotest.bool "child policy grows sons" true
          (List.length (sons_of child) >= List.length (sons_of parent)));
    tc "synthetic families validate" (fun () ->
        check Alcotest.bool "valid" true
          (Bx_models.Genealogy.validate_families
             (F2p_scenarios.synthetic_families 8)
          = Ok ()));
  ]

(* ------------------------------------------------------------------ *)
(* FORMATTER: the quotient-lens entry *)

let formatter_tests =
  [
    tc "format strips spaces around equals" (fun () ->
        check Alcotest.string "formatted" "key=value\nport=80\n"
          (Formatter.format "key  =  value\nport =80\n"));
    tc "canonical documents are untouched" (fun () ->
        check Alcotest.string "fixpoint" "a=b\n" (Formatter.format "a=b\n"));
    tc "put installs the edited canonical text" (fun () ->
        check Alcotest.string "installed" "x=1\n"
          (Formatter.lens.Bx_strlens.Slens.put "x=1\n" "old  = stuff\n"));
    tc "the sloppy language accepts what the canonical rejects" (fun () ->
        check Alcotest.bool "sloppy ok" true
          (Bx_regex.Regex.matches Formatter.key_value_doc "a =b\n");
        check Alcotest.bool "canonical rejects" false
          (Bx_regex.Regex.matches Formatter.canonical_doc "a =b\n"));
    tc "canonizer laws hold on assorted documents" (fun () ->
        let law = Bx_strlens.Canonizer.canonized_law Formatter.canonizer in
        List.iter
          (fun s ->
            match law.Bx.Law.check s with
            | Bx.Law.Holds -> ()
            | Bx.Law.Violated m -> Alcotest.failf "%S: %s" s m)
          [ ""; "a=b\n"; "a = b\n"; "a  =b\nkey=value\n" ]);
    tc "GetPut holds on canonical sources, canonizes sloppy ones" (fun () ->
        let l = Formatter.lens in
        check Alcotest.string "canonical round trip" "a=b\n"
          (l.Bx_strlens.Slens.put (l.Bx_strlens.Slens.get "a=b\n") "a=b\n");
        (* On a sloppy source, put(get s) yields the canonical form --
           the quotient behaviour, not a law violation. *)
        check Alcotest.string "sloppy normalises" "a=b\n"
          (l.Bx_strlens.Slens.put (l.Bx_strlens.Slens.get "a  =  b\n")
             "a  =  b\n"));
  ]

(* ------------------------------------------------------------------ *)
(* The INDUSTRIAL entry *)

let industrial_tests =
  [
    tc "SCHEMA-COEVOLUTION validates and lints clean" (fun () ->
        let t = Migration_industrial.template in
        (match Bx_repo.Template.validate t with
        | Ok () -> ()
        | Error msgs -> Alcotest.failf "invalid: %s" (String.concat "; " msgs));
        check Alcotest.(list string) "no advice" [] (Bx_repo.Template.lint t));
    tc "an INDUSTRIAL entry without artefacts draws lint advice" (fun () ->
        let t =
          { Migration_industrial.template with Bx_repo.Template.artefacts = [] }
        in
        check Alcotest.bool "advice" true (Bx_repo.Template.lint t <> []));
    tc "searchable by class INDUSTRIAL" (fun () ->
        let reg = Catalogue.seed () in
        let hits =
          Bx_repo.Registry.search reg
            (Bx_repo.Registry.query ~cls:Bx_repo.Template.Industrial ())
        in
        check Alcotest.(list string) "one industrial entry"
          [ "SCHEMA-COEVOLUTION" ]
          (List.map Bx_repo.Identifier.to_string hits));
  ]

(* ------------------------------------------------------------------ *)
(* MASTER-REPLICAS: the three-model entry *)

let replicas_tests =
  let master =
    [ ("news/a", "1"); ("mail/x", "2"); ("news/b", "3"); ("cfg/z", "4") ]
  in
  [
    tc "restriction lenses project by prefix" (fun () ->
        check Alcotest.bool "news" true
          (Replicas.news_lens.Bx.Lens.get master
          = [ ("news/a", "1"); ("news/b", "3") ]);
        check Alcotest.bool "mail" true
          (Replicas.mail_lens.Bx.Lens.get master = [ ("mail/x", "2") ]));
    tc "consistency is both restrictions at once" (fun () ->
        check Alcotest.bool "consistent" true
          (Replicas.bx.consistent3 master
             [ ("news/a", "1"); ("news/b", "3") ]
             [ ("mail/x", "2") ]);
        check Alcotest.bool "stale news replica" false
          (Replicas.bx.consistent3 master [ ("news/a", "0") ]
             [ ("mail/x", "2") ]));
    tc "restoring from a replica merges and regenerates the other" (fun () ->
        (* Edit the news replica: update a, drop b. *)
        let master', mail' =
          Replicas.bx.restore_from_b master
            [ ("news/a", "updated") ]
            []
        in
        check Alcotest.bool "foreign entries kept in place" true
          (List.mem ("cfg/z", "4") master' && List.mem ("mail/x", "2") master');
        check Alcotest.bool "news updated" true
          (List.mem ("news/a", "updated") master');
        check Alcotest.bool "news/b dropped" true
          (not (List.mem_assoc "news/b" master'));
        check Alcotest.bool "mail regenerated" true
          (mail' = [ ("mail/x", "2") ]));
    tc "restoring from the master regenerates both replicas" (fun () ->
        let news, mail = Replicas.bx.restore_from_a master [] [ ("junk", "0") ] in
        check Alcotest.bool "news" true (news = [ ("news/a", "1"); ("news/b", "3") ]);
        check Alcotest.bool "mail" true (mail = [ ("mail/x", "2") ]));
    tc "ternary laws hold on directed cases" (fun () ->
        let law = Bx.Multi.correct3_law Replicas.bx in
        List.iter (expect_holds "correct3" law)
          [
            (master, [], []);
            (master, [ ("news/z", "9") ], [ ("mail/q", "8") ]);
            ([], [ ("news/z", "9") ], []);
          ];
        let hippo =
          Bx.Multi.hippocratic3_law Replicas.master_space
            (Replicas.replica_space "news")
            (Replicas.replica_space "mail")
            Replicas.bx
        in
        expect_holds "hippocratic3" hippo
          (master, [ ("news/a", "1"); ("news/b", "3") ], [ ("mail/x", "2") ]));
  ]

(* ------------------------------------------------------------------ *)
(* High-count property sweeps over the catalogue laws *)

let qtest name gen law =
  QCheck_alcotest.to_alcotest (Bx_check.Qlaw.to_qcheck ~count:400 ~name gen law)

let property_sweep_tests =
  let open Bx_check.Generators in
  let composers_pairs = mixed_pair Composers.bx composers_m composers_n in
  let families_pairs =
    mixed_pair (Families2persons.bx ()) families persons
  in
  let uml_pairs = mixed_pair Uml2rdbms.bx uml_model rdb_schema in
  [
    qtest "composers: correct on 400 random pairs" composers_pairs
      (Bx.Symmetric.correct_law Composers.bx);
    qtest "composers: hippocratic on 400 random pairs" composers_pairs
      (Bx.Symmetric.hippocratic_law Composers.m_space Composers.n_space
         Composers.bx);
    qtest "composers variants: insert-at-beginning correct" composers_pairs
      (Bx.Symmetric.correct_law Composers_variants.insert_at_beginning);
    qtest "composers variants: name-as-key correct on its domain"
      (* name-as-key requires names to be keys in both models — its
         consistency relation says so — hence the deduplication. *)
      (QCheck2.Gen.map
         (fun (m, n) ->
           let dedup_by key l =
             List.fold_left
               (fun acc x ->
                 if List.exists (fun y -> key y = key x) acc then acc
                 else acc @ [ x ])
               [] l
           in
           ( dedup_by (fun (c : Composers.composer) -> c.Composers.name) m,
             dedup_by fst n ))
         composers_pairs)
      (Bx.Symmetric.correct_law Composers_variants.name_as_key);
    qtest "families2persons: correct on 400 random pairs" families_pairs
      (Bx.Symmetric.correct_law (Families2persons.bx ()));
    qtest "families2persons (prefer-child): correct" families_pairs
      (Bx.Symmetric.correct_law
         (Families2persons.bx ~policy:Families2persons.Prefer_child ()));
    qtest "uml2rdbms: correct and hippocratic" uml_pairs
      (Bx.Law.conj ~name:"both" ~description:"correct and hippocratic"
         [
           Bx.Symmetric.correct_law Uml2rdbms.bx;
           Bx.Symmetric.hippocratic_law Uml2rdbms.uml_space
             Uml2rdbms.schema_space Uml2rdbms.bx;
         ]);
    qtest "celsius: bijective on 400 random rationals"
      QCheck2.Gen.(map (fun (a, b) -> (a, b)) (pair rational rational))
      (Bx.Symmetric.bijective_law Celsius.celsius_space
         Celsius.fahrenheit_space Celsius.bx);
    qtest "lines: bijective on valid documents"
      QCheck2.Gen.(pair document line_list)
      (Bx.Symmetric.bijective_law Lines.document_space Lines.lines_space
         Lines.bx);
    qtest "boomerang lens: GetPut on 400 random sources" composers_source
      (Bx_strlens.Slens.get_put_law Composers_string.lens);
    qtest "boomerang diff lens: GetPut on 400 random sources" composers_source
      (Bx_strlens.Slens.get_put_law Composers_string.diff_lens);
    qtest "formatter: canonizer laws on sloppy documents" sloppy_config
      (Bx_strlens.Canonizer.canonized_law Formatter.canonizer);
  ]

(* ------------------------------------------------------------------ *)
(* Least change on COMPOSERS (the founding project's own question) *)

let composers_candidates m n =
  (* A pool of plausible repairs: the base answer, the
     insert-at-beginning variant's, the fully sorted list, and n itself. *)
  [
    Composers.bx.fwd m n;
    Composers_variants.insert_at_beginning.fwd m n;
    List.sort compare (Composers.bx.fwd m n);
    n;
  ]

let entry_distance = Bx.Least_change.list_edit_distance ~equal:( = )

let least_change_tests =
  [
    tc "every consistent repair has the same entry SET: set-minimality is free" (fun () ->
        (* Consistency pins the set of (name, nationality) pairs exactly,
           so with the set distance all consistent repairs are equal and
           the base fwd is trivially minimal. *)
        let law =
          Bx.Least_change.fwd_law ~candidates:composers_candidates
            ~distance:(Bx.Least_change.set_distance ~compare)
            Composers.bx
        in
        List.iter (expect_holds "set-minimal" law)
          [
            ([ bach; britten ], [ ("Faure", "French"); ("Bach", "German") ]);
            ([ bach ], []);
            ([], [ ("Bach", "German") ]);
          ]);
    tc "under EDIT distance, insertion position matters: append can lose" (fun () ->
        (* m = {Bach, Britten}, n = [Faure; Bach]: deleting Faure and
           prepending Britten needs 1 edit (substitute in place), while
           the base example's append-at-end needs 2.  The paper's
           'where is a new composer added?' variant question is thus a
           least-change question, and the base example answers it
           non-minimally. *)
        let law =
          Bx.Least_change.fwd_law ~candidates:composers_candidates
            ~distance:entry_distance Composers.bx
        in
        expect_violated "append loses to prepend here" law
          ([ bach; britten ], [ ("Faure", "French"); ("Bach", "German") ]);
        (* On already-consistent inputs hippocraticness makes it minimal. *)
        expect_holds "consistent input is untouched" law
          ([ bach; britten ], [ ("Britten", "English"); ("Bach", "German") ]));
    tc "alphabetical-n is NOT least-change (it reorders gratuitously)" (fun () ->
        let law =
          Bx.Least_change.fwd_law ~candidates:composers_candidates
            ~distance:entry_distance Composers_variants.alphabetical_n
        in
        expect_violated "reordering costs" law
          ([ bach; britten ], [ ("Britten", "English"); ("Bach", "German") ]));
    tc "set-distance least-change sweep over random pairs" (fun () ->
        match
          Bx_check.Qlaw.holds_on_samples ~count:300
            (Bx_check.Generators.mixed_pair Composers.bx
               Bx_check.Generators.composers_m Bx_check.Generators.composers_n)
            (Bx.Least_change.fwd_law ~candidates:composers_candidates
               ~distance:(Bx.Least_change.set_distance ~compare)
               Composers.bx)
        with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
  ]

(* ------------------------------------------------------------------ *)
(* BOOKSTORE-EDIT: the delta-based bookstore *)

let bookstore_edit_tests =
  let open Bookstore_edit in
  let store2 =
    Bookstore.store_of_books
      [
        { Bookstore.title = "tapl"; author = "pierce"; price = 60 };
        { Bookstore.title = "sicp"; author = "abelson"; price = 40 };
      ]
  in
  [
    tc "well_formed recognises the encoding" (fun () ->
        check Alcotest.bool "good" true (well_formed store2);
        check Alcotest.bool "bad" false
          (well_formed (Bx_models.Tree.node "store" [ Bx_models.Tree.leaf "junk" ])));
    tc "a price update relabels exactly one leaf" (fun () ->
        let tree_ops, store' =
          lens.Bx.Elens.fwd [ Bx.Elens.Update_at (0, ("tapl", 65)) ] store2
        in
        check Alcotest.int "one op" 1 (List.length tree_ops);
        (match tree_ops with
        | [ Bx_models.Tree_edit.Relabel ([ 0; 2 ], "price=65") ] -> ()
        | _ -> Alcotest.fail "expected a single price relabel");
        check Alcotest.bool "authors untouched" true
          (List.map (fun b -> b.Bookstore.author) (Bookstore.books_of_store store')
          = [ "pierce"; "abelson" ]);
        check Alcotest.bool "view updated" true
          (view_of_store store' = [ ("tapl", 65); ("sicp", 40) ]));
    tc "a no-op update translates to the empty edit" (fun () ->
        let tree_ops, _ =
          lens.Bx.Elens.fwd [ Bx.Elens.Update_at (0, ("tapl", 60)) ] store2
        in
        check Alcotest.int "no ops" 0 (List.length tree_ops));
    tc "view insertion becomes a whole book subtree" (fun () ->
        let tree_ops, store' =
          lens.Bx.Elens.fwd [ Bx.Elens.Insert_at (1, ("hott", 0)) ] store2
        in
        (match tree_ops with
        | [ Bx_models.Tree_edit.Insert_child ([], 1, _) ] -> ()
        | _ -> Alcotest.fail "expected one subtree insertion");
        check Alcotest.bool "inserted with unknown author" true
          ((List.nth (Bookstore.books_of_store store') 1).Bookstore.author
          = "unknown"));
    tc "tree deletions abstract to row deletions" (fun () ->
        let view_ops, store' =
          lens.Bx.Elens.bwd [ Bx_models.Tree_edit.Delete_child ([], 0) ] store2
        in
        check Alcotest.bool "delete row 0" true
          (view_ops = [ Bx.Elens.Delete_at 0 ]);
        check Alcotest.bool "one book left" true
          (List.length (Bookstore.books_of_store store') = 1));
    tc "author relabels are silent (hidden data)" (fun () ->
        let view_ops, store' =
          lens.Bx.Elens.bwd
            [ Bx_models.Tree_edit.Relabel ([ 0; 1 ], "author=benjamin") ]
            store2
        in
        check Alcotest.int "silent" 0 (List.length view_ops);
        check Alcotest.bool "author changed in store" true
          ((List.hd (Bookstore.books_of_store store')).Bookstore.author
          = "benjamin"));
    tc "title relabels abstract to row updates" (fun () ->
        let view_ops, _ =
          lens.Bx.Elens.bwd
            [ Bx_models.Tree_edit.Relabel ([ 1; 0 ], "title=sicp2") ]
            store2
        in
        check Alcotest.bool "update row 1" true
          (view_ops = [ Bx.Elens.Update_at (1, ("sicp2", 40)) ]));
    tc "consistency propagates through random edit sequences" (fun () ->
        let consistent store view = view_of_store store = view in
        (* Drive both sides from a consistent pair and re-check. *)
        let view2 = view_of_store store2 in
        let edits =
          [
            [ Bx.Elens.Insert_at (0, ("new", 5)) ];
            [ Bx.Elens.Delete_at 1 ];
            [ Bx.Elens.Update_at (0, ("tapl", 61)) ];
            [ Bx.Elens.Insert_at (2, ("x", 1)); Bx.Elens.Delete_at 0 ];
          ]
        in
        List.iter
          (fun edit ->
            match Bx.Elens.list_edit_module () |> fun m -> m.Bx.Elens.apply edit view2 with
            | None -> () (* edit does not apply; nothing to check *)
            | Some view' ->
                let _, store' = lens.Bx.Elens.fwd edit store2 in
                check Alcotest.bool "consistent after fwd" true
                  (consistent store' view'))
          edits);
    tc "stability: empty edits translate to empty edits" (fun () ->
        let law =
          Bx.Elens.stable_law ~eq_ea:( = ) ~eq_eb:( = ) lens ~ea_id:[] ~eb_id:[]
        in
        expect_holds "stable" law store2);
  ]

(* ------------------------------------------------------------------ *)
(* COMPOSERS-SYMLENS: the repair of the Discussion's counterexample *)

let symlens_repair_tests =
  let open Composers_symlens in
  [
    tc "the Discussion scenario now recovers the dates" (fun () ->
        let trace = repair_counterexample () in
        check Alcotest.bool "recovered" true trace.dates_recovered;
        check Alcotest.bool "Britten back with real dates" true
          (List.exists
             (fun (x : Composers.composer) ->
               x.Composers.name = "Britten" && x.Composers.dates = "1913-1976")
             trace.m_after_restore);
        (* In between, Britten was really gone from m. *)
        check Alcotest.bool "was deleted" true
          (not
             (List.exists
                (fun (x : Composers.composer) -> x.Composers.name = "Britten")
                trace.m_after_delete)));
    tc "memory persists across multiple restorations" (fun () ->
        let bach = c "Bach" "1685-1750" "German" in
        let _, c0 = lens.Bx.Symlens.putr [ bach ] lens.Bx.Symlens.init in
        (* Empty n twice, then bring Bach back. *)
        let _, c1 = lens.Bx.Symlens.putl [] c0 in
        let _, c2 = lens.Bx.Symlens.putl [] c1 in
        let m, _ = lens.Bx.Symlens.putl [ ("Bach", "German") ] c2 in
        check Alcotest.bool "dates survive two deletions" true
          (Composers.equal_m m [ bach ]));
    tc "multiple composers per pair are remembered together" (fun () ->
        let js = c "Bach" "1685-1750" "German" in
        let cpe = c "Bach" "1714-1788" "German" in
        let m0 = Composers.canon_m [ js; cpe ] in
        let _, c0 = lens.Bx.Symlens.putr m0 lens.Bx.Symlens.init in
        let _, c1 = lens.Bx.Symlens.putl [] c0 in
        let m, _ = lens.Bx.Symlens.putl [ ("Bach", "German") ] c1 in
        check Alcotest.bool "both Bachs return" true (Composers.equal_m m m0));
    tc "never-seen pairs still get ????-????" (fun () ->
        let m, _ =
          lens.Bx.Symlens.putl [ ("Cage", "American") ] lens.Bx.Symlens.init
        in
        check Alcotest.bool "unknown" true
          (List.for_all
             (fun (x : Composers.composer) ->
               x.Composers.dates = Composers.unknown_dates)
             m));
    tc "PutRL holds from any reachable complement" (fun () ->
        let law =
          Bx.Symlens.put_rl_law Composers.m_space
            ~c_equal:(fun _ _ -> true) (* complement equality not required *)
            lens
        in
        let m = [ bach; britten ] in
        let _, c0 = lens.Bx.Symlens.putr m lens.Bx.Symlens.init in
        expect_holds "PutRL" law (m, c0);
        expect_holds "PutRL from init" law (m, lens.Bx.Symlens.init));
    tc "entry claims Satisfies Undoable, unlike the base entry" (fun () ->
        check Alcotest.bool "claim present" true
          (List.mem
             (Bx.Properties.Satisfies Bx.Properties.Undoable)
             template.Bx_repo.Template.properties);
        check Alcotest.bool "base claims the opposite" true
          (List.mem
             (Bx.Properties.Violates Bx.Properties.Undoable)
             Composers.template.Bx_repo.Template.properties));
  ]

(* ------------------------------------------------------------------ *)
(* Keying below the whole chunk: rename-tolerant resourcefulness *)

let key_by_name_tests =
  [
    tc "name-keyed star keeps dates through a nationality change" (fun () ->
        let src = "Britten, 1913-1976, British\n" in
        (* Whole-line key: the edited line matches nothing, dates lost. *)
        check Alcotest.string "whole-line key loses dates"
          "Britten, ????-????, English\n"
          (Composers_string.lens.Bx_strlens.Slens.put "Britten, English\n" src);
        (* Name key: the chunk is reused, dates survive. *)
        check Alcotest.string "name key keeps dates"
          "Britten, 1913-1976, English\n"
          (Composers_string.name_keyed_lens.Bx_strlens.Slens.put
             "Britten, English\n" src));
    tc "name-keyed star still reorders resourcefully" (fun () ->
        let src = "Bach, 1685-1750, German\nCage, 1912-1992, American\n" in
        check Alcotest.string "reorder"
          "Cage, 1912-1992, American\nBach, 1685-1750, German\n"
          (Composers_string.name_keyed_lens.Bx_strlens.Slens.put
             "Cage, American\nBach, German\n" src));
    tc "name-keyed GetPut holds on random sources" (fun () ->
        match
          Bx_check.Qlaw.holds_on_samples ~count:200
            Bx_check.Generators.composers_source
            (Bx_strlens.Slens.get_put_law Composers_string.name_keyed_lens)
        with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
  ]

let () =
  Alcotest.run "bx-catalogue"
    [
      ("composers", composers_tests);
      ("composers-variants", variants_tests);
      ("composers-boomerang", boomerang_tests);
      ("uml2rdbms", uml2rdbms_tests);
      ("families2persons", families_tests);
      ("small-examples", small_tests);
      ("catalogue", catalogue_tests);
      ("composers-edit", edit_tests);
      ("f2p-scenarios", scenario_tests);
      ("formatter", formatter_tests);
      ("industrial", industrial_tests);
      ("replicas", replicas_tests);
      ("property-sweeps", property_sweep_tests);
      ("least-change", least_change_tests);
      ("bookstore-edit", bookstore_edit_tests);
      ("composers-symlens", symlens_repair_tests);
      ("key-by-name", key_by_name_tests);
    ]
