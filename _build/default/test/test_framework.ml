(* Unit and property tests for the bx framework library. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let law_holds l x =
  match l.Bx.Law.check x with
  | Bx.Law.Holds -> true
  | Bx.Law.Violated _ -> false

let expect_holds msg l x = check Alcotest.bool msg true (law_holds l x)
let expect_violated msg l x = check Alcotest.bool msg false (law_holds l x)

(* ------------------------------------------------------------------ *)
(* Model spaces *)

let model_tests =
  [
    tc "pair equality componentwise" (fun () ->
        let space = Bx.Model.(pair int string) in
        check Alcotest.bool "equal" true (space.equal (1, "a") (1, "a"));
        check Alcotest.bool "fst differs" false (space.equal (1, "a") (2, "a"));
        check Alcotest.bool "snd differs" false (space.equal (1, "a") (1, "b")));
    tc "list equality is length-sensitive" (fun () ->
        let space = Bx.Model.(list int) in
        check Alcotest.bool "equal" true (space.equal [ 1; 2 ] [ 1; 2 ]);
        check Alcotest.bool "shorter" false (space.equal [ 1 ] [ 1; 2 ]);
        check Alcotest.bool "longer" false (space.equal [ 1; 2 ] [ 1 ]));
    tc "show uses the space printer" (fun () ->
        check Alcotest.string "int" "42" (Bx.Model.show Bx.Model.int 42));
    tc "names compose" (fun () ->
        let space = Bx.Model.(list (pair int string)) in
        check Alcotest.string "name" "(int * string) list" space.name);
  ]

(* ------------------------------------------------------------------ *)
(* Laws *)

let law_tests =
  [
    tc "require true holds" (fun () ->
        match Bx.Law.require true "nope" with
        | Bx.Law.Holds -> ()
        | Bx.Law.Violated m -> Alcotest.failf "unexpected violation: %s" m);
    tc "require false carries the message" (fun () ->
        match Bx.Law.require false "x=%d" 7 with
        | Bx.Law.Holds -> Alcotest.fail "expected violation"
        | Bx.Law.Violated m -> check Alcotest.string "msg" "x=7" m);
    tc "conj reports the first violating law by name" (fun () ->
        let pos =
          Bx.Law.make ~name:"pos" ~description:"x > 0" (fun x ->
              Bx.Law.require (x > 0) "not positive")
        in
        let even =
          Bx.Law.make ~name:"even" ~description:"x even" (fun x ->
              Bx.Law.require (x mod 2 = 0) "odd")
        in
        let both =
          Bx.Law.conj ~name:"pos-even" ~description:"both" [ pos; even ]
        in
        (match both.check 3 with
        | Bx.Law.Violated m ->
            check Alcotest.bool "names even" true
              (String.length m >= 6 && String.sub m 0 6 = "[even]")
        | Bx.Law.Holds -> Alcotest.fail "expected violation");
        expect_holds "4 passes" both 4;
        expect_violated "-2 fails on pos" both (-2));
    tc "check_all collects violations with indices" (fun () ->
        let pos =
          Bx.Law.make ~name:"pos" ~description:"x > 0" (fun x ->
              Bx.Law.require (x > 0) "not positive")
        in
        let violations = Bx.Law.check_all pos [ 1; -1; 2; -3 ] in
        check Alcotest.(list int) "indices" [ 1; 3 ]
          (List.map (fun (i, _, _) -> i) violations));
    tc "contramap adapts the input" (fun () ->
        let pos =
          Bx.Law.make ~name:"pos" ~description:"x > 0" (fun x ->
              Bx.Law.require (x > 0) "not positive")
        in
        let on_pair = Bx.Law.contramap fst pos in
        expect_holds "fst positive" on_pair (3, -5);
        expect_violated "fst negative" on_pair (-3, 5));
  ]

(* ------------------------------------------------------------------ *)
(* Isos *)

let double = Bx.Iso.make ~name:"double" ~fwd:(fun x -> 2 * x) ~bwd:(fun x -> x / 2)

let bogus_iso =
  (* Deliberately not an isomorphism: fwd loses information. *)
  Bx.Iso.make ~name:"bogus" ~fwd:(fun x -> x / 2) ~bwd:(fun x -> 2 * x)

let iso_tests =
  [
    tc "compose applies left to right" (fun () ->
        let inc = Bx.Iso.make ~name:"inc" ~fwd:succ ~bwd:pred in
        let both = Bx.Iso.compose double inc in
        check Alcotest.int "fwd" 7 (both.fwd 3);
        check Alcotest.int "bwd" 3 (both.bwd 7));
    tc "inverse swaps directions" (fun () ->
        let inv = Bx.Iso.inverse double in
        check Alcotest.int "fwd" 3 (inv.fwd 6);
        check Alcotest.int "bwd" 6 (inv.bwd 3));
    tc "pair acts componentwise" (fun () ->
        let inc = Bx.Iso.make ~name:"inc" ~fwd:succ ~bwd:pred in
        let p = Bx.Iso.pair double inc in
        check Alcotest.(pair int int) "fwd" (4, 4) (p.fwd (2, 3)));
    tc "list_map maps both ways" (fun () ->
        let m = Bx.Iso.list_map double in
        check Alcotest.(list int) "fwd" [ 2; 4 ] (m.fwd [ 1; 2 ]);
        check Alcotest.(list int) "bwd" [ 1; 2 ] (m.bwd [ 2; 4 ]));
    tc "swap is an involution" (fun () ->
        let s = Bx.Iso.swap () in
        check Alcotest.(pair int string) "fwd" (1, "a") (s.fwd ("a", 1)));
    tc "inverse laws hold for a genuine iso" (fun () ->
        let l = Bx.Iso.fwd_bwd_law Bx.Model.int double in
        List.iter (expect_holds "fwd_bwd" l) [ 0; 1; -5; 100 ]);
    tc "inverse laws catch a lossy map" (fun () ->
        let l = Bx.Iso.fwd_bwd_law Bx.Model.int bogus_iso in
        expect_violated "odd input loses a bit" l 3);
  ]

(* ------------------------------------------------------------------ *)
(* Lenses *)

let int_model = Bx.Model.int
let pair_model = Bx.Model.(pair int string)

let lens_tests =
  [
    tc "id round-trips" (fun () ->
        expect_holds "GetPut" (Bx.Lens.get_put_law int_model Bx.Lens.id) 5;
        expect_holds "PutGet" (Bx.Lens.put_get_law int_model Bx.Lens.id) (5, 9));
    tc "first projects and restores" (fun () ->
        let l = Bx.Lens.first ~default:"d" in
        check Alcotest.int "get" 1 (l.get (1, "x"));
        check Alcotest.(pair int string) "put keeps complement" (2, "x")
          (l.put 2 (1, "x"));
        check Alcotest.(pair int string) "create uses default" (3, "d")
          (l.create 3));
    tc "second projects and restores" (fun () ->
        let l = Bx.Lens.second ~default:0 in
        check Alcotest.string "get" "x" (l.get (1, "x"));
        check Alcotest.(pair int string) "put" (1, "y") (l.put "y" (1, "x")));
    tc "first satisfies all four laws" (fun () ->
        let l = Bx.Lens.first ~default:"d" in
        expect_holds "GetPut" (Bx.Lens.get_put_law pair_model l) (1, "x");
        expect_holds "PutGet" (Bx.Lens.put_get_law int_model l) ((1, "x"), 2);
        expect_holds "CreateGet" (Bx.Lens.create_get_law int_model l) 7;
        expect_holds "PutPut" (Bx.Lens.put_put_law pair_model l)
          ((1, "x"), 2, 3));
    tc "compose threads the middle view" (fun () ->
        let outer = Bx.Lens.first ~default:false in
        let inner = Bx.Lens.first ~default:0 in
        let l = Bx.Lens.compose outer inner in
        check Alcotest.string "get" "a" (l.get (("a", 1), true));
        let s' = l.put "b" (("a", 1), true) in
        check Alcotest.bool "complement intact" true
          (s' = (("b", 1), true)));
    tc "const accepts only its constant on put" (fun () ->
        let l =
          Bx.Lens.const ~view:"k" ~view_equal:String.equal ~default:42
        in
        check Alcotest.string "get" "k" (l.get 7);
        check Alcotest.int "put same" 7 (l.put "k" 7);
        check Alcotest.bool "put other raises" true
          (try
             ignore (l.put "other" 7);
             false
           with Bx.Lens.Error _ -> true));
    tc "pair lens acts componentwise" (fun () ->
        let l = Bx.Lens.pair (Bx.Lens.first ~default:0) Bx.Lens.id in
        let s = ((1, 2), "x") in
        check Alcotest.(pair int string) "get" (1, "x") (l.get s));
    tc "list_map puts positionally, creates surplus" (fun () ->
        let elem = Bx.Lens.first ~default:"new" in
        let l = Bx.Lens.list_map elem in
        check Alcotest.(list int) "get" [ 1; 2 ]
          (l.get [ (1, "a"); (2, "b") ]);
        let s' = l.put [ 9; 8; 7 ] [ (1, "a"); (2, "b") ] in
        check Alcotest.bool "reuse + create" true
          (s' = [ (9, "a"); (8, "b"); (7, "new") ]));
    tc "list_map drops surplus sources" (fun () ->
        let l = Bx.Lens.list_map (Bx.Lens.first ~default:"new") in
        let s' = l.put [ 9 ] [ (1, "a"); (2, "b") ] in
        check Alcotest.bool "truncated" true (s' = [ (9, "a") ]));
    tc "list_key_map preserves hidden data under reordering" (fun () ->
        let elem = Bx.Lens.first ~default:"new" in
        let l =
          Bx.Lens.list_key_map ~source_key:fst ~view_key:Fun.id elem
        in
        let src = [ (1, "one"); (2, "two"); (3, "three") ] in
        (* Reorder the view and drop the middle element. *)
        let s' = l.put [ 3; 1 ] src in
        check Alcotest.bool "complements follow their keys" true
          (s' = [ (3, "three"); (1, "one") ]));
    tc "list_key_map creates for unknown keys" (fun () ->
        let elem = Bx.Lens.first ~default:"new" in
        let l =
          Bx.Lens.list_key_map ~source_key:fst ~view_key:Fun.id elem
        in
        let s' = l.put [ 5 ] [ (1, "one") ] in
        check Alcotest.bool "created" true (s' = [ (5, "new") ]));
    tc "list_key_map consumes duplicate keys one at a time" (fun () ->
        let elem = Bx.Lens.first ~default:"new" in
        let l =
          Bx.Lens.list_key_map ~source_key:fst ~view_key:Fun.id elem
        in
        let src = [ (1, "a"); (1, "b") ] in
        let s' = l.put [ 1; 1 ] src in
        check Alcotest.bool "both reused in order" true
          (s' = [ (1, "a"); (1, "b") ]));
    tc "filter hides and restores around hidden elements" (fun () ->
        let l = Bx.Lens.filter ~keep:(fun x -> x mod 2 = 0) ~default:0 in
        check Alcotest.(list int) "get" [ 2; 4 ] (l.get [ 1; 2; 3; 4 ]);
        check Alcotest.(list int) "put in place" [ 1; 20; 3; 40 ]
          (l.put [ 20; 40 ] [ 1; 2; 3; 4 ]);
        check Alcotest.(list int) "surplus views appended" [ 1; 20; 3; 40; 60 ]
          (l.put [ 20; 40; 60 ] [ 1; 2; 3; 4 ]);
        check Alcotest.(list int) "fewer views drop kept sources"
          [ 1; 20; 3 ]
          (l.put [ 20 ] [ 1; 2; 3; 4 ]));
    tc "filter rejects views that violate the predicate" (fun () ->
        let l = Bx.Lens.filter ~keep:(fun x -> x mod 2 = 0) ~default:0 in
        check Alcotest.bool "raises" true
          (try
             ignore (l.put [ 3 ] [ 2 ]);
             false
           with Bx.Lens.Error _ -> true));
    tc "PutPut fails for list_map when lengths shrink then grow" (fun () ->
        (* list_map with positional alignment is well-behaved but not very
           well-behaved: shrinking the view discards complements that a
           second put cannot recover. *)
        let elem = Bx.Lens.first ~default:"new" in
        let l = Bx.Lens.list_map elem in
        let model = Bx.Model.(list (pair int string)) in
        let law = Bx.Lens.put_put_law model l in
        expect_violated "shrink-then-grow" law
          ([ (1, "a"); (2, "b") ], [ 9 ], [ 9; 8 ]));
  ]

(* QCheck property tests over lens combinators. *)
let lens_prop_tests =
  let pair_gen = QCheck2.Gen.(pair small_int (small_string ~gen:printable)) in
  let wb_first =
    QCheck2.Test.make ~count:200 ~name:"first: GetPut/PutGet on random pairs"
      QCheck2.Gen.(pair pair_gen small_int)
      (fun (s, v) ->
        let l = Bx.Lens.first ~default:"d" in
        law_holds (Bx.Lens.get_put_law pair_model l) s
        && law_holds (Bx.Lens.put_get_law int_model l) (s, v))
  in
  let wb_filter =
    QCheck2.Test.make ~count:200 ~name:"filter: GetPut on random int lists"
      QCheck2.Gen.(list small_int)
      (fun s ->
        let l = Bx.Lens.filter ~keep:(fun x -> x mod 2 = 0) ~default:0 in
        law_holds (Bx.Lens.get_put_law (Bx.Model.list Bx.Model.int) l) s)
  in
  let putget_filter =
    QCheck2.Test.make ~count:200 ~name:"filter: PutGet on even views"
      QCheck2.Gen.(pair (list small_int) (list (map (fun x -> 2 * x) small_int)))
      (fun (s, v) ->
        let l = Bx.Lens.filter ~keep:(fun x -> x mod 2 = 0) ~default:0 in
        law_holds (Bx.Lens.put_get_law (Bx.Model.list Bx.Model.int) l) (s, v))
  in
  let keymap_wb =
    QCheck2.Test.make ~count:200
      ~name:"list_key_map: GetPut on key-unique sources"
      QCheck2.Gen.(list (pair small_int (small_string ~gen:printable)))
      (fun s ->
        (* Deduplicate keys so the source is a legal dictionary. *)
        let s =
          List.fold_left
            (fun acc (k, v) ->
              if List.mem_assoc k acc then acc else acc @ [ (k, v) ])
            [] s
        in
        let l =
          Bx.Lens.list_key_map ~source_key:fst ~view_key:Fun.id
            (Bx.Lens.first ~default:"new")
        in
        law_holds
          (Bx.Lens.get_put_law Bx.Model.(list (pair int string)) l)
          s)
  in
  List.map QCheck_alcotest.to_alcotest
    [ wb_first; wb_filter; putget_filter; keymap_wb ]

(* ------------------------------------------------------------------ *)
(* Symmetric bx *)

let sym_of_first =
  Bx.Symmetric.of_lens ~view_equal:Int.equal (Bx.Lens.first ~default:"d")

let symmetric_tests =
  [
    tc "of_lens: consistency is get-equality" (fun () ->
        check Alcotest.bool "consistent" true
          (sym_of_first.consistent (1, "x") 1);
        check Alcotest.bool "inconsistent" false
          (sym_of_first.consistent (1, "x") 2));
    tc "of_lens: correct and hippocratic" (fun () ->
        expect_holds "correct" (Bx.Symmetric.correct_law sym_of_first)
          ((1, "x"), 2);
        expect_holds "hippocratic"
          (Bx.Symmetric.hippocratic_law pair_model int_model sym_of_first)
          ((1, "x"), 1));
    tc "invert swaps fwd and bwd" (fun () ->
        let inv = Bx.Symmetric.invert sym_of_first in
        check Alcotest.bool "consistency flipped" true
          (inv.consistent 1 (1, "x"));
        check Alcotest.int "fwd of invert is bwd" 1
          (fst (inv.fwd 2 (1, "x")) |> fun _ -> 1));
    tc "product pairs two bx" (fun () ->
        let p = Bx.Symmetric.product sym_of_first sym_of_first in
        check Alcotest.bool "consistent" true
          (p.consistent ((1, "a"), (2, "b")) (1, 2)));
    tc "identity bx is correct, hippocratic, undoable" (fun () ->
        let bx = Bx.Symmetric.identity in
        expect_holds "correct" (Bx.Symmetric.correct_law bx) (1, 2);
        expect_holds "hippocratic"
          (Bx.Symmetric.hippocratic_law int_model int_model bx) (1, 1);
        expect_holds "undoable-fwd"
          (Bx.Symmetric.undoable_fwd_law int_model bx) (1, 9, 1));
    tc "hippocratic law is vacuous on inconsistent inputs" (fun () ->
        let broken =
          Bx.Symmetric.make ~name:"broken"
            ~consistent:(fun m n -> m = n)
            ~fwd:(fun _ n -> n + 1) (* violates hippocraticness *)
            ~bwd:(fun m _ -> m)
        in
        let law = Bx.Symmetric.hippocratic_fwd_law int_model broken in
        expect_holds "vacuous" law (1, 2);
        expect_violated "caught" law (1, 1));
    tc "undoable law catches information loss" (fun () ->
        (* A bx that forgets: N = int, M = int * string; fwd projects,
           bwd overwrites the string with "". *)
        let lossy =
          Bx.Symmetric.make ~name:"lossy"
            ~consistent:(fun (a, _) n -> a = n)
            ~fwd:(fun (a, _) _ -> a)
            ~bwd:(fun (_, _) n -> (n, ""))
        in
        let law = Bx.Symmetric.undoable_bwd_law pair_model lossy in
        expect_violated "dates-style loss" law ((1, "hidden"), 1, 2));
    tc "history ignorance holds for oblivious bx" (fun () ->
        let law =
          Bx.Symmetric.history_ignorant_fwd_law int_model sym_of_first
        in
        expect_holds "oblivious fwd" law ((1, "x"), (2, "y"), 5));
  ]

(* ------------------------------------------------------------------ *)
(* Edit lenses *)

let elens_tests =
  let ( >>= ) o f = match o with None -> None | Some x -> f x in
  [
    tc "apply_list_op insert/delete/update" (fun () ->
        check Alcotest.(option (list int)) "insert front" (Some [ 9; 1; 2 ])
          (Bx.Elens.apply_list_op (Bx.Elens.Insert_at (0, 9)) [ 1; 2 ]);
        check Alcotest.(option (list int)) "insert end" (Some [ 1; 2; 9 ])
          (Bx.Elens.apply_list_op (Bx.Elens.Insert_at (2, 9)) [ 1; 2 ]);
        check Alcotest.(option (list int)) "insert out of range" None
          (Bx.Elens.apply_list_op (Bx.Elens.Insert_at (3, 9)) [ 1; 2 ]);
        check Alcotest.(option (list int)) "delete" (Some [ 1 ])
          (Bx.Elens.apply_list_op (Bx.Elens.Delete_at 1) [ 1; 2 ]);
        check Alcotest.(option (list int)) "delete out of range" None
          (Bx.Elens.apply_list_op (Bx.Elens.Delete_at 2) [ 1; 2 ]);
        check Alcotest.(option (list int)) "update" (Some [ 1; 9 ])
          (Bx.Elens.apply_list_op (Bx.Elens.Update_at (1, 9)) [ 1; 2 ]));
    tc "edit module composes left to right" (fun () ->
        let m = Bx.Elens.list_edit_module () in
        let e =
          m.compose [ Bx.Elens.Insert_at (0, 1) ] [ Bx.Elens.Update_at (0, 2) ]
        in
        check Alcotest.(option (list int)) "composite" (Some [ 2 ])
          (m.apply e []));
    tc "identity edit is neutral" (fun () ->
        let m = Bx.Elens.list_edit_module () in
        check Alcotest.(option (list int)) "apply id" (Some [ 1; 2 ])
          (m.apply m.identity [ 1; 2 ]));
    tc "list_map_iso translates edits through the iso" (fun () ->
        let lens = Bx.Elens.list_map_iso double in
        let eb, () = lens.fwd [ Bx.Elens.Insert_at (0, 3) ] () in
        check Alcotest.bool "doubled payload" true
          (eb = [ Bx.Elens.Insert_at (0, 6) ]));
    tc "stable law holds for list_map_iso" (fun () ->
        let lens = Bx.Elens.list_map_iso double in
        let law =
          Bx.Elens.stable_law ~eq_ea:( = ) ~eq_eb:( = ) lens ~ea_id:[]
            ~eb_id:[]
        in
        expect_holds "stable" law ());
    tc "round-trip law: consistency propagates through the iso" (fun () ->
        let lens = Bx.Elens.list_map_iso double in
        let ma = Bx.Elens.list_edit_module () in
        let mb = Bx.Elens.list_edit_module () in
        let consistent m n = List.map double.Bx.Iso.fwd m = n in
        let law = Bx.Elens.round_trip_law ~ma ~mb ~consistent lens in
        expect_holds "insert propagates" law
          ([ 1; 2 ], [ 2; 4 ], (), [ Bx.Elens.Insert_at (1, 5) ]);
        expect_holds "vacuous on inconsistent" law
          ([ 1 ], [ 999 ], (), [ Bx.Elens.Delete_at 0 ]);
        ignore ( >>= ));
  ]

(* ------------------------------------------------------------------ *)
(* Properties vocabulary *)

let properties_tests =
  [
    tc "name/of_name round-trips over all properties" (fun () ->
        List.iter
          (fun p ->
            match Bx.Properties.(of_name (name p)) with
            | Some p' -> check Alcotest.bool "round-trip" true (p = p')
            | None -> Alcotest.failf "no parse for %s" (Bx.Properties.name p))
          Bx.Properties.all);
    tc "of_name is case- and separator-insensitive" (fun () ->
        check Alcotest.bool "History Ignorant" true
          (Bx.Properties.of_name "History Ignorant"
          = Some Bx.Properties.History_ignorant);
        check Alcotest.bool "VERY_WELL_BEHAVED" true
          (Bx.Properties.of_name "VERY_WELL_BEHAVED"
          = Some Bx.Properties.Very_well_behaved));
    tc "claims parse with a 'not' prefix" (fun () ->
        check Alcotest.bool "not undoable" true
          (Bx.Properties.claim_of_name "not undoable"
          = Some (Bx.Properties.Violates Bx.Properties.Undoable));
        check Alcotest.bool "correct" true
          (Bx.Properties.claim_of_name "correct"
          = Some (Bx.Properties.Satisfies Bx.Properties.Correct)));
    tc "claim_name inverts claim_of_name" (fun () ->
        let claims =
          List.concat_map
            (fun p -> Bx.Properties.[ Satisfies p; Violates p ])
            Bx.Properties.all
        in
        List.iter
          (fun c ->
            check Alcotest.bool "round-trip" true
              (Bx.Properties.claim_of_name (Bx.Properties.claim_name c)
              = Some c))
          claims);
    tc "every property has a nonempty glossary entry" (fun () ->
        List.iter
          (fun p ->
            check Alcotest.bool "described" true
              (String.length (Bx.Properties.describe p) > 20))
          Bx.Properties.all);
    tc "machine-checkable classification" (fun () ->
        check Alcotest.bool "correct checkable" true
          (Bx.Properties.machine_checkable Bx.Properties.Correct);
        check Alcotest.bool "simply-matching not" false
          (Bx.Properties.machine_checkable Bx.Properties.Simply_matching));
    tc "unknown names do not parse" (fun () ->
        check Alcotest.bool "nonsense" true
          (Bx.Properties.of_name "frobnicating" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Constant-complement lenses *)

let clens_tests =
  [
    tc "pair_first splits and merges" (fun () ->
        let l = Bx.Clens.pair_first () in
        check Alcotest.(pair int string) "split" (1, "c") (l.split (1, "c"));
        check Alcotest.(pair int string) "merge" (2, "c") (l.merge (2, "c")));
    tc "view and complement projections" (fun () ->
        let l = Bx.Clens.pair_first () in
        check Alcotest.int "view" 1 (Bx.Clens.view l (1, "c"));
        check Alcotest.string "complement" "c" (Bx.Clens.complement l (1, "c")));
    tc "of_iso has a trivial complement" (fun () ->
        let double = Bx.Iso.make ~name:"double" ~fwd:(fun x -> 2 * x)
            ~bwd:(fun x -> x / 2) in
        let l = Bx.Clens.of_iso double in
        check Alcotest.int "view" 6 (Bx.Clens.view l 3));
    tc "compose pairs complements" (fun () ->
        let outer = Bx.Clens.pair_first () in
        let inner = Bx.Clens.pair_first () in
        let l = Bx.Clens.compose outer inner in
        (* source ((a, b), c): view a, complement (c, b). *)
        let v, (c1, c2) = l.split ((1, "b"), true) in
        check Alcotest.int "view" 1 v;
        check Alcotest.bool "complements" true (c1 = true && c2 = "b");
        check Alcotest.bool "merge back" true
          (l.merge (9, (c1, c2)) = ((9, "b"), true)));
    tc "bijection laws hold for pair_first" (fun () ->
        let l = Bx.Clens.pair_first () in
        let space = Bx.Model.(pair int string) in
        expect_holds "split-merge" (Bx.Clens.split_merge_law space l) (1, "x");
        expect_holds "merge-split"
          (Bx.Clens.merge_split_law Bx.Model.int ~c_equal:String.equal l)
          (5, "y"));
    tc "the induced lens is very well-behaved (the classical theorem)" (fun () ->
        let l = Bx.Clens.pair_first () in
        let space = Bx.Model.(pair int string) in
        let law = Bx.Clens.induced_put_put_law space ~default:"d" l in
        List.iter (expect_holds "PutPut" law)
          [ ((1, "x"), 2, 3); ((0, ""), 5, 5); ((9, "z"), 1, 0) ]);
    tc "the induced symmetric bx is undoable" (fun () ->
        let l = Bx.Clens.pair_first () in
        let sym = Bx.Clens.to_symmetric ~view_equal:Int.equal ~default:"d" l in
        let space = Bx.Model.(pair int string) in
        expect_holds "undoable-bwd"
          (Bx.Symmetric.undoable_bwd_law space sym)
          ((1, "x"), 1, 42));
  ]

let clens_prop_tests =
  let gen = QCheck2.Gen.(pair small_int (small_string ~gen:printable)) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"constant complement implies PutPut on random inputs"
         QCheck2.Gen.(pair gen (pair small_int small_int))
         (fun (s, (v, v')) ->
           let l = Bx.Clens.pair_first () in
           let space =
             Bx.Model.make ~name:"s" ~equal:( = )
               ~pp:(fun ppf _ -> Fmt.string ppf "_")
           in
           law_holds (Bx.Clens.induced_put_put_law space ~default:"d" l)
             (s, v, v')));
  ]

(* ------------------------------------------------------------------ *)
(* Multiary bx *)

let span_bx =
  (* Shared source (int * string * bool) as nested pairs, two views. *)
  let first_lens =
    Bx.Lens.make ~name:"fst3"
      ~get:(fun (a, (_, _)) -> a)
      ~put:(fun a (_, rest) -> (a, rest))
      ~create:(fun a -> (a, ("", false)))
  in
  let second_lens =
    Bx.Lens.make ~name:"snd3"
      ~get:(fun (_, (b, _)) -> b)
      ~put:(fun b (a, (_, c)) -> (a, (b, c)))
      ~create:(fun b -> (0, (b, false)))
  in
  Bx.Multi.of_two_lenses ~view_equal_b:Int.equal ~view_equal_c:String.equal
    first_lens second_lens

let multi_tests =
  [
    tc "span consistency requires both views to agree" (fun () ->
        let a = (1, ("x", true)) in
        check Alcotest.bool "consistent" true (span_bx.consistent3 a 1 "x");
        check Alcotest.bool "b off" false (span_bx.consistent3 a 2 "x");
        check Alcotest.bool "c off" false (span_bx.consistent3 a 1 "y"));
    tc "restore_from_a regenerates both views" (fun () ->
        let b, c = span_bx.restore_from_a (1, ("x", true)) 9 "z" in
        check Alcotest.int "b" 1 b;
        check Alcotest.string "c" "x" c);
    tc "restore_from_b updates the source and the other view" (fun () ->
        let a, c = span_bx.restore_from_b (1, ("x", true)) 5 "ignored" in
        check Alcotest.bool "source updated, hidden kept" true
          (a = (5, ("x", true)));
        check Alcotest.string "other view regenerated" "x" c);
    tc "correct3 law holds for the span" (fun () ->
        let law = Bx.Multi.correct3_law span_bx in
        List.iter (expect_holds "correct3" law)
          [
            ((1, ("x", true)), 2, "y");
            ((0, ("", false)), 0, "");
            ((7, ("q", false)), 7, "q");
          ]);
    tc "hippocratic3 law holds for the span" (fun () ->
        let aspace =
          Bx.Model.make ~name:"a" ~equal:( = )
            ~pp:(fun ppf _ -> Fmt.string ppf "_")
        in
        let law =
          Bx.Multi.hippocratic3_law aspace Bx.Model.int Bx.Model.string span_bx
        in
        expect_holds "consistent triple untouched" law ((1, ("x", true)), 1, "x");
        expect_holds "vacuous on inconsistent" law ((1, ("x", true)), 2, "x"));
    tc "a broken ternary bx is caught" (fun () ->
        let broken =
          Bx.Multi.make ~name:"broken"
            ~consistent3:(fun a b c -> a = b && b = c)
            ~restore_from_a:(fun a _ _ -> (a, a + 1))
            ~restore_from_b:(fun _ b _ -> (b, b))
            ~restore_from_c:(fun _ _ c -> (c, c))
        in
        expect_violated "correct3 catches it"
          (Bx.Multi.correct3_law broken) (1, 2, 3));
  ]

(* ------------------------------------------------------------------ *)
(* Diff-aligned list lens *)

let diff_map_tests =
  let elem = Bx.Lens.first ~default:"new" in
  let l =
    Bx.Lens.list_diff_map ~source_key:fst ~view_key:Fun.id elem
  in
  [
    tc "middle insertion keeps surrounding complements" (fun () ->
        let src = [ (1, "one"); (3, "three") ] in
        check Alcotest.bool "inserted" true
          (l.put [ 1; 2; 3 ] src = [ (1, "one"); (2, "new"); (3, "three") ]));
    tc "middle deletion keeps the rest" (fun () ->
        let src = [ (1, "one"); (2, "two"); (3, "three") ] in
        check Alcotest.bool "deleted" true
          (l.put [ 1; 3 ] src = [ (1, "one"); (3, "three") ]));
    tc "duplicate keys: order-respecting, unlike greedy" (fun () ->
        let greedy =
          Bx.Lens.list_key_map ~source_key:fst ~view_key:Fun.id elem
        in
        let src = [ (1, "first"); (1, "second") ] in
        (* Replace the first 1 by 9: LCS matches the remaining 1 to the
           SECOND source; greedy grabs the first. *)
        check Alcotest.bool "diff" true
          (l.put [ 9; 1 ] src = [ (9, "new"); (1, "second") ]);
        check Alcotest.bool "greedy" true
          (greedy.put [ 9; 1 ] src = [ (9, "new"); (1, "first") ]));
    tc "GetPut and PutGet hold" (fun () ->
        let space = Bx.Model.(list (pair int string)) in
        expect_holds "GetPut" (Bx.Lens.get_put_law space l)
          [ (1, "a"); (2, "b") ];
        expect_holds "PutGet"
          (Bx.Lens.put_get_law Bx.Model.(list int) l)
          ([ (1, "a") ], [ 2; 1 ]));
  ]

let diff_map_prop_tests =
  let elem = Bx.Lens.first ~default:"new" in
  let l = Bx.Lens.list_diff_map ~source_key:fst ~view_key:Fun.id elem in
  let gen =
    QCheck2.Gen.(
      list_size (0 -- 15) (pair small_int (small_string ~gen:printable)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"list_diff_map: GetPut on random lists"
         gen
         (fun s ->
           law_holds
             (Bx.Lens.get_put_law Bx.Model.(list (pair int string)) l)
             s));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"list_diff_map: PutGet on random pairs"
         QCheck2.Gen.(pair gen (list_size (0 -- 15) small_int))
         (fun (s, v) ->
           law_holds (Bx.Lens.put_get_law Bx.Model.(list int) l) (s, v)));
  ]

(* ------------------------------------------------------------------ *)
(* Generic benchmark scenarios *)

let scenario_tests =
  [
    tc "a scenario over the identity bx logs every step" (fun () ->
        let scenario =
          Bx.Scenario.make ~name:"identity-walk" ~initial_left:0
            ~initial_right:0
            [
              Bx.Scenario.Edit_left ("incr", (fun x -> x + 1));
              Bx.Scenario.Edit_right ("double", (fun x -> 2 * x));
              Bx.Scenario.Edit_left ("reset", (fun _ -> 0));
            ]
        in
        let out = Bx.Scenario.run Bx.Symmetric.identity scenario in
        check Alcotest.int "final left" 0 out.Bx.Scenario.final_left;
        check Alcotest.int "final right" 0 out.Bx.Scenario.final_right;
        check Alcotest.int "restorations" 4 out.Bx.Scenario.restorations;
        check Alcotest.bool "throughout" true
          out.Bx.Scenario.consistent_throughout;
        check Alcotest.(list (pair string bool)) "log"
          [ ("incr", true); ("double", true); ("reset", true) ]
          out.Bx.Scenario.step_log);
    tc "a broken bx shows up as inconsistent steps" (fun () ->
        let broken =
          Bx.Symmetric.make ~name:"broken"
            ~consistent:(fun m n -> m = n)
            ~fwd:(fun m _ -> m + 1)
            ~bwd:(fun _ n -> n)
        in
        let scenario =
          Bx.Scenario.make ~name:"broken-walk" ~initial_left:0 ~initial_right:0
            [ Bx.Scenario.Edit_left ("touch", Fun.id) ]
        in
        let out = Bx.Scenario.run broken scenario in
        check Alcotest.bool "caught" false
          out.Bx.Scenario.consistent_throughout);
    tc "pp_outcome renders the log" (fun () ->
        let out =
          Bx.Scenario.run Bx.Symmetric.identity
            (Bx.Scenario.make ~name:"x" ~initial_left:1 ~initial_right:1
               [ Bx.Scenario.Edit_left ("step-one", Fun.id) ])
        in
        let text = Fmt.str "%a" Bx.Scenario.pp_outcome out in
        check Alcotest.bool "mentions step" true
          (let needle = "step-one" in
           let h = text and n = needle in
           let hl = String.length h and nl = String.length n in
           let rec scan i = i + nl <= hl && (String.sub h i nl = n || scan (i + 1)) in
           scan 0));
  ]

(* ------------------------------------------------------------------ *)
(* Edit-lens composition *)

let elens_compose_tests =
  [
    tc "edits flow through the middle language" (fun () ->
        let inc = Bx.Iso.make ~name:"inc" ~fwd:succ ~bwd:pred in
        let l = Bx.Elens.compose (Bx.Elens.list_map_iso double)
            (Bx.Elens.list_map_iso inc) in
        let ec, _ = l.Bx.Elens.fwd [ Bx.Elens.Insert_at (0, 3) ] l.Bx.Elens.init in
        check Alcotest.bool "2*3+1" true (ec = [ Bx.Elens.Insert_at (0, 7) ]);
        let ea, _ = l.Bx.Elens.bwd [ Bx.Elens.Update_at (0, 7) ] l.Bx.Elens.init in
        check Alcotest.bool "backwards" true (ea = [ Bx.Elens.Update_at (0, 3) ]));
    tc "composition is stable" (fun () ->
        let inc = Bx.Iso.make ~name:"inc" ~fwd:succ ~bwd:pred in
        let l = Bx.Elens.compose (Bx.Elens.list_map_iso double)
            (Bx.Elens.list_map_iso inc) in
        let law =
          Bx.Elens.stable_law ~eq_ea:( = ) ~eq_eb:( = ) l ~ea_id:[] ~eb_id:[]
        in
        expect_holds "stable" law l.Bx.Elens.init);
    tc "composed round trip preserves consistency" (fun () ->
        let inc = Bx.Iso.make ~name:"inc" ~fwd:succ ~bwd:pred in
        let l = Bx.Elens.compose (Bx.Elens.list_map_iso double)
            (Bx.Elens.list_map_iso inc) in
        let m = Bx.Elens.list_edit_module () in
        let consistent a c = List.map (fun x -> (2 * x) + 1) a = c in
        let law = Bx.Elens.round_trip_law ~ma:m ~mb:m ~consistent l in
        expect_holds "propagates" law
          ([ 1; 2 ], [ 3; 5 ], l.Bx.Elens.init, [ Bx.Elens.Insert_at (0, 9) ]));
  ]

(* ------------------------------------------------------------------ *)
(* Least change *)

let least_change_tests =
  [
    tc "list edit distance is the textbook Levenshtein" (fun () ->
        let d = Bx.Least_change.list_edit_distance ~equal:Char.equal in
        let chars s = List.init (String.length s) (String.get s) in
        check Alcotest.int "kitten/sitting" 3 (d (chars "kitten") (chars "sitting"));
        check Alcotest.int "same" 0 (d (chars "abc") (chars "abc"));
        check Alcotest.int "to empty" 3 (d (chars "abc") []));
    tc "set distance counts the symmetric difference" (fun () ->
        let d = Bx.Least_change.set_distance ~compare:Int.compare in
        check Alcotest.int "disjoint" 4 (d [ 1; 2 ] [ 3; 4 ]);
        check Alcotest.int "overlap" 2 (d [ 1; 2 ] [ 2; 3 ]);
        check Alcotest.int "duplicates collapse" 0 (d [ 1; 1 ] [ 1 ]));
    tc "identity bx is least-change against any candidates" (fun () ->
        let law =
          Bx.Least_change.fwd_law
            ~candidates:(fun m _ -> [ m; m + 1; m - 1 ])
            ~distance:(fun a b -> abs (a - b))
            Bx.Symmetric.identity
        in
        List.iter (expect_holds "minimal" law) [ (3, 3); (3, 9); (0, -5) ]);
    tc "a gratuitous repair is caught" (fun () ->
        (* consistency: n >= m.  fwd jumps to m + 10 even when m itself
           would do. *)
        let wasteful =
          Bx.Symmetric.make ~name:"wasteful"
            ~consistent:(fun m n -> n >= m)
            ~fwd:(fun m _ -> m + 10)
            ~bwd:(fun m _ -> m)
        in
        let law =
          Bx.Least_change.fwd_law
            ~candidates:(fun m n -> [ m; n; m + 10 ])
            ~distance:(fun a b -> abs (a - b))
            wasteful
        in
        (* n = 2, m = 1: n itself is consistent (2 >= 1) at distance 0,
           but fwd answers 11 at distance 9. *)
        expect_violated "wasteful" law (1, 2));
    tc "inconsistent candidates are ignored" (fun () ->
        let law =
          Bx.Least_change.fwd_law
            ~candidates:(fun _ n -> [ n - 100 (* closer but inconsistent *) ])
            ~distance:(fun a b -> abs (a - b))
            Bx.Symmetric.identity
        in
        expect_holds "over-proposal tolerated" law (5, 7));
    tc "bwd_law is the dual" (fun () ->
        let law =
          Bx.Least_change.bwd_law
            ~candidates:(fun m _ -> [ m; m + 1 ])
            ~distance:(fun a b -> abs (a - b))
            Bx.Symmetric.identity
        in
        expect_holds "minimal" law (4, 9));
  ]

(* ------------------------------------------------------------------ *)
(* State-based symmetric lenses *)

let symlens_tests =
  let fst_lens = Bx.Lens.first ~default:"d" in
  let sl = Bx.Symlens.of_lens ~default:(0, "d") fst_lens in
  [
    tc "of_lens round-trips through the complement" (fun () ->
        let v, c = sl.putr (1, "x") sl.init in
        check Alcotest.int "view" 1 v;
        let s, _ = sl.putl 2 c in
        check Alcotest.bool "hidden data kept" true (s = (2, "x")));
    tc "PutRL and PutLR hold for of_lens" (fun () ->
        let space = Bx.Model.(pair int string) in
        expect_holds "PutRL"
          (Bx.Symlens.put_rl_law space ~c_equal:( = ) sl)
          ((1, "x"), (9, "old"));
        expect_holds "PutLR"
          (Bx.Symlens.put_lr_law Bx.Model.int ~c_equal:( = ) sl)
          (5, (9, "old")));
    tc "of_iso needs no complement" (fun () ->
        let sl = Bx.Symlens.of_iso double in
        check Alcotest.int "putr" 6 (fst (sl.putr 3 ()));
        check Alcotest.int "putl" 3 (fst (sl.putl 6 ())));
    tc "compose pairs complements and threads the middle" (fun () ->
        let sl2 = Bx.Symlens.of_iso double in
        let both = Bx.Symlens.compose sl sl2 in
        let d, c = both.putr (3, "x") both.init in
        check Alcotest.int "doubled view" 6 d;
        let s, _ = both.putl 8 c in
        check Alcotest.bool "back through both" true (s = (4, "x")));
    tc "invert swaps directions" (fun () ->
        let inv = Bx.Symlens.invert sl in
        let s, _ = inv.putl (7, "y") inv.init in
        check Alcotest.int "putl is old putr" 7 s);
    tc "tensor acts componentwise" (fun () ->
        let both = Bx.Symlens.tensor sl (Bx.Symlens.of_iso double) in
        let (v1, v2), _ = both.putr ((1, "x"), 3) both.init in
        check Alcotest.bool "pair" true (v1 = 1 && v2 = 6));
    tc "to_symmetric runs against a complement cell" (fun () ->
        let cell = ref sl.init in
        let bx = Bx.Symlens.to_symmetric sl ~complement:cell in
        let v = bx.Bx.Symmetric.fwd (1, "x") 0 in
        check Alcotest.int "fwd" 1 v;
        let s = bx.Bx.Symmetric.bwd (0, "ignored") 9 in
        check Alcotest.bool "bwd uses the remembered source" true
          (s = (9, "x")));
    tc "a drifting complement is caught by PutRL" (fun () ->
        let leaky =
          Bx.Symlens.make ~name:"leaky" ~init:0
            ~putr:(fun a c -> (a, c + 1)) (* complement drifts *)
            ~putl:(fun b c -> (b, c + 1))
          in
        expect_violated "drift"
          (Bx.Symlens.put_rl_law Bx.Model.int ~c_equal:( = ) leaky)
          (1, 0));
  ]

let () =
  Alcotest.run "bx-framework"
    [
      ("model", model_tests);
      ("law", law_tests);
      ("iso", iso_tests);
      ("lens", lens_tests);
      ("lens-properties", lens_prop_tests);
      ("symmetric", symmetric_tests);
      ("elens", elens_tests);
      ("properties", properties_tests);
      ("clens", clens_tests);
      ("clens-properties", clens_prop_tests);
      ("multi", multi_tests);
      ("diff-map", diff_map_tests);
      ("diff-map-properties", diff_map_prop_tests);
      ("scenario", scenario_tests);
      ("elens-compose", elens_compose_tests);
      ("least-change", least_change_tests);
      ("symlens", symlens_tests);
    ]
