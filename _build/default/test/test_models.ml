(* Unit and property tests for the model substrates. *)

open Bx_models

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Rationals *)

let rational_tests =
  [
    tc "normalisation" (fun () ->
        let r = Rational.make 4 8 in
        check Alcotest.int "num" 1 (Rational.num r);
        check Alcotest.int "den" 2 (Rational.den r));
    tc "negative denominators move the sign up" (fun () ->
        let r = Rational.make 1 (-2) in
        check Alcotest.int "num" (-1) (Rational.num r);
        check Alcotest.int "den" 2 (Rational.den r));
    tc "arithmetic" (fun () ->
        let open Rational in
        check Alcotest.bool "1/2 + 1/3 = 5/6" true
          (equal (add (make 1 2) (make 1 3)) (make 5 6));
        check Alcotest.bool "1/2 * 2/3 = 1/3" true
          (equal (mul (make 1 2) (make 2 3)) (make 1 3));
        check Alcotest.bool "(1/2) / (1/4) = 2" true
          (equal (div (make 1 2) (make 1 4)) (of_int 2));
        check Alcotest.bool "1 - 1/2 = 1/2" true
          (equal (sub one (make 1 2)) (make 1 2)));
    tc "division by zero raises" (fun () ->
        check Alcotest.bool "make" true
          (try ignore (Rational.make 1 0); false
           with Division_by_zero -> true);
        check Alcotest.bool "div" true
          (try ignore (Rational.div Rational.one Rational.zero); false
           with Division_by_zero -> true));
    tc "compare is consistent with to_float" (fun () ->
        let a = Rational.make 1 3 and b = Rational.make 1 2 in
        check Alcotest.bool "lt" true (Rational.compare a b < 0));
    tc "pp renders integers without denominator" (fun () ->
        check Alcotest.string "3" "3" (Rational.to_string (Rational.of_int 3));
        check Alcotest.string "1/2" "1/2"
          (Rational.to_string (Rational.make 2 4)));
  ]

let rational_prop_tests =
  let gen = QCheck2.Gen.(pair (int_range (-50) 50) (int_range 1 50)) in
  let mk name prop =
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name QCheck2.Gen.(pair gen gen) prop)
  in
  [
    mk "addition commutes" (fun ((a, b), (c, d)) ->
        let x = Rational.make a b and y = Rational.make c d in
        Rational.(equal (add x y) (add y x)));
    mk "sub then add round-trips" (fun ((a, b), (c, d)) ->
        let x = Rational.make a b and y = Rational.make c d in
        Rational.(equal (add (sub x y) y) x));
    mk "results stay normalised" (fun ((a, b), (c, d)) ->
        let x = Rational.make a b and y = Rational.make c d in
        let r = Rational.mul x y in
        let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
        Rational.den r > 0 && gcd (abs (Rational.num r)) (Rational.den r) <= 1);
  ]

(* ------------------------------------------------------------------ *)
(* Relational *)

let sample_schema =
  Relational.
    [
      table "person"
        [ column ~primary:true "id" Int_t; column "name" Text_t ];
      table "city" [ column ~primary:true "name" Text_t ];
    ]

let relational_tests =
  [
    tc "find/add/remove tables" (fun () ->
        check Alcotest.bool "find" true
          (Relational.find_table sample_schema "person" <> None);
        let s = Relational.remove_table sample_schema "person" in
        check Alcotest.bool "removed" true
          (Relational.find_table s "person" = None);
        let s =
          Relational.add_table s (Relational.table "person" [ Relational.column "x" Relational.Int_t ])
        in
        check Alcotest.bool "re-added" true
          (Relational.find_table s "person" <> None));
    tc "add_table replaces in place" (fun () ->
        let t' = Relational.table "person" [ Relational.column "only" Relational.Text_t ] in
        let s = Relational.add_table sample_schema t' in
        check Alcotest.int "same table count" 2 (List.length s);
        match Relational.find_table s "person" with
        | Some t -> check Alcotest.int "one column" 1 (List.length t.columns)
        | None -> Alcotest.fail "person missing");
    tc "table_names sorted" (fun () ->
        check Alcotest.(list string) "names" [ "city"; "person" ]
          (Relational.table_names sample_schema));
    tc "validate_schema accepts the sample" (fun () ->
        check Alcotest.bool "ok" true
          (Relational.validate_schema sample_schema = Ok ()));
    tc "validate_schema rejects duplicates and empties" (fun () ->
        let dup = sample_schema @ [ Relational.table "person" [ Relational.column "x" Relational.Int_t ] ] in
        check Alcotest.bool "dup tables" true
          (Relational.validate_schema dup <> Ok ());
        let empty_cols = [ Relational.table "t" [] ] in
        check Alcotest.bool "no columns" true
          (Relational.validate_schema empty_cols <> Ok ());
        let dup_cols =
          [ Relational.table "t"
              [ Relational.column "x" Relational.Int_t;
                Relational.column "x" Relational.Text_t ] ]
        in
        check Alcotest.bool "dup columns" true
          (Relational.validate_schema dup_cols <> Ok ()));
    tc "equal_schema ignores table order" (fun () ->
        check Alcotest.bool "reversed equal" true
          (Relational.equal_schema sample_schema (List.rev sample_schema)));
    tc "conforms accepts well-typed rows with unique keys" (fun () ->
        let inst =
          Relational.
            [
              ("person", [ [ Int_v 1; Text_v "a" ]; [ Int_v 2; Text_v "b" ] ]);
              ("city", [ [ Text_v "rome" ] ]);
            ]
        in
        check Alcotest.bool "ok" true
          (Relational.conforms sample_schema inst = Ok ()));
    tc "conforms rejects bad arity, type, key and table" (fun () ->
        let bad_arity = Relational.[ ("person", [ [ Int_v 1 ] ]) ] in
        check Alcotest.bool "arity" true
          (Relational.conforms sample_schema bad_arity <> Ok ());
        let bad_type = Relational.[ ("person", [ [ Text_v "x"; Text_v "a" ] ]) ] in
        check Alcotest.bool "type" true
          (Relational.conforms sample_schema bad_type <> Ok ());
        let dup_key =
          Relational.
            [ ("person", [ [ Int_v 1; Text_v "a" ]; [ Int_v 1; Text_v "b" ] ]) ]
        in
        check Alcotest.bool "key" true
          (Relational.conforms sample_schema dup_key <> Ok ());
        let unknown = [ ("ghost", [ ([] : Relational.row) ]) ] in
        check Alcotest.bool "table" true
          (Relational.conforms sample_schema unknown <> Ok ()));
    tc "equal_instance ignores row and table order" (fun () ->
        let i1 =
          Relational.
            [ ("t", [ [ Int_v 1 ]; [ Int_v 2 ] ]); ("u", [ [ Int_v 3 ] ]) ]
        in
        let i2 =
          Relational.
            [ ("u", [ [ Int_v 3 ] ]); ("t", [ [ Int_v 2 ]; [ Int_v 1 ] ]) ]
        in
        check Alcotest.bool "equal" true (Relational.equal_instance i1 i2));
  ]

(* ------------------------------------------------------------------ *)
(* UML *)

let sample_model =
  Uml.
    [
      clazz "Person"
        [ attribute ~is_key:true "id" Integer_t; attribute "name" String_t ];
      clazz ~persistent:false "Scratch" [ attribute "note" String_t ];
    ]

let uml_tests =
  [
    tc "find/add/remove classes" (fun () ->
        check Alcotest.bool "find" true
          (Uml.find_class sample_model "Person" <> None);
        let m = Uml.remove_class sample_model "Person" in
        check Alcotest.bool "removed" true (Uml.find_class m "Person" = None));
    tc "persistent_classes filters" (fun () ->
        check Alcotest.(list string) "only Person" [ "Person" ]
          (List.map (fun c -> c.Uml.class_name)
             (Uml.persistent_classes sample_model)));
    tc "validate accepts the sample" (fun () ->
        check Alcotest.bool "ok" true (Uml.validate sample_model = Ok ()));
    tc "validate rejects duplicate classes and attributes" (fun () ->
        let dup = sample_model @ [ Uml.clazz "Person" [ Uml.attribute "x" Uml.String_t ] ] in
        check Alcotest.bool "dup" true (Uml.validate dup <> Ok ());
        let dup_attr =
          [ Uml.clazz "C" [ Uml.attribute "x" Uml.String_t; Uml.attribute "x" Uml.Integer_t ] ]
        in
        check Alcotest.bool "dup attr" true (Uml.validate dup_attr <> Ok ()));
    tc "equal ignores class order" (fun () ->
        check Alcotest.bool "reversed" true
          (Uml.equal sample_model (List.rev sample_model)));
  ]

(* ------------------------------------------------------------------ *)
(* Trees *)

let sample_tree =
  Tree.node "store"
    [
      Tree.node "book" [ Tree.leaf "title1"; Tree.leaf "price1" ];
      Tree.node "book" [ Tree.leaf "title2" ];
      Tree.leaf "misc";
    ]

let tree_tests =
  [
    tc "size and depth" (fun () ->
        check Alcotest.int "size" 7 (Tree.size sample_tree);
        check Alcotest.int "depth" 3 (Tree.depth sample_tree);
        check Alcotest.int "leaf depth" 1 (Tree.depth (Tree.leaf "x")));
    tc "map preserves the shape" (fun () ->
        let t = Tree.map String.uppercase_ascii sample_tree in
        check Alcotest.string "root" "STORE" t.Tree.label;
        check Alcotest.int "size" (Tree.size sample_tree) (Tree.size t));
    tc "fold counts nodes" (fun () ->
        let count = Tree.fold (fun _ kids -> 1 + List.fold_left ( + ) 0 kids) sample_tree in
        check Alcotest.int "count" 7 count);
    tc "equal is structural" (fun () ->
        check Alcotest.bool "same" true
          (Tree.equal String.equal sample_tree sample_tree);
        check Alcotest.bool "different" false
          (Tree.equal String.equal sample_tree (Tree.leaf "store")));
    tc "children_labelled selects by label" (fun () ->
        check Alcotest.int "two books" 2
          (List.length (Tree.children_labelled "book" sample_tree)));
    tc "find_child and with_children" (fun () ->
        check Alcotest.bool "found misc" true
          (Tree.find_child (String.equal "misc") sample_tree <> None);
        let pruned = Tree.with_children sample_tree [] in
        check Alcotest.int "pruned" 1 (Tree.size pruned));
  ]

(* ------------------------------------------------------------------ *)
(* CSV *)

let csv_tests =
  [
    tc "print/parse round-trip" (fun () ->
        let doc = [ [ "a"; "b" ]; [ "c"; "d" ] ] in
        let s = Csv.print ~sep:',' doc in
        check Alcotest.string "printed" "a,b\nc,d\n" s;
        match Csv.parse ~sep:',' s with
        | Ok doc' -> check Alcotest.bool "round-trip" true (doc = doc')
        | Error e -> Alcotest.fail e);
    tc "empty document" (fun () ->
        check Alcotest.bool "parse empty" true (Csv.parse ~sep:',' "" = Ok []);
        check Alcotest.string "print empty" "" (Csv.print ~sep:',' []));
    tc "missing final newline is an error" (fun () ->
        check Alcotest.bool "error" true
          (match Csv.parse ~sep:',' "a,b" with Error _ -> true | Ok _ -> false));
    tc "field_ok rejects separators and newlines" (fun () ->
        check Alcotest.bool "comma" false (Csv.field_ok ~sep:',' "a,b");
        check Alcotest.bool "newline" false (Csv.field_ok ~sep:',' "a\nb");
        check Alcotest.bool "plain" true (Csv.field_ok ~sep:',' "ab"));
    tc "empty fields survive" (fun () ->
        match Csv.parse ~sep:',' ",\n" with
        | Ok doc -> check Alcotest.bool "two empty fields" true (doc = [ [ ""; "" ] ])
        | Error e -> Alcotest.fail e);
  ]

let csv_prop_tests =
  let field_gen = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (0 -- 6)) in
  let doc_gen = QCheck2.Gen.(list_size (0 -- 8) (list_size (1 -- 5) field_gen)) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"parse inverts print on clean fields"
         doc_gen
         (fun doc -> Csv.parse ~sep:',' (Csv.print ~sep:',' doc) = Ok doc));
  ]

(* ------------------------------------------------------------------ *)
(* Genealogy *)

let sample_families =
  Genealogy.
    [
      family ~father:"Jim" ~mother:"Cindy" ~sons:[ "Brandon" ]
        ~daughters:[ "Brenda" ] "March";
      family ~mother:"Jackie" ~sons:[ "David" ] "Sailor";
    ]

let genealogy_tests =
  [
    tc "family_members tags genders by role" (fun () ->
        let members = Genealogy.family_members (List.hd sample_families) in
        check Alcotest.int "four members" 4 (List.length members);
        check Alcotest.bool "father male" true
          (List.assoc "Jim" members = `Male);
        check Alcotest.bool "mother female" true
          (List.assoc "Cindy" members = `Female);
        check Alcotest.bool "daughter female" true
          (List.assoc "Brenda" members = `Female));
    tc "validate accepts the sample" (fun () ->
        check Alcotest.bool "ok" true
          (Genealogy.validate_families sample_families = Ok ()));
    tc "validate rejects duplicate last names and members" (fun () ->
        let dup = sample_families @ [ Genealogy.family "March" ] in
        check Alcotest.bool "dup family" true
          (Genealogy.validate_families dup <> Ok ());
        let dup_member =
          [ Genealogy.family ~father:"Jim" ~sons:[ "Jim" ] "X" ]
        in
        check Alcotest.bool "dup member" true
          (Genealogy.validate_families dup_member <> Ok ()));
    tc "equal_families ignores order" (fun () ->
        let f = List.hd sample_families in
        let shuffled =
          { f with Genealogy.sons = List.rev f.Genealogy.sons }
          :: List.tl sample_families
        in
        check Alcotest.bool "equal" true
          (Genealogy.equal_families sample_families (List.rev shuffled)));
    tc "split_full_name" (fun () ->
        check Alcotest.(option (pair string string)) "two parts"
          (Some ("Jim", "March"))
          (Genealogy.split_full_name "Jim March");
        check Alcotest.(option (pair string string)) "no space" None
          (Genealogy.split_full_name "Mononym");
        check Alcotest.(option (pair string string)) "splits at first space"
          (Some ("Ana", "de la Cruz"))
          (Genealogy.split_full_name "Ana de la Cruz"));
    tc "equal_persons ignores order" (fun () ->
        let ps =
          Genealogy.[ person Male "Jim March"; person Female "Cindy March" ]
        in
        check Alcotest.bool "equal" true
          (Genealogy.equal_persons ps (List.rev ps)));
  ]

(* ------------------------------------------------------------------ *)
(* Relational algebra and view update *)

let employees =
  Relational.table "employees"
    [
      Relational.column ~primary:true "id" Relational.Int_t;
      Relational.column "name" Relational.Text_t;
      Relational.column "dept" Relational.Text_t;
      Relational.column "salary" Relational.Int_t;
    ]

let rows =
  Relational.
    [
      [ Int_v 1; Text_v "ada"; Text_v "eng"; Int_v 90 ];
      [ Int_v 2; Text_v "ben"; Text_v "sales"; Int_v 60 ];
      [ Int_v 3; Text_v "cay"; Text_v "eng"; Int_v 80 ];
    ]

let eng = Relalg.Eq ("dept", Relational.Text_v "eng")

let relalg_tests =
  [
    tc "predicates evaluate by column name" (fun () ->
        check Alcotest.bool "eq" true
          (Relalg.eval_pred employees eng (List.hd rows));
        check Alcotest.bool "ne" true
          (Relalg.eval_pred employees
             (Relalg.Ne ("name", Relational.Text_v "x"))
             (List.hd rows));
        check Alcotest.bool "and/or/not" true
          (Relalg.eval_pred employees
             (Relalg.And (eng, Relalg.Not (Relalg.Eq ("id", Relational.Int_v 9))))
             (List.hd rows)));
    tc "unknown columns are rejected" (fun () ->
        check Alcotest.bool "raises" true
          (try ignore (Relalg.eval_pred employees
                         (Relalg.Eq ("ghost", Relational.Int_v 0))
                         (List.hd rows)); false
           with Relalg.Bad_query _ -> true));
    tc "selection filters, view table unchanged" (fun () ->
        check Alcotest.int "two eng rows" 2
          (List.length (Relalg.eval employees (Relalg.Select eng) rows));
        check Alcotest.bool "same schema" true
          (Relalg.view_table employees (Relalg.Select eng) = employees));
    tc "projection keeps named columns in order" (fun () ->
        let v = Relalg.view_table employees (Relalg.Project [ "id"; "name" ]) in
        check Alcotest.(list string) "columns" [ "id"; "name" ]
          (List.map (fun c -> c.Relational.col_name) v.Relational.columns);
        check Alcotest.bool "first row projected" true
          (List.hd (Relalg.eval employees (Relalg.Project [ "id"; "name" ]) rows)
          = Relational.[ Int_v 1; Text_v "ada" ]));
    tc "projection must retain the key" (fun () ->
        check Alcotest.bool "raises" true
          (try ignore (Relalg.view_table employees (Relalg.Project [ "name" ]));
             false
           with Relalg.Bad_query _ -> true));
    tc "selection put preserves rows outside the selection" (fun () ->
        let l = Relalg.lens employees (Relalg.Select eng) in
        let view' =
          Relational.[ [ Int_v 1; Text_v "ada"; Text_v "eng"; Int_v 95 ] ]
        in
        let rows' = l.Bx.Lens.put view' rows in
        (* ben (sales) survives; cay (eng) dropped; ada updated. *)
        check Alcotest.int "two rows" 2 (List.length rows');
        check Alcotest.bool "ben kept" true
          (List.exists
             (fun r -> List.nth r 1 = Relational.Text_v "ben")
             rows'));
    tc "selection put rejects rows violating the predicate" (fun () ->
        let l = Relalg.lens employees (Relalg.Select eng) in
        check Alcotest.bool "raises" true
          (try ignore (l.Bx.Lens.put
                         Relational.[ [ Int_v 9; Text_v "zed"; Text_v "hr"; Int_v 1 ] ]
                         rows); false
           with Bx.Lens.Error _ -> true));
    tc "projection put restores hidden columns by key" (fun () ->
        let l = Relalg.lens employees (Relalg.Project [ "id"; "name" ]) in
        let view' =
          Relational.
            [ [ Int_v 3; Text_v "cay" ]; [ Int_v 1; Text_v "adele" ] ]
        in
        let rows' = l.Bx.Lens.put view' rows in
        check Alcotest.bool "salaries follow ids" true
          (rows'
          = Relational.
              [
                [ Int_v 3; Text_v "cay"; Text_v "eng"; Int_v 80 ];
                [ Int_v 1; Text_v "adele"; Text_v "eng"; Int_v 90 ];
              ]));
    tc "select-project insertion completes the selection columns" (fun () ->
        let q = Relalg.Seq (Relalg.Select eng, Relalg.Project [ "id"; "name" ]) in
        let l = Relalg.lens employees q in
        let view' =
          Relational.[ [ Int_v 1; Text_v "ada" ]; [ Int_v 9; Text_v "zed" ] ]
        in
        let rows' = l.Bx.Lens.put view' rows in
        let zed = List.find (fun r -> List.nth r 0 = Relational.Int_v 9) rows' in
        check Alcotest.bool "dept forced to eng" true
          (List.nth zed 2 = Relational.Text_v "eng");
        check Alcotest.bool "salary defaulted" true
          (List.nth zed 3 = Relational.Int_v 0));
    tc "select-project lens laws on the sample" (fun () ->
        let q = Relalg.Seq (Relalg.Select eng, Relalg.Project [ "id"; "name" ]) in
        let l = Relalg.lens employees q in
        let space =
          Bx.Model.make ~name:"rows" ~equal:( = )
            ~pp:(fun ppf _ -> Fmt.string ppf "_")
        in
        (match (Bx.Lens.get_put_law space l).Bx.Law.check rows with
        | Bx.Law.Holds -> ()
        | Bx.Law.Violated m -> Alcotest.fail m);
        let v = Relational.[ [ Int_v 3; Text_v "c" ]; [ Int_v 7; Text_v "g" ] ] in
        match (Bx.Lens.put_get_law space l).Bx.Law.check (rows, v) with
        | Bx.Law.Holds -> ()
        | Bx.Law.Violated m -> Alcotest.fail m);
    tc "instances produced by put still conform to the schema" (fun () ->
        let q = Relalg.Seq (Relalg.Select eng, Relalg.Project [ "id"; "name" ]) in
        let l = Relalg.lens employees q in
        let rows' =
          l.Bx.Lens.put Relational.[ [ Int_v 9; Text_v "zed" ] ] rows
        in
        check Alcotest.bool "conforms" true
          (Relational.conforms [ employees ] [ ("employees", rows') ] = Ok ()));
  ]

(* ------------------------------------------------------------------ *)
(* Tree edits *)

let t l cs = Tree.node l cs
let leaf l = Tree.leaf l

let tree_edit_tests =
  [
    tc "relabel at a path" (fun () ->
        let tree = t "root" [ leaf "a"; t "b" [ leaf "c" ] ] in
        match Tree_edit.apply_op (Tree_edit.Relabel ([ 1; 0 ], "C")) tree with
        | Some tree' ->
            check Alcotest.bool "relabelled" true
              (Tree.equal String.equal tree'
                 (t "root" [ leaf "a"; t "b" [ leaf "C" ] ]))
        | None -> Alcotest.fail "apply failed");
    tc "insert and delete children" (fun () ->
        let tree = t "root" [ leaf "a"; leaf "c" ] in
        let edit =
          Tree_edit.[ Insert_child ([], 1, leaf "b"); Delete_child ([], 0) ]
        in
        match Tree_edit.apply edit tree with
        | Some tree' ->
            check Alcotest.bool "sequence applied" true
              (Tree.equal String.equal tree' (t "root" [ leaf "b"; leaf "c" ]))
        | None -> Alcotest.fail "apply failed");
    tc "out-of-range operations fail cleanly" (fun () ->
        let tree = t "root" [ leaf "a" ] in
        check Alcotest.bool "bad path" true
          (Tree_edit.apply_op (Tree_edit.Relabel ([ 5 ], "x")) tree = None);
        check Alcotest.bool "bad index" true
          (Tree_edit.apply_op (Tree_edit.Delete_child ([], 3)) tree = None);
        check Alcotest.bool "bad insert" true
          (Tree_edit.apply_op (Tree_edit.Insert_child ([], 9, leaf "x")) tree
          = None));
    tc "diff replays one tree into another" (fun () ->
        let t1 = t "store" [ t "book" [ leaf "t1" ]; t "book" [ leaf "t2" ] ] in
        let t2 =
          t "store"
            [ t "book" [ leaf "t1"; leaf "extra" ]; t "shelf" []; t "book" [ leaf "t2" ] ]
        in
        let edit = Tree_edit.diff ~equal:String.equal t1 t2 in
        match Tree_edit.apply edit t1 with
        | Some t1' -> check Alcotest.bool "replayed" true (Tree.equal String.equal t1' t2)
        | None -> Alcotest.fail "diff edit did not apply");
    tc "diff of equal trees is empty" (fun () ->
        let tree = t "a" [ leaf "b"; t "c" [ leaf "d" ] ] in
        check Alcotest.int "empty" 0
          (Tree_edit.edit_size (Tree_edit.diff ~equal:String.equal tree tree)));
    tc "diff is small for a small change" (fun () ->
        let t1 = t "r" [ leaf "a"; leaf "b"; leaf "c"; leaf "d" ] in
        let t2 = t "r" [ leaf "a"; leaf "x"; leaf "b"; leaf "c"; leaf "d" ] in
        let edit = Tree_edit.diff ~equal:String.equal t1 t2 in
        check Alcotest.int "one insertion" 1 (Tree_edit.edit_size edit));
    tc "the edit module threads the monoid" (fun () ->
        let m = Tree_edit.edit_module () in
        let tree = t "r" [ leaf "a" ] in
        check Alcotest.bool "identity" true
          (m.Bx.Elens.apply m.Bx.Elens.identity tree = Some tree);
        let e =
          m.Bx.Elens.compose
            [ Tree_edit.Insert_child ([], 1, leaf "b") ]
            [ Tree_edit.Relabel ([ 1 ], "B") ]
        in
        match m.Bx.Elens.apply e tree with
        | Some tree' ->
            check Alcotest.bool "composite" true
              (Tree.equal String.equal tree' (t "r" [ leaf "a"; leaf "B" ]))
        | None -> Alcotest.fail "apply failed");
  ]

(* Property: diff then apply is the identity, on random label trees. *)
let tree_edit_prop_tests =
  let rec tree_gen depth =
    let open QCheck2.Gen in
    if depth = 0 then map Tree.leaf (oneofl [ "a"; "b"; "c" ])
    else
      map2 Tree.node (oneofl [ "a"; "b"; "c" ])
        (list_size (0 -- 3) (tree_gen (depth - 1)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"apply (diff t1 t2) t1 = t2"
         (QCheck2.Gen.pair (tree_gen 3) (tree_gen 3))
         (fun (t1, t2) ->
           match Tree_edit.apply (Tree_edit.diff ~equal:String.equal t1 t2) t1 with
           | Some t1' -> Tree.equal String.equal t1' t2
           | None -> false));
  ]

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_tests =
  [
    tc "print/parse round-trips structured values" (fun () ->
        let v =
          Json.Obj
            [
              ("s", Json.String "hi\nthere \"quoted\"");
              ("n", Json.Int (-42));
              ("b", Json.Bool true);
              ("nothing", Json.Null);
              ("l", Json.List [ Json.Int 1; Json.String "x"; Json.Obj [] ]);
            ]
        in
        (match Json.of_string (Json.to_string v) with
        | Ok v' -> check Alcotest.bool "compact" true (Json.equal v v')
        | Error e -> Alcotest.fail e);
        match Json.of_string (Json.to_string ~indent:2 v) with
        | Ok v' -> check Alcotest.bool "pretty" true (Json.equal v v')
        | Error e -> Alcotest.fail e);
    tc "parses whitespace and nesting" (fun () ->
        match Json.of_string "  { \"a\" : [ 1 , 2 ] , \"b\" : { } }  " with
        | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]);
                         ("b", Json.Obj []) ]) -> ()
        | Ok v -> Alcotest.failf "unexpected %s" (Json.to_string v)
        | Error e -> Alcotest.fail e);
    tc "escapes round-trip control characters" (fun () ->
        let s = "tab\tnl\ncr\rctl\x01" in
        match Json.of_string (Json.to_string (Json.String s)) with
        | Ok (Json.String s') -> check Alcotest.string "same" s s'
        | _ -> Alcotest.fail "round trip failed");
    tc "rejects malformed input with positions" (fun () ->
        List.iter
          (fun input ->
            check Alcotest.bool input true
              (Result.is_error (Json.of_string input)))
          [ ""; "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "tru"; "1 2";
            "{\"a\":1,}" ]);
    tc "accessors" (fun () ->
        let v = Json.Obj [ ("x", Json.Int 3) ] in
        check Alcotest.bool "member" true (Json.member "x" v = Some (Json.Int 3));
        check Alcotest.bool "missing" true (Json.member "y" v = None);
        check Alcotest.bool "to_int" true (Json.to_int (Json.Int 3) = Some 3);
        check Alcotest.bool "to_str none" true (Json.to_str (Json.Int 3) = None));
    tc "\\u escapes decode below 0x100 and reject above" (fun () ->
        (match Json.of_string "\"\\u0041\"" with
        | Ok (Json.String "A") -> ()
        | _ -> Alcotest.fail "u0041");
        check Alcotest.bool "u0100 rejected" true
          (Result.is_error (Json.of_string "\"\\u0100\"")));
  ]

let () =
  Alcotest.run "bx-models"
    [
      ("rational", rational_tests);
      ("rational-properties", rational_prop_tests);
      ("relational", relational_tests);
      ("uml", uml_tests);
      ("tree", tree_tests);
      ("csv", csv_tests);
      ("csv-properties", csv_prop_tests);
      ("genealogy", genealogy_tests);
      ("relalg", relalg_tests);
      ("tree-edit", tree_edit_tests);
      ("tree-edit-properties", tree_edit_prop_tests);
      ("json", json_tests);
    ]
