(* COMPOSERS-BOOMERANG (experiment E4): the original POPL 2008 string-lens
   form of the Composers example, with the resourceful-vs-positional
   ablation, plus a look at the static typing machinery. *)

open Bx_strlens
open Bx_catalogue.Composers_string

let header fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

let () =
  let source =
    "Bach, 1685-1750, German\n\
     Britten, 1913-1976, English\n\
     Cage, 1912-1992, American\n"
  in
  header "get: project the dates away";
  Fmt.pr "%s" (lens.Slens.get source);

  header "put: reorder the view and drop Cage";
  let view = "Britten, English\nBach, German\n" in
  Fmt.pr "%s" (lens.Slens.put view source);
  Fmt.pr "  (dictionary alignment: each composer kept their dates)@.";

  header "ablation: the positional star on the same input";
  Fmt.pr "%s" (positional_lens.Slens.put view source);
  Fmt.pr "  (positional alignment: the dates stayed at their positions)@.";

  header "put: create an unknown composer";
  Fmt.pr "%s" (lens.Slens.put "Satie, French\n" "");

  header "static lens types";
  Fmt.pr "source type: %a@." Bx_regex.Regex.pp lens.Slens.stype;
  Fmt.pr "view type  : %a@." Bx_regex.Regex.pp lens.Slens.vtype;

  header "the typing obligations at work";
  (* An ambiguous concatenation is rejected at construction time, with a
     witness showing why. *)
  let letters = Bx_regex.Regex.(star (cset (Bx_regex.Cset.range 'a' 'z'))) in
  (try
     let (_ : Slens.t) = Slens.concat (Slens.copy letters) (Slens.copy letters) in
     assert false
   with Slens.Type_error msg -> Fmt.pr "rejected: %s@." msg);
  (* Disjointness failures likewise. *)
  (try
     let (_ : Slens.t) =
       Slens.union (Slens.copy (Bx_regex.Regex.str "a")) (Slens.copy letters)
     in
     assert false
   with Slens.Type_error msg -> Fmt.pr "rejected: %s@." msg);

  header "round-trip laws on this input";
  let gp = Slens.get_put_law lens in
  let pg = Slens.put_get_law lens in
  Fmt.pr "GetPut: %a@." Bx.Law.pp_verdict (gp.Bx.Law.check source);
  Fmt.pr "PutGet: %a@." Bx.Law.pp_verdict (pg.Bx.Law.check (source, view))
