(* Delta-based bx end to end: the COMPOSERS-EDIT and BOOKSTORE-EDIT
   entries — what restoration can do when it sees the edit rather than
   only the resulting state (the paper's section 3 explicitly admits
   such bx). *)

let header fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

let () =
  header "COMPOSERS-EDIT: the edit carries intent";
  let open Bx_catalogue.Composers_edit in
  let bach = Bx_catalogue.Composers.composer ~name:"Bach" ~dates:"1685-1750"
      ~nationality:"German" in
  let cpe = Bx_catalogue.Composers.composer ~name:"Bach" ~dates:"1714-1788"
      ~nationality:"German" in
  let c0 =
    match apply_consistently initial [ Add_composer bach; Add_composer cpe ] with
    | Ok c -> c
    | Error e -> failwith e
  in
  let m0, n0 = c0 in
  Fmt.pr "two Bachs, one entry: m has %d composers, n has %d entries@."
    (List.length m0) (List.length n0);

  (* Removing ONE of the two Bachs: the state-based bx cannot even
     express which object was meant; the edit lens translates it to the
     empty edit on n. *)
  let n_edits, (m1, n1) = lens.Bx.Elens.fwd [ Remove_composer cpe ] c0 in
  Fmt.pr "remove C.P.E. only: %d n-edits (the entry stays), %d composers left@."
    (List.length n_edits) (List.length m1);
  assert (consistent_complement (m1, n1));

  (* Removing the last one deletes the entry. *)
  let n_edits, (m2, n2) = lens.Bx.Elens.fwd [ Remove_composer bach ] (m1, n1) in
  Fmt.pr "remove J.S. too: %d n-edit(s), %d entries left@."
    (List.length n_edits) (List.length n2);
  assert (consistent_complement (m2, n2));

  header "BOOKSTORE-EDIT: updates touch exactly the changed leaves";
  let open Bx_catalogue.Bookstore_edit in
  let store =
    Bx_catalogue.Bookstore.store_of_books
      [
        { Bx_catalogue.Bookstore.title = "tapl"; author = "pierce"; price = 60 };
        { Bx_catalogue.Bookstore.title = "sicp"; author = "abelson"; price = 40 };
      ]
  in
  Fmt.pr "store: %a@." (Bx_models.Tree.pp Fmt.string) store;
  let tree_ops, store' =
    lens.Bx.Elens.fwd [ Bx.Elens.Update_at (0, ("tapl", 65)) ] store
  in
  Fmt.pr "update tapl's price: %d tree op(s) — " (List.length tree_ops);
  (match tree_ops with
  | [ Bx_models.Tree_edit.Relabel (path, label) ] ->
      Fmt.pr "Relabel %a to %S@." Fmt.(Dump.list int) path label
  | _ -> Fmt.pr "unexpected@.");
  Fmt.pr "after: %a@." (Bx_models.Tree.pp Fmt.string) store';

  header "tree diff as an edit source";
  let perturbed =
    Bx_catalogue.Bookstore.store_of_books
      [
        { Bx_catalogue.Bookstore.title = "tapl"; author = "pierce"; price = 65 };
        { Bx_catalogue.Bookstore.title = "hott"; author = "univalent"; price = 0 };
        { Bx_catalogue.Bookstore.title = "sicp"; author = "abelson"; price = 40 };
      ]
  in
  let edit = Bx_models.Tree_edit.diff ~equal:String.equal store perturbed in
  Fmt.pr "diff(store, perturbed) = %d primitive ops@."
    (Bx_models.Tree_edit.edit_size edit);
  let view_ops, _ = lens.Bx.Elens.bwd edit store in
  Fmt.pr "abstracted to the view: %d row op(s)@." (List.length view_ops);
  List.iter
    (fun op ->
      match op with
      | Bx.Elens.Insert_at (i, (t, p)) -> Fmt.pr "  insert %S at %d (price %d)@." t i p
      | Bx.Elens.Delete_at i -> Fmt.pr "  delete row %d@." i
      | Bx.Elens.Update_at (i, (t, p)) -> Fmt.pr "  update row %d to (%s, %d)@." i t p)
    view_ops;

  header "COMPOSERS-SYMLENS: the Discussion's failure, repaired";
  let trace = Bx_catalogue.Composers_symlens.repair_counterexample () in
  Fmt.pr "delete Britten's entry, pull left:  m = %a@."
    Bx_catalogue.Composers.m_space.Bx.Model.pp trace.Bx_catalogue.Composers_symlens.m_after_delete;
  Fmt.pr "restore the entry, pull left again: m = %a@."
    Bx_catalogue.Composers.m_space.Bx.Model.pp trace.Bx_catalogue.Composers_symlens.m_after_restore;
  Fmt.pr "dates recovered: %b — the complement is the 'extra information'@."
    trace.Bx_catalogue.Composers_symlens.dates_recovered;
  Fmt.pr "the paper's Discussion says state-based bx cannot have.@.";

  header "the entries' claims, machine-checked";
  match Bx_check.Examples_check.report_for ~count:100 "COMPOSERS-EDIT" with
  | Ok rows -> Fmt.pr "COMPOSERS-EDIT:@.%a@." Bx_check.Verify.pp_report rows
  | Error e -> failwith e
