(* Quickstart: define a bx, restore consistency, and check its laws.

   The running example: a task list (title, done-flag, notes) viewed as a
   plain list of titles.  Notes and done-flags are the hidden data. *)

type task = { title : string; done_ : bool; notes : string }

let pp_task ppf t =
  Fmt.pf ppf "%s%s" t.title (if t.done_ then " [done]" else "")

(* 1. A lens, built from the generic combinators: an iso into nested
   pairs, the first-projection, and a key-aligned list map. *)

let task_iso =
  Bx.Iso.make ~name:"task-pairs"
    ~fwd:(fun t -> (t.title, (t.done_, t.notes)))
    ~bwd:(fun (title, (done_, notes)) -> { title; done_; notes })

let title_lens =
  Bx.Lens.compose (Bx.Lens.of_iso task_iso)
    (Bx.Lens.first ~default:(false, ""))

let tasks_lens =
  Bx.Lens.list_key_map ~source_key:(fun t -> t.title) ~view_key:Fun.id
    title_lens

(* 2. Use it. *)

let () =
  let tasks =
    [
      { title = "write paper"; done_ = true; notes = "BX 2014" };
      { title = "build repository"; done_ = false; notes = "wiki" };
    ]
  in
  Fmt.pr "tasks      : %a@." (Fmt.Dump.list pp_task) tasks;
  let titles = tasks_lens.Bx.Lens.get tasks in
  Fmt.pr "view (get) : %a@." Fmt.(Dump.list string) titles;

  (* Edit the view: reorder and add a title, then put it back. *)
  let edited = [ "build repository"; "write paper"; "celebrate" ] in
  let tasks' = tasks_lens.Bx.Lens.put edited tasks in
  Fmt.pr "after put  : %a@." (Fmt.Dump.list pp_task) tasks';
  assert (tasks_lens.Bx.Lens.get tasks' = edited);

  (* 3. Check the lens laws on these inputs. *)
  let source_space =
    Bx.Model.make ~name:"tasks" ~equal:( = )
      ~pp:(Fmt.Dump.list pp_task)
  in
  let view_space = Bx.Model.(list string) in
  let get_put = Bx.Lens.get_put_law source_space tasks_lens in
  let put_get = Bx.Lens.put_get_law view_space tasks_lens in
  Fmt.pr "GetPut     : %a@." Bx.Law.pp_verdict (get_put.Bx.Law.check tasks);
  Fmt.pr "PutGet     : %a@." Bx.Law.pp_verdict
    (put_get.Bx.Law.check (tasks, edited));

  (* 4. The same bx viewed symmetrically, with the glossary properties. *)
  let bx = Bx.Symmetric.of_lens ~view_equal:( = ) tasks_lens in
  Fmt.pr "consistent : %b@." (bx.Bx.Symmetric.consistent tasks' edited);
  Fmt.pr "correct    : %a@." Bx.Law.pp_verdict
    ((Bx.Symmetric.correct_law bx).Bx.Law.check (tasks, edited));
  Fmt.pr "@.Every law above is a first-class value: the test suite and the@.";
  Fmt.pr "bxrepo CLI run the same checks over random models.@."
