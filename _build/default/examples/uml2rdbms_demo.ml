(* UML2RDBMS: the model-driven engineering scenario — evolve a class
   model and a database schema in parallel, letting the bx reconcile. *)

open Bx_models
open Bx_catalogue.Uml2rdbms

let header fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

let () =
  let model =
    [
      Uml.clazz "Customer"
        [
          Uml.attribute ~is_key:true "id" Uml.Integer_t;
          Uml.attribute "name" Uml.String_t;
          Uml.attribute "vip" Uml.Boolean_t;
        ];
      Uml.clazz "Order"
        [
          Uml.attribute ~is_key:true "number" Uml.Integer_t;
          Uml.attribute "total" Uml.Integer_t;
        ];
      Uml.clazz ~persistent:false "SessionCache"
        [ Uml.attribute "payload" Uml.String_t ];
    ]
  in
  header "the class model";
  Fmt.pr "%a@." Uml.pp model;

  header "forward: derive the schema";
  let schema = bx.Bx.Symmetric.fwd model [] in
  Fmt.pr "%a@." Relational.pp_schema schema;
  Fmt.pr "(SessionCache is not persistent: no table.)@.";

  header "the DBA drops a column and adds a table";
  let schema' =
    Relational.add_table
      (Relational.add_table
         (Relational.remove_table schema "Order")
         (Relational.table "Order"
            [ Relational.column ~primary:true "number" Relational.Int_t ]))
      (Relational.table "AuditLog"
         [
           Relational.column ~primary:true "seq" Relational.Int_t;
           Relational.column "entry" Relational.Text_t;
         ])
  in
  Fmt.pr "%a@." Relational.pp_schema schema';

  header "backward: reconcile the class model";
  let model' = bx.Bx.Symmetric.bwd model schema' in
  Fmt.pr "%a@." Uml.pp model';
  Fmt.pr
    "(Order lost its total, AuditLog became a persistent class, and the@.\
    \ non-persistent SessionCache survived untouched.)@.";
  assert (bx.Bx.Symmetric.consistent model' schema');

  header "this bx is undoable — revert the schema, recover the model";
  let model'' = bx.Bx.Symmetric.bwd model' schema in
  Fmt.pr "%a@." Uml.pp model'';
  Fmt.pr "round-trip restored the original model: %b@."
    (Uml.equal model model'');

  header "the entry's claims, machine-checked";
  match Bx_check.Examples_check.report_for ~count:150 "UML2RDBMS" with
  | Ok rows -> Fmt.pr "%a@." Bx_check.Verify.pp_report rows
  | Error e -> failwith e
