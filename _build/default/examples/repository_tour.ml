(* A tour of the repository infrastructure (experiments E5 and E6): the
   curation workflow of section 5.1, stable citations of section 5.2, and
   the wiki round trip of section 5.4. *)

open Bx_repo

let header fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

let or_die = function
  | Ok x -> x
  | Error e -> failwith (Registry.error_message e)

let () =
  header "seed the registry with the catalogue";
  let reg = Bx_catalogue.Catalogue.seed () in
  Fmt.pr "%d entries, all provisional (version 0.x), as in the paper.@."
    (Registry.size reg);

  let composers = Result.get_ok (Identifier.of_title "COMPOSERS") in

  header "E6: the three-level curation workflow";
  let member = Curation.account "A Wiki Member" in
  let reviewer = Curation.account ~role:Curation.Reviewer "Jeremy Gibbons" in
  let curator = Curation.account ~role:Curation.Curator "James Cheney" in
  or_die (Registry.comment reg ~as_:member composers
            ~text:"Could the Variants section mention dates formats?");
  Fmt.pr "member commented.@.";
  (match Registry.endorse reg ~as_:member composers with
  | Error (Registry.Permission_denied msg) ->
      Fmt.pr "member tried to endorse: denied (%s).@." msg
  | _ -> assert false);
  or_die (Registry.endorse reg ~as_:reviewer composers);
  Fmt.pr "reviewer endorsed.@.";
  let v = or_die (Registry.approve reg ~as_:curator composers) in
  Fmt.pr "curator approved: version is now %s.@." (Version.to_string v);
  Fmt.pr "old versions remain: %s@."
    (String.concat ", "
       (List.map Version.to_string (or_die (Registry.versions reg composers))));

  header "E6: stable citations, pinned by version";
  Fmt.pr "%s@." (or_die (Registry.cite reg composers));
  Fmt.pr "%s@."
    (or_die (Registry.cite reg ~version:Version.initial composers));

  header "search";
  Fmt.pr "not undoable: %s@."
    (String.concat ", "
       (List.map Identifier.to_string
          (Registry.search reg
             (Registry.query
                ~property:(Bx.Properties.Violates Bx.Properties.Undoable)
                ()))));
  Fmt.pr "benchmarks:   %s@."
    (String.concat ", "
       (List.map Identifier.to_string
          (Registry.search reg (Registry.query ~cls:Template.Benchmark ()))));

  header "E5: the wiki page is a lens view of the entry";
  let lens = Sync.lens () in
  let entry = Sync.normalise (or_die (Registry.latest reg composers)) in
  let page = lens.Bx.Lens.get entry in
  Fmt.pr "rendered page: %d blocks, starts with:@.%s@."
    (List.length page)
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 4)
          (String.split_on_char '\n' (Markup.render page))));

  (* Edit the page as a wiki member would: change the overview text. *)
  let edited_page =
    let rec edit = function
      | Markup.Heading (2, "Overview") :: Markup.Para _ :: rest ->
          Markup.Heading (2, "Overview")
          :: Markup.Para
               [ Markup.Text "Two representations of composers, edited on the wiki." ]
          :: rest
      | b :: rest -> b :: edit rest
      | [] -> []
    in
    edit page
  in
  let entry' = lens.Bx.Lens.put edited_page entry in
  Fmt.pr "@.after a wiki edit, the structured entry's overview reads:@.  %S@."
    entry'.Template.overview;
  Fmt.pr "everything else untouched: %b@."
    (entry'.Template.consistency = entry.Template.consistency
    && entry'.Template.discussion = entry.Template.discussion);

  header "E5: export / import round trip (the local backup of section 5.4)";
  let pages = Registry.export reg in
  let reg' = Result.get_ok (Registry.import pages) in
  Fmt.pr "exported %d pages; re-imported registry has %d entries with %s@."
    (List.length pages) (Registry.size reg')
    (String.concat ", "
       (List.map Version.to_string (or_die (Registry.versions reg' composers))));

  header "the machine half of reviewing: check before endorsing";
  match Bx_check.Examples_check.report_for ~count:100 "BOOKSTORE" with
  | Ok rows ->
      Fmt.pr "BOOKSTORE:@.%a@." Bx_check.Verify.pp_report rows;
      Fmt.pr "all claims upheld: %b@." (Bx_check.Verify.all_upheld rows)
  | Error e -> failwith e
