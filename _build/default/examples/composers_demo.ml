(* COMPOSERS end to end: the paper's section 4 example — consistency,
   both restoration directions, the variants, and the undoability
   counterexample (experiments E1-E3). *)

open Bx_catalogue.Composers

let pp_m = m_space.Bx.Model.pp
let pp_n = n_space.Bx.Model.pp

let header fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

let () =
  let m =
    [
      composer ~name:"Britten" ~dates:"1913-1976" ~nationality:"English";
      composer ~name:"Bach" ~dates:"1685-1750" ~nationality:"German";
    ]
  in
  let n = [ ("Faure", "French"); ("Bach", "German") ] in

  header "models";
  Fmt.pr "m = %a@." pp_m m;
  Fmt.pr "n = %a@." pp_n n;
  Fmt.pr "consistent m n = %b@." (bx.Bx.Symmetric.consistent m n);

  header "forward restoration (m authoritative)";
  let n' = bx.Bx.Symmetric.fwd m n in
  Fmt.pr "fwd m n = %a@." pp_n n';
  Fmt.pr "  Faure (no composer) was deleted; Britten appended at the end.@.";
  assert (bx.Bx.Symmetric.consistent m n');

  header "backward restoration (n authoritative)";
  let m' = bx.Bx.Symmetric.bwd m n in
  Fmt.pr "bwd m n = %a@." pp_m m';
  Fmt.pr "  Britten (no entry) was deleted; Faure created with %s dates.@."
    unknown_dates;
  assert (bx.Bx.Symmetric.consistent m' n);

  header "E1: the template's property claims, machine-checked";
  (match Bx_check.Examples_check.report_for ~count:200 "COMPOSERS" with
  | Ok rows -> Fmt.pr "%a@." Bx_check.Verify.pp_report rows
  | Error e -> failwith e);

  header "E2: the undoability counterexample from the Discussion";
  let trace = undoability_counterexample () in
  Fmt.pr "start      m = %a@." pp_m trace.initial_m;
  Fmt.pr "           n = %a@." pp_n trace.initial_n;
  Fmt.pr "delete:    n = %a@." pp_n trace.n_after_delete;
  Fmt.pr "bwd:       m = %a@." pp_m trace.m_after_first_bwd;
  Fmt.pr "restore:   n = %a@." pp_n trace.n_after_restore;
  Fmt.pr "bwd again: m = %a@." pp_m trace.m_after_second_bwd;
  Fmt.pr "dates lost = %b@." trace.dates_lost;

  header "E3: the variation points";
  let open Bx_catalogue.Composers_variants in
  let m_britten = [ composer ~name:"Britten" ~dates:"1913-1976" ~nationality:"British" ] in
  let n_britten = [ ("Britten", "English") ] in
  Fmt.pr "base bwd (create a second composer):@.  %a@." pp_m
    (bx.Bx.Symmetric.bwd m_britten n_britten);
  Fmt.pr "name-as-key bwd (update nationality in place):@.  %a@." pp_m
    (name_as_key.Bx.Symmetric.bwd m_britten n_britten);
  Fmt.pr "insert-at-beginning fwd:@.  %a@." pp_n
    (insert_at_beginning.Bx.Symmetric.fwd m [ ("Bach", "German") ]);
  let consistent_unsorted = [ ("Britten", "English"); ("Bach", "German") ] in
  let law =
    Bx.Symmetric.hippocratic_fwd_law n_space alphabetical_n
  in
  Fmt.pr "alphabetical-n on a consistent but unsorted n: %a@."
    Bx.Law.pp_verdict
    (law.Bx.Law.check (m, consistent_unsorted));
  Fmt.pr "  (reordering when nothing need change — the paper's warning.)@.";

  header "least change (the project the repository was founded for)";
  let candidates m n =
    [
      bx.Bx.Symmetric.fwd m n;
      insert_at_beginning.Bx.Symmetric.fwd m n;
      List.sort compare (bx.Bx.Symmetric.fwd m n);
      n;
    ]
  in
  let edit_distance = Bx.Least_change.list_edit_distance ~equal:( = ) in
  let law =
    Bx.Least_change.fwd_law ~candidates ~distance:edit_distance bx
  in
  let m_lc =
    [
      composer ~name:"Bach" ~dates:"1685-1750" ~nationality:"German";
      composer ~name:"Britten" ~dates:"1913-1976" ~nationality:"English";
    ]
  in
  let n_lc = [ ("Faure", "French"); ("Bach", "German") ] in
  Fmt.pr "edit-distance minimality of fwd on (m, [Faure; Bach]): %a@."
    Bx.Law.pp_verdict
    (law.Bx.Law.check (m_lc, n_lc));
  Fmt.pr
    "  (appending Britten at the end costs 2 edits where prepending costs 1:@.\
    \   the paper's 'where is a new composer added?' variant is a@.\
    \   least-change question, and the base example answers it non-minimally.)@."
