examples/quickstart.mli:
