examples/delta_demo.ml: Bx Bx_catalogue Bx_check Bx_models Dump Fmt List String
