examples/view_update_demo.mli:
