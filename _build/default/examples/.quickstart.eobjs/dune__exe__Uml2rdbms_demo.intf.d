examples/uml2rdbms_demo.mli:
