examples/string_lens_demo.mli:
