examples/delta_demo.mli:
