examples/composers_demo.ml: Bx Bx_catalogue Bx_check Fmt List
