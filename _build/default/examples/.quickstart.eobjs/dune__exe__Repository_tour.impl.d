examples/repository_tour.ml: Bx Bx_catalogue Bx_check Bx_repo Curation Fmt Identifier List Markup Registry Result String Sync Template Version
