examples/string_lens_demo.ml: Bx Bx_catalogue Bx_regex Bx_strlens Fmt Slens
