examples/view_update_demo.ml: Bx Bx_catalogue Bx_check Bx_models Fmt List Relalg Relational
