examples/quickstart.ml: Bx Dump Fmt Fun
