examples/repository_tour.mli:
