examples/uml2rdbms_demo.ml: Bx Bx_catalogue Bx_check Bx_models Fmt Relational Uml
