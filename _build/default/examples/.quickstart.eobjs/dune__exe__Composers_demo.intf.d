examples/composers_demo.mli:
