(* SELECT-PROJECT-VIEW: the database end of the bx spectrum — update an
   employees table through its engineering-directory view, with the
   classical translatability conditions doing the policing. *)

open Bx_models
open Bx_catalogue.View_update

let header fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

let pp_rows ppf rows =
  List.iter
    (fun row ->
      Fmt.pf ppf "  %a@."
        (Fmt.list ~sep:(Fmt.any " | ") Relational.pp_value)
        row)
    rows

let () =
  header "the base table";
  Fmt.pr "%a" pp_rows sample_rows;

  header "the view: sigma(dept = eng); pi(id, name)";
  let view = lens.Bx.Lens.get sample_rows in
  Fmt.pr "%a" pp_rows view;

  header "rename through the view, add a new engineer";
  let view' =
    Relational.
      [
        [ Int_v 1; Text_v "ada lovelace" ];
        [ Int_v 3; Text_v "cay" ];
        [ Int_v 4; Text_v "dan" ];
      ]
  in
  let rows' = lens.Bx.Lens.put view' sample_rows in
  Fmt.pr "%a" pp_rows rows';
  Fmt.pr
    "  (ada kept her salary; ben, outside the selection, is untouched;@.\
    \   dan was inserted with dept forced to eng by the selection.)@.";
  assert (Relational.conforms [ employees ] [ ("employees", rows') ] = Ok ());

  header "the untranslatable cases are static or dynamic errors";
  (try
     let (_ : (Relational.row list, Relational.row list) Bx.Lens.t) =
       Relalg.lens employees (Relalg.Project [ "name" ])
     in
     assert false
   with Relalg.Bad_query msg -> Fmt.pr "rejected: %s@." msg);
  (try
     let l = Relalg.lens employees (Relalg.Select (Relalg.Eq ("dept", Relational.Text_v "eng"))) in
     let bad = Relational.[ [ Int_v 9; Text_v "zed"; Text_v "hr"; Int_v 1 ] ] in
     ignore (l.Bx.Lens.put bad sample_rows);
     assert false
   with Bx.Lens.Error msg -> Fmt.pr "rejected: %s@." msg);

  header "the entry's claims, machine-checked";
  match Bx_check.Examples_check.report_for ~count:150 "SELECT-PROJECT-VIEW" with
  | Ok rows -> Fmt.pr "%a@." Bx_check.Verify.pp_report rows
  | Error e -> failwith e
