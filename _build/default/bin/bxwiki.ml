(* bxwiki — the repository served as an actual wiki.

   A deliberately small HTTP/1.1 server over the pure request handler in
   Bx_repo.Webui: GET renders entries through the Sync lens, POST runs
   the section 5.4 bx on an edited page and records a new version.  State
   lives in the process; export/import (bxrepo) is the durable form. *)

let read_request in_channel =
  (* Request line, headers (we only need Content-Length), then the body. *)
  let request_line = input_line in_channel in
  let meth, path =
    match String.split_on_char ' ' (String.trim request_line) with
    | m :: p :: _ -> (m, p)
    | _ -> ("GET", "/")
  in
  let content_length = ref 0 in
  (try
     let rec headers () =
       let line = String.trim (input_line in_channel) in
       if line <> "" then begin
         (match String.index_opt line ':' with
         | Some i
           when String.lowercase_ascii (String.sub line 0 i) = "content-length"
           -> (
             let v =
               String.trim (String.sub line (i + 1) (String.length line - i - 1))
             in
             match int_of_string_opt v with
             | Some n -> content_length := n
             | None -> ())
         | _ -> ());
         headers ()
       end
     in
     headers ()
   with End_of_file -> ());
  let body =
    if !content_length > 0 then really_input_string in_channel !content_length
    else ""
  in
  (meth, path, body)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Internal Server Error"

let write_response out_channel (r : Bx_repo.Webui.response) =
  Printf.fprintf out_channel
    "HTTP/1.1 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    r.Bx_repo.Webui.status
    (status_text r.Bx_repo.Webui.status)
    r.Bx_repo.Webui.content_type
    (String.length r.Bx_repo.Webui.body)
    r.Bx_repo.Webui.body;
  flush out_channel

(* The live claimed-vs-verified report, computed once on first request
   (it runs every entry's law checks, which takes a few seconds). *)
let checks_page =
  lazy
    (let reports = Bx_check.Examples_check.all_reports ~count:60 () in
     let fragment =
       String.concat "\n"
         (List.map
            (fun (title, rows) ->
              Printf.sprintf "<h2>%s</h2><pre>%s</pre>"
                (Bx_repo.Markup.html_escape title)
                (Bx_repo.Markup.html_escape
                   (Fmt.str "%a" Bx_check.Verify.pp_report rows)))
            reports)
     in
     ("Claimed vs verified", "<h1>Claimed vs verified</h1>" ^ fragment))

let serve port =
  let registry = Bx_catalogue.Catalogue.seed () in
  let pages = [ ("/checks", fun () -> Lazy.force checks_page) ] in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 16;
  Printf.printf "bxwiki: serving %d entries on http://127.0.0.1:%d/\n%!"
    (Bx_repo.Registry.size registry)
    port;
  while true do
    let client, _ = Unix.accept sock in
    let in_channel = Unix.in_channel_of_descr client in
    let out_channel = Unix.out_channel_of_descr client in
    (try
       let meth, path, body = read_request in_channel in
       let response = Bx_repo.Webui.handle ~pages registry ~meth ~path ~body in
       write_response out_channel response
     with
    | End_of_file -> ()
    | Sys_error _ -> ());
    (try Unix.close client with Unix.Unix_error (_, _, _) -> ())
  done

let () =
  let port =
    if Array.length Sys.argv > 1 then
      match int_of_string_opt Sys.argv.(1) with
      | Some p -> p
      | None ->
          prerr_endline "usage: bxwiki [PORT]";
          exit 2
    else 8008
  in
  serve port
