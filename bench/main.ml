(* The benchmark harness.

   The paper (BX 2014) is a position paper with no tables or figures; its
   checkable claims are the section 4 Composers entry and the section 5.4
   wiki bx.  This harness therefore regenerates, in order:

   E1  the claimed-vs-verified property table for every catalogue entry;
   E2  the undoability counterexample trace;
   E3  the variant behaviour matrix;
   E4  the resourceful-vs-positional string lens ablation;
   E5  the wiki round-trip check;

   and then measures the performance series with Bechamel:

   P1  Composers restoration cost vs model size;
   P2  string lens get/put throughput vs document size (dict vs positional);
   P3  static ambiguity checking / lens construction cost;
   P4  registry search, citation and wiki render/parse cost vs store size;
   P5  (wall-clock, before the Bechamel table) server throughput — the
       seed sequential accept loop vs the pooled Bx_server.Service —
       and journal replay cost vs edit-log size. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Experiment artifacts (E1-E5) *)

let rule title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '-')

let e1 () =
  rule "E1: claimed properties vs machine verification (all entries)";
  List.iter
    (fun (title, rows) ->
      Fmt.pr "@.%s@.%a@." title Bx_check.Verify.pp_report rows;
      if not (Bx_check.Verify.all_upheld rows) then
        Fmt.pr "  *** SOME CLAIM REFUTED ***@.")
    (Bx_check.Examples_check.all_reports ~count:80 ())

let e2 () =
  rule "E2: the COMPOSERS undoability counterexample (paper, section 4)";
  let open Bx_catalogue.Composers in
  let trace = undoability_counterexample () in
  Fmt.pr "m0 = %a@." m_space.Bx.Model.pp trace.initial_m;
  Fmt.pr "after delete/restore of Britten in n, two bwd passes give:@.";
  Fmt.pr "m2 = %a@." m_space.Bx.Model.pp trace.m_after_second_bwd;
  Fmt.pr "dates lost: %b@." trace.dates_lost

let e3 () =
  rule "E3: variant behaviour matrix";
  let open Bx_catalogue.Composers in
  let open Bx_catalogue.Composers_variants in
  let m = [ composer ~name:"Britten" ~dates:"1913-1976" ~nationality:"British" ] in
  let n = [ ("Britten", "English") ] in
  let show name bx =
    Fmt.pr "%-22s bwd -> %a@." name m_space.Bx.Model.pp
      (bx.Bx.Symmetric.bwd m n)
  in
  show "base" bx;
  show "name-as-key" name_as_key;
  show "fresh-dates(0000)" (fresh_dates "0000-0000");
  let m2 =
    [
      composer ~name:"Bach" ~dates:"1685-1750" ~nationality:"German";
      composer ~name:"Britten" ~dates:"1913-1976" ~nationality:"English";
    ]
  in
  let n_consistent = [ ("Britten", "English"); ("Bach", "German") ] in
  let hippo bx =
    match
      (Bx.Symmetric.hippocratic_fwd_law n_space bx).Bx.Law.check
        (m2, n_consistent)
    with
    | Bx.Law.Holds -> "hippocratic"
    | Bx.Law.Violated _ -> "NOT hippocratic (reorders)"
  in
  Fmt.pr "%-22s %s@." "base fwd" (hippo bx);
  Fmt.pr "%-22s %s@." "insert-at-beginning" (hippo insert_at_beginning);
  Fmt.pr "%-22s %s@." "alphabetical-n" (hippo alphabetical_n)

let e4 () =
  rule "E4: resourceful vs positional alignment (POPL'08 string lens)";
  let open Bx_catalogue.Composers_string in
  let src = "Bach, 1685-1750, German\nCage, 1912-1992, American\n" in
  let view = "Cage, American\nBach, German\n" in
  Fmt.pr "dictionary put:@.%s" (lens.Bx_strlens.Slens.put view src);
  Fmt.pr "positional put:@.%s" (positional_lens.Bx_strlens.Slens.put view src);
  Fmt.pr "(who wins: the dictionary lens keeps dates with their composers.)@."

let e5 () =
  rule "E5: wiki round trip (section 5.4)";
  let reg = Bx_catalogue.Catalogue.seed () in
  let pages = Bx_repo.Registry.export reg in
  let reg' = Result.get_ok (Bx_repo.Registry.import pages) in
  Fmt.pr "exported %d pages; re-import preserves %d/%d entries: %b@."
    (List.length pages)
    (Bx_repo.Registry.size reg')
    (Bx_repo.Registry.size reg)
    (Bx_repo.Registry.ids reg = Bx_repo.Registry.ids reg')

(* ------------------------------------------------------------------ *)
(* Synthetic data, deterministic by size *)

(* A letters-only token for index i (the string lens's types demand
   letters). *)
let token i =
  let letters = "abcdefghij" in
  let rec go i acc =
    let acc = String.make 1 letters.[i mod 10] ^ acc in
    if i < 10 then acc else go (i / 10) acc
  in
  "c" ^ go i ""

let composers_m_of_size k =
  List.init k (fun i ->
      Bx_catalogue.Composers.composer ~name:(token i) ~dates:"1900-1999"
        ~nationality:(token (i mod 7)))

let composers_n_of_size k =
  (* Half overlapping with the m above, half foreign: both restoration
     branches stay busy. *)
  List.init k (fun i ->
      if i mod 2 = 0 then (token i, token (i mod 7)) else (token (i + 10000), "x"))

(* The CSV documents come from the catalogue so benchmarks and tests
   measure the same corpus. *)
let csv_source_of_size = Bx_catalogue.Composers_string.synthetic_source
let csv_view_of_size = Bx_catalogue.Composers_string.synthetic_view

let big_registry k =
  let reg = Bx_repo.Registry.create () in
  let base = Bx_catalogue.Composers.template in
  for i = 0 to k - 1 do
    let t = { base with Bx_repo.Template.title = Printf.sprintf "ENTRY%04d" i } in
    match
      Bx_repo.Registry.submit reg ~as_:(Bx_repo.Curation.account "seeder") t
    with
    | Ok _ -> ()
    | Error e -> failwith (Bx_repo.Registry.error_message e)
  done;
  reg

(* ------------------------------------------------------------------ *)
(* Bechamel tests *)

let composers_tests =
  let sizes = [ 10; 100; 1000 ] in
  List.concat_map
    (fun k ->
      let m = composers_m_of_size k in
      let n = composers_n_of_size k in
      [
        Test.make
          ~name:(Printf.sprintf "P1 composers fwd n=%d" k)
          (Staged.stage (fun () -> Bx_catalogue.Composers.bx.Bx.Symmetric.fwd m n));
        Test.make
          ~name:(Printf.sprintf "P1 composers bwd n=%d" k)
          (Staged.stage (fun () -> Bx_catalogue.Composers.bx.Bx.Symmetric.bwd m n));
      ])
    sizes

let strlens_tests =
  let open Bx_catalogue.Composers_string in
  List.concat_map
    (fun k ->
      let src = csv_source_of_size k in
      let view = csv_view_of_size k in
      [
        Test.make
          ~name:(Printf.sprintf "P2 slens get lines=%d" k)
          (Staged.stage (fun () -> lens.Bx_strlens.Slens.get src));
        Test.make
          ~name:(Printf.sprintf "P2 slens put dict lines=%d" k)
          (Staged.stage (fun () -> lens.Bx_strlens.Slens.put view src));
        Test.make
          ~name:(Printf.sprintf "P2 slens put positional lines=%d" k)
          (Staged.stage (fun () ->
               positional_lens.Bx_strlens.Slens.put view src));
      ])
    [ 10; 100 ]

let regex_tests =
  let letters = Bx_regex.Regex.plus (Bx_regex.Regex.cset (Bx_regex.Cset.range 'a' 'z')) in
  let digits = Bx_regex.Regex.plus (Bx_regex.Regex.cset (Bx_regex.Cset.range '0' '9')) in
  [
    Test.make ~name:"P3 ambig-check letters.digits"
      (Staged.stage (fun () -> Bx_regex.Ambig.unambig_concat letters digits));
    Test.make ~name:"P3 ambig-check letters.letters (ambiguous)"
      (Staged.stage (fun () -> Bx_regex.Ambig.unambig_concat letters letters));
    Test.make ~name:"P3 dfa-build composers line"
      (Staged.stage (fun () ->
           Bx_regex.Dfa.build
             Bx_catalogue.Composers_string.lens.Bx_strlens.Slens.stype));
    Test.make ~name:"P3 lens construction (all static checks)"
      (Staged.stage (fun () ->
           (* Rebuild the full composers string lens, typing checks and
              all. *)
           let open Bx_regex in
           let letter = Cset.union (Cset.range 'A' 'Z') (Cset.range 'a' 'z') in
           let word = Regex.plus (Regex.cset letter) in
           let dates =
             Regex.(concat_list
                      [ repeat 4 (cset (Cset.range '0' '9')); chr '-';
                        repeat 4 (cset (Cset.range '0' '9')) ])
           in
           let open Bx_strlens in
           Slens.star_key ~key:Fun.id
             (Slens.concat_list
                [
                  Slens.copy word;
                  Slens.copy (Regex.str ", ");
                  Slens.del (Regex.seq dates (Regex.str ", "))
                    ~default:"0000-0000, ";
                  Slens.copy word;
                  Slens.copy (Regex.chr '\n');
                ])));
  ]

let alignment_tests =
  (* Ablation: the three chunk-alignment strategies for the star. *)
  let open Bx_catalogue.Composers_string in
  List.concat_map
    (fun k ->
      let src = csv_source_of_size k in
      let view = csv_view_of_size k in
      [
        Test.make
          ~name:(Printf.sprintf "P5 align positional lines=%d" k)
          (Staged.stage (fun () ->
               positional_lens.Bx_strlens.Slens.put view src));
        Test.make
          ~name:(Printf.sprintf "P5 align greedy-key lines=%d" k)
          (Staged.stage (fun () -> lens.Bx_strlens.Slens.put view src));
        Test.make
          ~name:(Printf.sprintf "P5 align lcs-diff lines=%d" k)
          (Staged.stage (fun () -> diff_lens.Bx_strlens.Slens.put view src));
      ])
    [ 10; 100 ]

let engine_tests =
  (* The compiled-engine series, per-run view.  The wall-clock MB/s and
     speedup headline for the same workloads is printed by p6_engine. *)
  let open Bx_regex in
  let stype = Bx_catalogue.Composers_string.lens.Bx_strlens.Slens.stype in
  let doc = csv_source_of_size 200 in
  let d = Dfa.compile stype in
  [
    Test.make ~name:"P6 match compiled doc=200-lines"
      (Staged.stage (fun () -> Dfa.accepts d doc));
    Test.make ~name:"P6 match interpreted doc=200-lines"
      (Staged.stage (fun () -> Regex.matches_deriv stype doc));
    Test.make ~name:"P6 dfa compile (cached) composers type"
      (Staged.stage (fun () -> Dfa.compile stype));
    Test.make ~name:"P6 dfa minimise composers type"
      (Staged.stage (fun () -> Dfa.minimise d));
  ]

let scenario_tests =
  List.concat_map
    (fun k ->
      List.map
        (fun scenario ->
          Test.make
            ~name:
              (Printf.sprintf "P7 f2p %s"
                 scenario.Bx_catalogue.F2p_scenarios.scenario_name)
            (Staged.stage (fun () ->
                 Bx_catalogue.F2p_scenarios.run scenario)))
        (Bx_catalogue.F2p_scenarios.all k))
    [ 8; 32 ]

let registry_tests =
  List.concat_map
    (fun k ->
      let reg = big_registry k in
      let q = Bx_repo.Registry.query ~text:"undoability" () in
      [
        Test.make
          ~name:(Printf.sprintf "P4 registry search entries=%d" k)
          (Staged.stage (fun () -> Bx_repo.Registry.search reg q));
        Test.make
          ~name:(Printf.sprintf "P4 registry export entries=%d" k)
          (Staged.stage (fun () -> Bx_repo.Registry.export reg));
      ])
    [ 10; 50 ]
  @
  let entry = Bx_repo.Sync.normalise Bx_catalogue.Composers.template in
  let page = Bx_repo.Sync.wiki_text entry in
  [
    Test.make ~name:"P4 sync render (get)"
      (Staged.stage (fun () -> Bx_repo.Sync.wiki_text entry));
    Test.make ~name:"P4 sync parse (put)"
      (Staged.stage (fun () -> Bx_repo.Sync.of_wiki_text ~fallback:entry page));
  ]

let store_tests =
  let reg = Bx_catalogue.Catalogue.seed () in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "bx-bench-store" in
  [
    Test.make ~name:"P8 store save (full catalogue)"
      (Staged.stage (fun () ->
           match Bx_repo.Store.save ~dir reg with
           | Ok n -> n
           | Error e -> failwith e));
    Test.make ~name:"P8 store load (full catalogue)"
      (Staged.stage (fun () ->
           (* save once outside would be racy with the alternating runs;
              saving is idempotent, so just load what the save bench
              leaves behind (it runs in the same process). *)
           match Bx_repo.Store.load ~dir () with
           | Ok reg -> Bx_repo.Registry.size reg
           | Error e -> failwith e));
  ]

let generic_scenario_tests =
  (* The generic runner driving COMPOSERS: churn on the entry list. *)
  let m0 =
    List.init 16 (fun i ->
        Bx_catalogue.Composers.composer
          ~name:(token i) ~dates:"1900-1999" ~nationality:(token (i mod 5)))
  in
  let steps =
    List.concat
      (List.init 8 (fun i ->
           [
             Bx.Scenario.Edit_right
               ( Printf.sprintf "drop-%d" i,
                 fun n -> List.filteri (fun j _ -> j <> 0) n );
             Bx.Scenario.Edit_left
               ( Printf.sprintf "add-%d" i,
                 fun m ->
                   Bx_catalogue.Composers.canon_m
                     (Bx_catalogue.Composers.composer
                        ~name:(token (100 + i)) ~dates:"1800-1899"
                        ~nationality:"x"
                     :: m) );
           ]))
  in
  let scenario =
    Bx.Scenario.make ~name:"composers-churn" ~initial_left:m0 ~initial_right:[]
      steps
  in
  [
    Test.make ~name:"P7 composers-churn scenario (generic runner)"
      (Staged.stage (fun () -> Bx.Scenario.run Bx_catalogue.Composers.bx scenario));
  ]

let tree_edit_tests =
  let rec synthetic depth width i =
    if depth = 0 then Bx_models.Tree.leaf (token i)
    else
      Bx_models.Tree.node (token i)
        (List.init width (fun j -> synthetic (depth - 1) width ((i * width) + j)))
  in
  let t1 = synthetic 3 4 1 in
  (* A perturbed copy: relabel one leaf, drop one subtree. *)
  let t2 =
    match
      Bx_models.Tree_edit.apply
        Bx_models.Tree_edit.
          [ Relabel ([ 0; 0; 0 ], "changed"); Delete_child ([ 2 ], 1) ]
        t1
    with
    | Some t -> t
    | None -> failwith "perturbation failed"
  in
  let edit = Bx_models.Tree_edit.diff ~equal:String.equal t1 t2 in
  [
    Test.make ~name:"P9 tree diff (85-node trees)"
      (Staged.stage (fun () ->
           Bx_models.Tree_edit.diff ~equal:String.equal t1 t2));
    Test.make ~name:"P9 tree edit apply"
      (Staged.stage (fun () -> Bx_models.Tree_edit.apply edit t1));
  ]

let web_tests =
  let reg = Bx_catalogue.Catalogue.seed () in
  let entry = Bx_repo.Sync.normalise Bx_catalogue.Composers.template in
  let json = Bx_repo.Json_codec.to_string entry in
  [
    Test.make ~name:"P10 webui GET entry page"
      (Staged.stage (fun () ->
           Bx_repo.Webui.handle reg ~meth:"GET" ~path:"/examples:composers"
             ~body:""));
    Test.make ~name:"P10 webui GET index"
      (Staged.stage (fun () ->
           Bx_repo.Webui.handle reg ~meth:"GET" ~path:"/" ~body:""));
    Test.make ~name:"P10 json encode"
      (Staged.stage (fun () -> Bx_repo.Json_codec.to_string entry));
    Test.make ~name:"P10 json decode"
      (Staged.stage (fun () -> Bx_repo.Json_codec.of_string json));
  ]

(* ------------------------------------------------------------------ *)
(* P5: the server series.  Wall-clock, socket-bound measurements — the
   seed's sequential accept loop against the pooled Bx_server.Service
   under 8 concurrent clients, then journal replay cost against the
   edit-log size.  Reported directly rather than through Bechamel:
   the interesting number is aggregate throughput, not per-call OLS. *)

(* The archival manuscript (section 5.2) is by far the costliest render
   in the system (~2 ms: every entry, full template, cross-references) —
   exactly where the pooled service's generation-keyed response cache
   pays off, since the page only changes when an edit is accepted. *)
let bench_path = "/manuscript"

(* Minimal HTTP client plumbing over in_channels. *)
let drain_response ic =
  let _status_line = input_line ic in
  let content_length = ref 0 in
  (try
     let rec headers () =
       let line = String.trim (input_line ic) in
       if line <> "" then begin
         (match String.index_opt line ':' with
         | Some i
           when String.lowercase_ascii (String.sub line 0 i)
                = "content-length" ->
             content_length :=
               int_of_string
                 (String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> ());
         headers ()
       end
     in
     headers ()
   with End_of_file -> ());
  ignore (really_input_string ic !content_length)

let connect port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  sock

(* A faithful replica of the seed bxwiki loop: one thread, one
   connection per request, a fresh render every time, Connection:
   close. *)
let start_sequential_loop registry =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let thread =
    Thread.create
      (fun () ->
        let continue = ref true in
        while !continue do
          match Unix.accept sock with
          | exception Unix.Unix_error (_, _, _) -> continue := false
          | client, _ ->
              (try
                 match
                   Bx_server.Httpd.read_request
                     (Bx_server.Httpd.reader_of_fd client)
                 with
                 | Ok req ->
                     Bx_server.Httpd.write_response client ~keep_alive:false
                       (Bx_repo.Webui.handle registry ~meth:req.Bx_server.Httpd.meth
                          ~path:req.Bx_server.Httpd.path
                          ~body:req.Bx_server.Httpd.body)
                 | Error _ -> ()
               with Unix.Unix_error (_, _, _) -> ());
              (try Unix.close client with Unix.Unix_error (_, _, _) -> ())
        done)
      ()
  in
  (port, sock, thread)

let run_clients n f =
  let started = Unix.gettimeofday () in
  let clients = List.init n (fun i -> Thread.create f i) in
  List.iter Thread.join clients;
  Unix.gettimeofday () -. started

let p5_server_throughput () =
  rule "P5: server throughput — seed sequential loop vs pooled service";
  let clients = 8 and requests = 40 in
  (* Baseline: the seed loop. *)
  let seq_rate =
    let registry = Bx_catalogue.Catalogue.seed () in
    let port, sock, thread = start_sequential_loop registry in
    let per_client _ =
      for _ = 1 to requests do
        let c = connect port in
        let oc = Unix.out_channel_of_descr c in
        Printf.fprintf oc "GET %s HTTP/1.1\r\nConnection: close\r\n\r\n"
          bench_path;
        flush oc;
        drain_response (Unix.in_channel_of_descr c);
        try Unix.close c with Unix.Unix_error (_, _, _) -> ()
      done
    in
    let elapsed = run_clients clients per_client in
    (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
    Thread.join thread;
    float_of_int (clients * requests) /. elapsed
  in
  (* The pooled service: worker domains, keep-alive, response cache. *)
  let pool_rate =
    let service =
      match
        Bx_server.Service.create ~seed:Bx_catalogue.Catalogue.seed ()
      with
      | Ok t -> t
      | Error e -> failwith e
    in
    let server =
      Thread.create
        (fun () ->
          match
            Bx_server.Service.serve service ~port:0 ~workers:4 ~quiet:true ()
          with
          | Ok () -> ()
          | Error e -> Fmt.epr "pooled service: %s@." e)
        ()
    in
    let rec wait_port n =
      match Bx_server.Service.port service with
      | Some p -> p
      | None ->
          if n > 500 then failwith "pooled service never bound"
          else begin
            Thread.delay 0.01;
            wait_port (n + 1)
          end
    in
    let port = wait_port 0 in
    let per_client _ =
      let c = connect port in
      let oc = Unix.out_channel_of_descr c in
      let ic = Unix.in_channel_of_descr c in
      for _ = 1 to requests do
        Printf.fprintf oc "GET %s HTTP/1.1\r\n\r\n" bench_path;
        flush oc;
        drain_response ic
      done;
      try Unix.close c with Unix.Unix_error (_, _, _) -> ()
    in
    let elapsed = run_clients clients per_client in
    Bx_server.Service.shutdown service;
    Thread.join server;
    float_of_int (clients * requests) /. elapsed
  in
  Fmt.pr "sequential loop   %8.0f req/s  (%d clients x %d GET %s)@." seq_rate
    clients requests bench_path;
  Fmt.pr "pooled service    %8.0f req/s  (4 workers, keep-alive, cache)@."
    pool_rate;
  Fmt.pr "speedup           %8.1fx (acceptance target: >= 4x)%s@."
    (pool_rate /. seq_rate)
    (if pool_rate < 4.0 *. seq_rate then "  *** BELOW TARGET ***" else "")

let p5_journal_replay () =
  rule "P5: journal replay cost vs edit-log size";
  List.iter
    (fun edits ->
      let dir = Filename.temp_file "bx-bench-journal" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o755;
      let config =
        {
          Bx_server.Service.default_config with
          journal_dir = Some dir;
          compact_every = 0;
        }
      in
      let create () =
        match
          Bx_server.Service.create ~config ~seed:Bx_catalogue.Catalogue.seed ()
        with
        | Ok t -> t
        | Error e -> failwith e
      in
      let t = create () in
      let page =
        (Bx_server.Service.handle t ~meth:"GET" ~path:"/examples:celsius.wiki"
           ~body:"")
          .Bx_repo.Webui.body
      in
      for _ = 1 to edits do
        ignore
          (Bx_server.Service.handle t ~meth:"POST" ~path:"/examples:celsius"
             ~body:page)
      done;
      Bx_server.Service.close t;
      let started = Unix.gettimeofday () in
      let t' = create () in
      let elapsed = Unix.gettimeofday () -. started in
      let applied, failed = Bx_server.Service.replay_stats t' in
      Bx_server.Service.close t';
      Fmt.pr
        "replay %4d edits  %7.1f ms  (%5.0f edits/s, %d applied, %d failed)@."
        edits (elapsed *. 1000.)
        (float_of_int applied /. elapsed)
        applied failed)
    [ 8; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* P8: the load-shedding curve.  Bursts of concurrent connections are
   offered to a service with a deliberately small queue and a
   failpoint-injected 5 ms per-request service time; each burst is split
   into 200s (served) and 503s (shed).  The acceptance shape: below
   queue capacity nothing is shed, while at 2x capacity and beyond the
   excess is answered with a fast 503 + Retry-After (and /readyz flips)
   instead of piling onto latency.  --json-shed dumps the curve
   (committed as BENCH_shed.json). *)

type shed_row = {
  sr_multiple : float;  (* offered / queue_capacity *)
  sr_offered : int;
  sr_served : int;
  sr_shed : int;
  sr_failed : int;
  sr_elapsed : float;
  sr_flipped : bool;  (* /readyz went unready during the burst *)
}

let p8_load_shedding () =
  rule "P8: load shedding — offered burst vs served/shed split";
  let queue_capacity = 16 and workers = 2 and delay_ms = 5.0 in
  Bx_fault.Fault.set "httpd.read" (Bx_fault.Fault.Delay (delay_ms /. 1000.));
  let config = { Bx_server.Service.default_config with queue_capacity } in
  let service =
    match
      Bx_server.Service.create ~config ~seed:Bx_catalogue.Catalogue.seed ()
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let server =
    Thread.create
      (fun () ->
        match
          Bx_server.Service.serve service ~port:0 ~workers ~quiet:true ()
        with
        | Ok () -> ()
        | Error e -> Fmt.epr "shed service: %s@." e)
      ()
  in
  let rec wait_port n =
    match Bx_server.Service.port service with
    | Some p -> p
    | None ->
        if n > 500 then failwith "shed service never bound"
        else begin
          Thread.delay 0.01;
          wait_port (n + 1)
        end
  in
  let port = wait_port 0 in
  let burst offered =
    let served = Atomic.make 0
    and shed = Atomic.make 0
    and failed = Atomic.make 0
    and flipped = Atomic.make false
    and stop = Atomic.make false in
    let monitor =
      Thread.create
        (fun () ->
          while not (Atomic.get stop) do
            if not (Bx_server.Service.ready service) then
              Atomic.set flipped true;
            Thread.delay 0.001
          done)
        ()
    in
    let per_client _ =
      (* Count each connection exactly once: a reset while draining an
         already-classified response is not a failure. *)
      let classified = ref false in
      try
        let c = connect port in
        let oc = Unix.out_channel_of_descr c in
        let ic = Unix.in_channel_of_descr c in
        Printf.fprintf oc "GET %s HTTP/1.1\r\nConnection: close\r\n\r\n"
          bench_path;
        flush oc;
        let status_line = input_line ic in
        let has needle =
          let hl = String.length status_line
          and nl = String.length needle in
          let rec scan i =
            i + nl <= hl
            && (String.sub status_line i nl = needle || scan (i + 1))
          in
          scan 0
        in
        classified := true;
        if has " 200" then Atomic.incr served
        else if has " 503" then Atomic.incr shed
        else Atomic.incr failed;
        (try
           while true do
             ignore (input_line ic)
           done
         with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
        try Unix.close c with Unix.Unix_error (_, _, _) -> ()
      with _ -> if not !classified then Atomic.incr failed
    in
    let elapsed = run_clients offered per_client in
    Atomic.set stop true;
    Thread.join monitor;
    (* Let the queue drain so bursts are independent measurements. *)
    let rec settle n =
      if n < 1000 && not (Bx_server.Service.ready service) then begin
        Thread.delay 0.005;
        settle (n + 1)
      end
    in
    settle 0;
    {
      sr_multiple = float_of_int offered /. float_of_int queue_capacity;
      sr_offered = offered;
      sr_served = Atomic.get served;
      sr_shed = Atomic.get shed;
      sr_failed = Atomic.get failed;
      sr_elapsed = elapsed;
      sr_flipped = Atomic.get flipped;
    }
  in
  let rows =
    List.map
      (fun m -> burst (int_of_float (m *. float_of_int queue_capacity)))
      [ 0.5; 1.0; 2.0; 4.0 ]
  in
  Bx_fault.Fault.clear ();
  Bx_server.Service.shutdown service;
  Thread.join server;
  Fmt.pr
    "queue capacity %d, %d workers, %.0f ms injected service time@.@."
    queue_capacity workers delay_ms;
  Fmt.pr "  load  offered   served     shed   failed  elapsed  readyz@.";
  List.iter
    (fun r ->
      Fmt.pr "  %3.1fx  %7d  %7d  %7d  %7d  %6.2fs  %s@." r.sr_multiple
        r.sr_offered r.sr_served r.sr_shed r.sr_failed r.sr_elapsed
        (if r.sr_flipped then "flipped" else "ready"))
    rows;
  let over =
    List.filter (fun r -> r.sr_multiple >= 2.0 && r.sr_shed = 0) rows
  in
  Fmt.pr "overload sheds    %s@."
    (if over = [] then "yes (every burst >= 2x capacity shed)"
     else "*** NO SHEDDING AT >= 2x CAPACITY ***");
  ((queue_capacity, workers, delay_ms), rows)

(* Bench honesty: every BENCH_*.json says what the host offered next to
   what the run actually used — a flat "scaling" number measured on a
   single-core container must be readable as such. *)
let host_meta ~domains_used =
  Printf.sprintf "  \"cores_available\": %d,\n  \"domains_used\": %d,\n"
    (Domain.recommended_domain_count ())
    domains_used

let write_shed_json path ~meta:(queue_capacity, workers, delay_ms) rows =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"P8 load shedding\",\n";
  out "%s" (host_meta ~domains_used:workers);
  out "  \"queue_capacity\": %d,\n" queue_capacity;
  out "  \"workers\": %d,\n" workers;
  out "  \"service_delay_ms\": %g,\n" delay_ms;
  out "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"load_multiple\": %g, \"offered\": %d, \"served\": %d, \
         \"shed\": %d, \"failed\": %d, \"elapsed_s\": %.4f, \
         \"readyz_flipped\": %b}%s\n"
        r.sr_multiple r.sr_offered r.sr_served r.sr_shed r.sr_failed
        r.sr_elapsed r.sr_flipped
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* P9: replication — how fast a cold replica catches up on a journal
   backlog, and how far behind a hot standby falls while the primary
   takes a write storm.  The follower is the real Service.follow loop
   over real sockets; lag is sampled from the replica's own
   replication_lag/behind gauges while the storm runs.  --json-repl
   dumps the numbers (committed as BENCH_repl.json). *)

type repl_summary = {
  rp_preload : int;  (* journal records the cold replica had to fetch *)
  rp_catchup_s : float;
  rp_catchup_rate : float;  (* records/s while catching up *)
  rp_storm : int;  (* edits written while the follower was live *)
  rp_storm_s : float;  (* wall time of the storm itself *)
  rp_drain_s : float;  (* storm end -> replica reports behind = 0 *)
  rp_apply_rate : float;  (* records/s applied over storm + drain *)
  rp_max_behind : int;  (* worst sampled record lag *)
  rp_max_lag_s : float;  (* worst sampled lag seconds *)
  rp_samples : int;
}

let p9_replication () =
  rule "P9: replication — catch-up and steady-state lag under a write storm";
  let temp_dir () =
    let d = Filename.temp_file "bx-bench-repl" "" in
    Sys.remove d;
    Unix.mkdir d 0o755;
    d
  in
  let preload = 200 and storm = 200 in
  let pdir = temp_dir () and rdir = temp_dir () in
  let config dir replica =
    {
      Bx_server.Service.default_config with
      journal_dir = Some dir;
      compact_every = 0;
      stream_wait = 0.2;
      replica;
    }
  in
  let create dir replica =
    match
      Bx_server.Service.create ~config:(config dir replica)
        ~seed:Bx_catalogue.Catalogue.seed ()
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let primary = create pdir false in
  let server =
    Thread.create
      (fun () ->
        match Bx_server.Service.serve primary ~port:0 ~workers:2 ~quiet:true () with
        | Ok () -> ()
        | Error e -> Fmt.epr "repl primary: %s@." e)
      ()
  in
  let rec wait_port n =
    match Bx_server.Service.port primary with
    | Some p -> p
    | None ->
        if n > 500 then failwith "repl primary never bound"
        else begin
          Thread.delay 0.01;
          wait_port (n + 1)
        end
  in
  let port = wait_port 0 in
  let page =
    (Bx_server.Service.handle primary ~meth:"GET"
       ~path:"/examples:celsius.wiki" ~body:"")
      .Bx_repo.Webui.body
  in
  let edit () =
    ignore
      (Bx_server.Service.handle primary ~meth:"POST" ~path:"/examples:celsius"
         ~body:page)
  in
  (* A cold replica against an established backlog. *)
  for _ = 1 to preload do
    edit ()
  done;
  let replica = create rdir true in
  let sink = Bx_server.Service.replication_sink replica in
  let catchup_started = Unix.gettimeofday () in
  let rec catch_up n =
    if n > 10_000 then failwith "replica never caught up"
    else
      match Bx_server.Replication.poll_once ~host:"" ~port ~wait:0.2 sink with
      | Ok 0 -> ()
      | _ -> catch_up (n + 1)
  in
  catch_up 0;
  let catchup_s = Unix.gettimeofday () -. catchup_started in
  (* The hot standby under a write storm: the real follower loop applies
     while we write flat out, and a sampler watches the lag gauges. *)
  let follower =
    Thread.create
      (fun () ->
        Bx_server.Service.follow replica ~host:"" ~port ~wait:0.2
          ~min_sleep:0.005 ~max_sleep:0.05 ())
      ()
  in
  let max_behind = Atomic.make 0
  and max_lag_us = Atomic.make 0
  and samples = Atomic.make 0
  and stop_sampler = Atomic.make false in
  let bump cell v =
    let rec go () =
      let cur = Atomic.get cell in
      if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
    in
    go ()
  in
  let sampler =
    Thread.create
      (fun () ->
        while not (Atomic.get stop_sampler) do
          bump max_behind (Bx_server.Service.replication_behind replica);
          bump max_lag_us
            (int_of_float (Bx_server.Service.replication_lag replica *. 1e6));
          Atomic.incr samples;
          Thread.delay 0.002
        done)
      ()
  in
  let storm_started = Unix.gettimeofday () in
  for _ = 1 to storm do
    edit ()
  done;
  let storm_s = Unix.gettimeofday () -. storm_started in
  (* Drain: the follower reports behind = 0 once a post-storm poll has
     applied everything. *)
  let rec drain n =
    if
      Bx_server.Service.replication_behind replica > 0
      || not (Bx_server.Service.replication_synced replica)
    then
      if n > 12_000 then failwith "storm never drained"
      else begin
        Thread.delay 0.005;
        drain (n + 1)
      end
  in
  drain 0;
  let drain_s = Unix.gettimeofday () -. storm_started -. storm_s in
  Atomic.set stop_sampler true;
  Thread.join sampler;
  Bx_server.Service.shutdown replica;
  Thread.join follower;
  Bx_server.Service.close replica;
  Bx_server.Service.shutdown primary;
  Thread.join server;
  let summary =
    {
      rp_preload = preload;
      rp_catchup_s = catchup_s;
      rp_catchup_rate = float_of_int preload /. catchup_s;
      rp_storm = storm;
      rp_storm_s = storm_s;
      rp_drain_s = drain_s;
      rp_apply_rate = float_of_int storm /. (storm_s +. drain_s);
      rp_max_behind = Atomic.get max_behind;
      rp_max_lag_s = float_of_int (Atomic.get max_lag_us) /. 1e6;
      rp_samples = Atomic.get samples;
    }
  in
  Fmt.pr "cold catch-up     %4d records in %6.2f s  (%6.0f records/s)@."
    summary.rp_preload summary.rp_catchup_s summary.rp_catchup_rate;
  Fmt.pr
    "write storm       %4d records in %6.2f s, drained %.2f s later  \
     (%6.0f records/s applied)@."
    summary.rp_storm summary.rp_storm_s summary.rp_drain_s
    summary.rp_apply_rate;
  Fmt.pr "worst sampled lag %4d records behind, %.3f s  (%d samples)@."
    summary.rp_max_behind summary.rp_max_lag_s summary.rp_samples;
  Fmt.pr "steady state      behind 0, lag 0 after drain@.";
  summary

let write_repl_json path s =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"P9 replication\",\n";
  (* The primary serves the stream with 2 worker domains (see
     p9_replication); the follower applies on its own. *)
  out "%s" (host_meta ~domains_used:2);
  out "  \"catchup\": {\"records\": %d, \"seconds\": %.4f, \
       \"records_per_s\": %.1f},\n"
    s.rp_preload s.rp_catchup_s s.rp_catchup_rate;
  out "  \"storm\": {\"records\": %d, \"storm_s\": %.4f, \"drain_s\": %.4f, \
       \"applied_records_per_s\": %.1f},\n"
    s.rp_storm s.rp_storm_s s.rp_drain_s s.rp_apply_rate;
  out "  \"lag\": {\"max_behind_records\": %d, \"max_lag_s\": %.4f, \
       \"samples\": %d}\n"
    s.rp_max_behind s.rp_max_lag_s s.rp_samples;
  out "}\n";
  close_out oc

(* The zero-cost-when-disabled contract, enforced: with no rules
   configured a Fault.point is one atomic load, and 50 M of them must
   average under 50 ns each (real cost is well under 5; the budget only
   needs to catch an accidental table lookup or allocation on the fast
   path). *)
let fault_guard () =
  rule "fault guard: disabled failpoints must stay free";
  if Bx_fault.Fault.enabled () then begin
    Fmt.epr "fault guard FAILED: failpoints are armed in a bench run@.";
    exit 1
  end;
  let n = 50_000_000 in
  let started = Unix.gettimeofday () in
  for _ = 1 to n do
    Bx_fault.Fault.point "bench.fault_guard"
  done;
  let elapsed = Unix.gettimeofday () -. started in
  let ns = elapsed /. float_of_int n *. 1e9 in
  Fmt.pr "%d disabled Fault.point calls  %5.2f ns/call  (budget: 50 ns)@." n
    ns;
  if ns > 50.0 then begin
    Fmt.epr "fault guard FAILED: disabled failpoint costs %.2f ns/call@." ns;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* P6: the compiled regex engine.  Wall-clock throughput of the dense
   transition table against the derivative interpreter on the Composers
   source type, and the cost of constructing the full Composers string
   lens (every ambiguity analysis and splitter) with a cold versus a
   warm DFA cache.  Reported directly — the interesting numbers are
   MB/s and the speedup ratios — and recorded in the --json dump. *)

type p6_summary = {
  doc_bytes : int;
  compiled_ns : float;
  interpreted_ns : float;
  compiled_mb_s : float;
  interpreted_mb_s : float;
  match_speedup : float;
  construct_cold_ms : float;
  construct_warm_ms : float;
  construct_speedup : float;
  warm_rebuild_dfa_builds : int;
}

let time_per_run f =
  (* One warm-up call, a single timed call to calibrate, then enough
     repetitions for ~0.2 s of work. *)
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  let once = Unix.gettimeofday () -. t0 in
  let reps = max 5 (int_of_float (0.2 /. Float.max 1e-9 once)) in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

let p6_engine () =
  rule "P6: compiled vs interpreted matching (Composers source type)";
  let open Bx_regex in
  let stype = Bx_catalogue.Composers_string.lens.Bx_strlens.Slens.stype in
  let doc = csv_source_of_size 200 in
  let doc_bytes = String.length doc in
  let d = Dfa.compile stype in
  assert (Dfa.accepts d doc);
  assert (Regex.matches_deriv stype doc);
  let compiled = time_per_run (fun () -> Dfa.accepts d doc) in
  let interpreted = time_per_run (fun () -> Regex.matches_deriv stype doc) in
  let mb_s t = float_of_int doc_bytes /. t /. 1e6 in
  let match_speedup = interpreted /. compiled in
  Fmt.pr "document          %8d bytes (200 source lines)@." doc_bytes;
  Fmt.pr "compiled match    %10.1f us  %8.1f MB/s  (dense table)@."
    (compiled *. 1e6) (mb_s compiled);
  Fmt.pr "interpreted match %10.1f us  %8.1f MB/s  (memoised derivatives)@."
    (interpreted *. 1e6) (mb_s interpreted);
  Fmt.pr "speedup           %8.1fx (acceptance target: >= 10x)%s@."
    match_speedup
    (if match_speedup < 10.0 then "  *** BELOW TARGET ***" else "");
  (* Lens construction: cold (every DFA built) vs warm (every DFA served
     by the compile cache).  Best of five for the cold path — a single
     run is at the mercy of the allocator. *)
  let cold =
    let best = ref infinity in
    for _ = 1 to 5 do
      Dfa.cache_clear ();
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (Bx_catalogue.Composers_string.build_lens ()));
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let _, m0 = Dfa.cache_stats () in
  let warm =
    time_per_run (fun () -> Bx_catalogue.Composers_string.build_lens ())
  in
  let _, m1 = Dfa.cache_stats () in
  let construct_speedup = cold /. warm in
  Fmt.pr "lens construction %10.2f ms cold  %8.2f ms warm  (%.1fx; %d DFA \
          builds during warm reruns)@."
    (cold *. 1e3) (warm *. 1e3) construct_speedup (m1 - m0);
  {
    doc_bytes;
    compiled_ns = compiled *. 1e9;
    interpreted_ns = interpreted *. 1e9;
    compiled_mb_s = mb_s compiled;
    interpreted_mb_s = mb_s interpreted;
    match_speedup;
    construct_cold_ms = cold *. 1e3;
    construct_warm_ms = warm *. 1e3;
    construct_speedup;
    warm_rebuild_dfa_builds = m1 - m0;
  }

(* ------------------------------------------------------------------ *)
(* P7: the zero-copy slice engine against the copying reference engine,
   end to end on the Composers lens.  Wall-clock per-run times for get
   and put at several document sizes, plus the batched API's scaling
   across domains.  Recorded in the --json-strlens dump
   (BENCH_strlens.json in the repo). *)

type p7_row = {
  p7_lines : int;
  p7_bytes : int;
  sliced_get_ns : float;
  ref_get_ns : float;
  get_speedup : float;
  sliced_get_mb_s : float;
  sliced_put_ns : float;
  ref_put_ns : float;
  put_speedup : float;
}

type p7_batch = {
  batch_docs : int;
  batch_doc_lines : int;
  batch_workers : int;
  batch_seq_ns : float;
  batch_par_ns : float;
  batch_scaling : float;
}

type p7_summary = { rows7 : p7_row list; batch7 : p7_batch }

let p7_strlens () =
  rule "P7: zero-copy slice engine vs copying engine (Composers end-to-end)";
  let open Bx_catalogue.Composers_string in
  let module S = Bx_strlens.Slens in
  let module R = Bx_strlens.Slens_ref in
  let rows7 =
    List.map
      (fun k ->
        let src = csv_source_of_size k in
        let view = csv_view_of_size k in
        let bytes = String.length src in
        (* The engines must agree before their times mean anything. *)
        assert (String.equal (lens.S.get src) (ref_lens.R.get src));
        assert (String.equal (lens.S.put view src) (ref_lens.R.put view src));
        let sliced_get = time_per_run (fun () -> lens.S.get src) in
        let ref_get = time_per_run (fun () -> ref_lens.R.get src) in
        let sliced_put = time_per_run (fun () -> lens.S.put view src) in
        let ref_put = time_per_run (fun () -> ref_lens.R.put view src) in
        let get_speedup = ref_get /. sliced_get in
        let put_speedup = ref_put /. sliced_put in
        Fmt.pr
          "lines=%5d  get %8.1f us sliced %8.1f us copying (%4.1fx, %6.1f \
           MB/s)@."
          k (sliced_get *. 1e6) (ref_get *. 1e6) get_speedup
          (float_of_int bytes /. sliced_get /. 1e6);
        Fmt.pr
          "             put %8.1f us sliced %8.1f us copying (%4.1fx)%s@."
          (sliced_put *. 1e6) (ref_put *. 1e6) put_speedup
          (if k >= 1000 && (get_speedup < 3.0 || put_speedup < 3.0) then
             "  *** BELOW 3x TARGET ***"
           else "");
        {
          p7_lines = k;
          p7_bytes = bytes;
          sliced_get_ns = sliced_get *. 1e9;
          ref_get_ns = ref_get *. 1e9;
          get_speedup;
          sliced_get_mb_s = float_of_int bytes /. sliced_get /. 1e6;
          sliced_put_ns = sliced_put *. 1e9;
          ref_put_ns = ref_put *. 1e9;
          put_speedup;
        })
      [ 100; 1000 ]
  in
  (* Size the fan-out to the machine: spawning domains a single-core
     container cannot run in parallel only adds stop-the-world cost. *)
  let batch_docs = 256 and batch_doc_lines = 200 in
  let batch_workers = max 1 (min 4 (Domain.recommended_domain_count ())) in
  let docs = List.init batch_docs (fun _ -> csv_source_of_size batch_doc_lines) in
  let seq = time_per_run (fun () -> S.get_all ~workers:1 lens docs) in
  let par = time_per_run (fun () -> S.get_all ~workers:batch_workers lens docs) in
  let batch_scaling = seq /. par in
  Fmt.pr
    "batch get_all %d docs x %d lines: %8.1f us sequential %8.1f us on %d \
     domain(s) (%.1fx; %d core(s) available)@."
    batch_docs batch_doc_lines (seq *. 1e6) (par *. 1e6) batch_workers
    batch_scaling
    (Domain.recommended_domain_count ());
  {
    rows7;
    batch7 =
      {
        batch_docs;
        batch_doc_lines;
        batch_workers;
        batch_seq_ns = seq *. 1e9;
        batch_par_ns = par *. 1e9;
        batch_scaling;
      };
  }

(* ------------------------------------------------------------------ *)
(* P11: the sharded registry at catalogue scale.  The claim under test
   (ISSUE 7): search, the paginated index and per-shard export stay flat
   as the catalogue grows 10x, because they are answered by incremental
   posting-list indexes and O(page) slicing rather than whole-catalogue
   scans — and a single accepted edit persists O(entry) bytes to its
   shard's journal segment, not a whole-catalogue rewrite.  Shard count
   scales with the catalogue (~2k entries/shard) as TUTORIAL.md advises,
   so the per-shard streaming unit is constant-size.  The free-text scan
   is measured alongside as the honest contrast: it is the one query
   shape that still grows linearly.  Latencies are reported as p50 over
   repeated calls — the acceptance criterion — so one call that absorbs
   a major-GC slice (whose cost tracks live-heap size, not the
   algorithm) does not misprice the typical request.  --json-shard
   dumps the rows (committed as BENCH_shard.json). *)

type p11_row = {
  p11_entries : int;
  p11_shards : int;
  p11_search_us : float;  (* indexed needle /search (unique author) *)
  p11_scan_us : float;  (* free-text scan — the linear contrast *)
  p11_index_us : float;  (* GET / mid-catalogue page, 100 entries *)
  p11_export_shard_us : float;  (* one shard's export (streaming unit) *)
  p11_digest_us : float;  (* GET /replication/digest — O(shards) claim *)
  p11_export_shard_pages : int;
  p11_post_bytes : int;  (* journal bytes one accepted edit persists *)
  p11_dump_bytes_approx : int;  (* what a whole-catalogue rewrite costs *)
}

(* Median time per call: one warm-up, then per-call samples for ~0.3 s
   (at least 9), reported as the p50. *)
let p50_per_run f =
  for _ = 1 to 3 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let samples = ref [] in
  let started = Unix.gettimeofday () in
  let n = ref 0 in
  while !n < 9 || (Unix.gettimeofday () -. started < 0.3 && !n < 2000) do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    samples := (Unix.gettimeofday () -. t0) :: !samples;
    incr n
  done;
  let sorted = List.sort compare !samples in
  List.nth sorted (List.length sorted / 2)

let rec dir_bytes d =
  Array.fold_left
    (fun acc name ->
      let p = Filename.concat d name in
      if Sys.is_directory p then acc + dir_bytes p
      else acc + (Unix.stat p).Unix.st_size)
    0 (Sys.readdir d)

(* A needle entry whose author appears nowhere else: the indexed search
   for it returns one identifier whatever the catalogue size, so its
   latency curve is the index's, not the result set's. *)
let p11_probe =
  {
    Bx_catalogue.Composers.template with
    Bx_repo.Template.title = "Flat Latency Probe";
    authors = [ Bx_repo.Contributor.make ~affiliation:"Bench" "Needle Probe" ];
  }

let p11_sharded ~sizes () =
  rule "P11: sharded registry — search/index/export latency vs catalogue size";
  let rows =
    List.map
      (fun entries ->
        let shards = max 1 (entries / 2000) in
        let dir = Filename.temp_file "bx-bench-shard" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let config =
          {
            Bx_server.Service.default_config with
            journal_dir = Some dir;
            shards;
            compact_every = 0;
          }
        in
        let seed () =
          let reg = Bx_load.Corpus.seed_registry ~shards ~entries ~seed:1 () in
          (match
             Bx_repo.Registry.submit reg
               ~as_:(Bx_repo.Curation.account "Needle Probe")
               p11_probe
           with
          | Ok _ -> ()
          | Error e -> failwith (Bx_repo.Registry.error_message e));
          reg
        in
        let service =
          match Bx_server.Service.create ~config ~seed () with
          | Ok t -> t
          | Error e -> failwith e
        in
        let probe_id =
          match Bx_repo.Identifier.of_title p11_probe.Bx_repo.Template.title with
          | Ok id -> id
          | Error e -> failwith e
        in
        let probe_path = "/" ^ Bx_repo.Identifier.wiki_path probe_id in
        let search_us, scan_us, index_us, export_shard_us, pages, dump_approx =
          Bx_server.Service.with_registry service (fun reg ->
              let get ~query path =
                let r =
                  Bx_repo.Webui.handle ~query reg ~meth:"GET" ~path ~body:""
                in
                if r.Bx_repo.Webui.status <> 200 then
                  failwith
                    (Printf.sprintf "P11 GET %s?%s -> %d" path query
                       r.Bx_repo.Webui.status)
              in
              let search_us =
                p50_per_run (fun () ->
                    get ~query:"author=Needle+Probe" "/search")
                *. 1e6
              in
              (* A page that exists in full at every measured size —
                 comparing a clamped partial page against a full one
                 would misread O(page) cost as growth. *)
              let index_us =
                p50_per_run (fun () -> get ~query:"page=5&per_page=100" "/")
                *. 1e6
              in
              let k = Bx_repo.Registry.shard_of_id reg probe_id in
              let export_shard_us =
                p50_per_run (fun () -> Bx_repo.Registry.export_shard reg k)
                *. 1e6
              in
              (* The scan goes last: its per-call allocation churn (it
                 rebuilds every entry's text) would otherwise distort
                 the flat measurements that follow it. *)
              let scan_us =
                p50_per_run (fun () -> get ~query:"q=undoability" "/search")
                *. 1e6
              in
              let shard_pages = Bx_repo.Registry.export_shard reg k in
              let shard_bytes =
                List.fold_left
                  (fun acc (p, body) ->
                    acc + String.length p + String.length body)
                  0 shard_pages
              in
              ( search_us,
                scan_us,
                index_us,
                export_shard_us,
                List.length shard_pages,
                shard_bytes * shards ))
        in
        (* The anti-entropy digest must cost O(shards), not O(entries):
           per-shard values are maintained incrementally on every write,
           so serving the vector renders [shards] lines. *)
        let digest_us =
          p50_per_run (fun () ->
              let r =
                Bx_server.Service.handle service ~meth:"GET"
                  ~path:"/replication/digest" ~body:""
              in
              if r.Bx_repo.Webui.status <> 200 then
                failwith
                  (Printf.sprintf "P11 GET /replication/digest -> %d"
                     r.Bx_repo.Webui.status))
          *. 1e6
        in
        (* One accepted edit: the bytes that land in the journal are the
           persistence cost of the write — per-entry, not per-catalogue. *)
        let wiki =
          (Bx_server.Service.handle service ~meth:"GET"
             ~path:(probe_path ^ ".wiki") ~body:"")
            .Bx_repo.Webui.body
        in
        let before = dir_bytes dir in
        let resp =
          Bx_server.Service.handle service ~meth:"POST" ~path:probe_path
            ~body:wiki
        in
        if resp.Bx_repo.Webui.status <> 200 then
          failwith
            (Printf.sprintf "P11 POST %s -> %d" probe_path
               resp.Bx_repo.Webui.status);
        let post_bytes = dir_bytes dir - before in
        Bx_server.Service.close service;
        let row =
          {
            p11_entries = entries;
            p11_shards = shards;
            p11_search_us = search_us;
            p11_scan_us = scan_us;
            p11_index_us = index_us;
            p11_export_shard_us = export_shard_us;
            p11_digest_us = digest_us;
            p11_export_shard_pages = pages;
            p11_post_bytes = post_bytes;
            p11_dump_bytes_approx = dump_approx;
          }
        in
        Fmt.pr
          "entries=%7d shards=%3d  search %8.1f us  index-page %8.1f us  \
           export-shard %8.1f us (%d pages)  digest %6.1f us  text-scan \
           %9.1f us@."
          entries shards search_us index_us export_shard_us pages digest_us
          scan_us;
        Fmt.pr
          "                          one edit persists %d bytes (full dump \
           ~%d bytes: %.0fx more)@."
          post_bytes dump_approx
          (float_of_int dump_approx /. float_of_int (max 1 post_bytes));
        row)
      sizes
  in
  (match rows with
  | first :: (_ :: _ as rest) ->
      let last = List.nth rest (List.length rest - 1) in
      let ratio f = f last /. Float.max 1e-9 (f first) in
      let flat name f =
        let r = ratio f in
        Fmt.pr "%-14s %6.1fx grown catalogue -> %4.2fx latency%s@." name
          (float_of_int last.p11_entries /. float_of_int first.p11_entries)
          r
          (if r > 2.0 then "  *** NOT FLAT (target <= 2x) ***" else "")
      in
      flat "search" (fun r -> r.p11_search_us);
      flat "index page" (fun r -> r.p11_index_us);
      flat "export shard" (fun r -> r.p11_export_shard_us);
      flat "digest" (fun r -> r.p11_digest_us)
  | _ -> ());
  rows

let write_shard_json path rows =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"P11 sharded registry\",\n";
  out "%s" (host_meta ~domains_used:1);
  out "  \"flat_latency_target\": 2.0,\n";
  (match rows with
  | first :: (_ :: _ as rest) ->
      let last = List.nth rest (List.length rest - 1) in
      let ratio f = f last /. Float.max 1e-9 (f first) in
      out "  \"growth\": %g,\n"
        (float_of_int last.p11_entries /. float_of_int first.p11_entries);
      out "  \"search_latency_ratio\": %.3f,\n"
        (ratio (fun r -> r.p11_search_us));
      out "  \"index_latency_ratio\": %.3f,\n"
        (ratio (fun r -> r.p11_index_us));
      out "  \"export_shard_latency_ratio\": %.3f,\n"
        (ratio (fun r -> r.p11_export_shard_us));
      out "  \"digest_latency_ratio\": %.3f,\n"
        (ratio (fun r -> r.p11_digest_us))
  | _ -> ());
  out "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"entries\": %d, \"shards\": %d, \"search_us\": %.1f, \
         \"text_scan_us\": %.1f, \"index_page_us\": %.1f, \
         \"export_shard_us\": %.1f, \"digest_us\": %.1f, \
         \"export_shard_pages\": %d, \"edit_journal_bytes\": %d, \
         \"full_dump_bytes_approx\": %d}%s\n"
        r.p11_entries r.p11_shards r.p11_search_us r.p11_scan_us
        r.p11_index_us r.p11_export_shard_us r.p11_digest_us
        r.p11_export_shard_pages r.p11_post_bytes r.p11_dump_bytes_approx
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Harness *)

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"bx" ~fmt:"%s %s" tests)
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

(* Every P-series row as (name, ns-per-run), sorted by name; the common
   substrate of the printed table and the --json dump. *)
let result_rows results =
  let table = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) table [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> (name, Some est)
      | _ -> (name, None))
    rows

let print_rows rows =
  Fmt.pr "@.%-50s %15s@." "benchmark" "time/run";
  Fmt.pr "%s@." (String.make 66 '-');
  List.iter
    (fun (name, est) ->
      match est with
      | Some est ->
          let value, unit =
            if est >= 1e6 then (est /. 1e6, "ms")
            else if est >= 1e3 then (est /. 1e3, "us")
            else (est, "ns")
          in
          Fmt.pr "%-50s %12.2f %s@." name value unit
      | None -> Fmt.pr "%-50s %15s@." name "n/a")
    rows

(* ------------------------------------------------------------------ *)
(* JSON dump (--json).  Hand-rolled — the repo deliberately carries no
   JSON dependency beyond its own wiki codec. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~p6 ~series =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"suite\": \"bx bench\",\n";
  (* 4 = the pooled-service worker count in p4_server_throughput. *)
  add "%s" (host_meta ~domains_used:4);
  add "  \"p6_compiled_engine\": {\n";
  add "    \"doc_bytes\": %d,\n" p6.doc_bytes;
  add "    \"compiled_ns_per_match\": %.1f,\n" p6.compiled_ns;
  add "    \"interpreted_ns_per_match\": %.1f,\n" p6.interpreted_ns;
  add "    \"compiled_mb_per_s\": %.2f,\n" p6.compiled_mb_s;
  add "    \"interpreted_mb_per_s\": %.2f,\n" p6.interpreted_mb_s;
  add "    \"match_speedup\": %.2f,\n" p6.match_speedup;
  add "    \"match_speedup_target\": 10.0,\n";
  add "    \"lens_construction_cold_ms\": %.3f,\n" p6.construct_cold_ms;
  add "    \"lens_construction_warm_ms\": %.3f,\n" p6.construct_warm_ms;
  add "    \"lens_construction_speedup\": %.2f,\n" p6.construct_speedup;
  add "    \"dfa_builds_during_warm_reruns\": %d\n" p6.warm_rebuild_dfa_builds;
  add "  },\n";
  add "  \"series\": [\n";
  let last = List.length series - 1 in
  List.iteri
    (fun i (name, est) ->
      add "    { \"name\": \"%s\", \"ns_per_run\": %s }%s\n" (json_escape name)
        (match est with
        | Some e -> Printf.sprintf "%.2f" e
        | None -> "null")
        (if i = last then "" else ","))
    series;
  add "  ]\n";
  add "}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

let write_strlens_json path ~p7 =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"suite\": \"bx strlens engine\",\n";
  add "%s" (host_meta ~domains_used:p7.batch7.batch_workers);
  add "  \"baseline\": \"copying engine (Slens_ref)\",\n";
  add "  \"speedup_target\": 3.0,\n";
  add "  \"rows\": [\n";
  let last = List.length p7.rows7 - 1 in
  List.iteri
    (fun i r ->
      add
        "    { \"lines\": %d, \"bytes\": %d, \"sliced_get_ns\": %.1f, \
         \"copying_get_ns\": %.1f, \"get_speedup\": %.2f, \
         \"sliced_get_mb_per_s\": %.2f, \"sliced_put_ns\": %.1f, \
         \"copying_put_ns\": %.1f, \"put_speedup\": %.2f }%s\n"
        r.p7_lines r.p7_bytes r.sliced_get_ns r.ref_get_ns r.get_speedup
        r.sliced_get_mb_s r.sliced_put_ns r.ref_put_ns r.put_speedup
        (if i = last then "" else ","))
    p7.rows7;
  add "  ],\n";
  let b = p7.batch7 in
  add "  \"batch_get_all\": {\n";
  add "    \"documents\": %d,\n" b.batch_docs;
  add "    \"lines_per_document\": %d,\n" b.batch_doc_lines;
  add "    \"workers\": %d,\n" b.batch_workers;
  add "    \"cores_available\": %d,\n" (Domain.recommended_domain_count ());
  add "    \"sequential_ns\": %.1f,\n" b.batch_seq_ns;
  add "    \"parallel_ns\": %.1f,\n" b.batch_par_ns;
  add "    \"scaling\": %.2f\n" b.batch_scaling;
  add "  }\n";
  add "}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* P12: delta propagation against full recomputation (ISSUE 8).  The
   claim under test: a single-line edit to an n-line composer document
   through Slens_delta.put_delta costs O(edit window), not O(n) — at
   1000 lines it should beat the (already zero-copy) full put by >= 20x
   — and the journal record a patch persists is a few percent of the
   full-document record a non-delta pipeline would write.  Timing is
   the realistic steady state: the document evolves edit by edit and
   the delta cache follows, so every sample pays exactly what the
   docstore's patch endpoint pays.  Edit construction (the client's
   work) happens outside the timed region.  p50 over >= 9 samples
   after 3 warm-ups, as in P11.  --json-delta dumps the rows
   (committed as BENCH_delta.json). *)

type p12_row = {
  p12_lines : int;
  p12_bytes : int;
  delta_put_us : float;
  full_put_us : float;
  p12_put_speedup : float;
  delta_get_us : float;
  full_get_us : float;
  p12_get_speedup : float;
  edit_record_bytes : int;
  full_record_bytes : int;
  edit_record_pct : float;
  put_fast_share : float;
}

(* [p50_per_run], but with per-sample setup excluded from the clock:
   [prepare] builds the next edit, only [f] is timed. *)
let p12_p50 ~prepare ~f =
  for _ = 1 to 3 do
    ignore (Sys.opaque_identity (f (prepare ())))
  done;
  let samples = ref [] in
  let started = Unix.gettimeofday () in
  let n = ref 0 in
  while !n < 9 || (Unix.gettimeofday () -. started < 0.3 && !n < 2000) do
    let x = prepare () in
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f x));
    samples := (Unix.gettimeofday () -. t0) :: !samples;
    incr n
  done;
  let sorted = List.sort compare !samples in
  List.nth sorted (List.length sorted / 2)

(* Replace the final comma-field (the nationality) of one line with
   [word], rotating through the document — a fresh letters-only word
   keeps the document inside the lens's types while guaranteeing the
   line actually changes. *)
let p12_edit_line doc line word =
  let lines = String.split_on_char '\n' doc in
  let n = max 1 (List.length lines - 1) in
  let target = line mod n in
  String.concat "\n"
    (List.mapi
       (fun i l ->
         if i <> target || l = "" then l
         else
           match String.rindex_opt l ',' with
           | None -> l
           | Some c -> String.sub l 0 c ^ ", " ^ word)
       lines)

let p12_word i =
  Printf.sprintf "q%c%c"
    (Char.chr (Char.code 'a' + (i mod 26)))
    (Char.chr (Char.code 'a' + (i / 26 mod 26)))

let p12_delta ~sizes () =
  rule "P12: delta propagation vs full recomputation (single-line edits)";
  let module S = Bx_strlens.Slens in
  let module D = Bx_strlens.Slens_delta in
  let module Sd = Bx_strlens.Sdiff in
  let lens = Bx_catalogue.Composers_string.lens in
  List.map
    (fun k ->
      let src0 = csv_source_of_size k in
      (* Not [csv_view_of_size]: that view is deliberately shuffled and
         renamed to stress keyed realignment.  Delta propagation starts
         from a consistent pair, as the docstore guarantees. *)
      let view0 = lens.S.get src0 in
      let bytes = String.length src0 in
      (* The tiers must agree with the full engine before their times
         mean anything. *)
      let v1 = p12_edit_line view0 (k / 2) "qzz" in
      let e1 = Sd.diff view0 v1 in
      let check_cache = D.make_cache () in
      let ns1, se1 =
        D.put_delta lens ~cache:check_cache ~source:src0 ~view:view0 e1
      in
      assert (String.equal ns1 (lens.S.put v1 src0));
      assert (String.equal (Sd.apply src0 se1) ns1);
      (* put: steady state, document evolving under its cache. *)
      let src = ref src0 and view = ref view0 in
      let cache = D.make_cache () in
      let counter = ref 0 in
      D.reset_stats ();
      let delta_put =
        p12_p50
          ~prepare:(fun () ->
            incr counter;
            let v' = p12_edit_line !view !counter (p12_word !counter) in
            (Sd.diff !view v', v'))
          ~f:(fun (edit, v') ->
            let ns, _ = D.put_delta lens ~cache ~source:!src ~view:!view edit in
            src := ns;
            view := v')
      in
      let ds = D.stats () in
      let put_calls = ds.D.fast_puts + ds.D.slow_puts + ds.D.fallback_puts in
      let put_fast_share =
        if put_calls = 0 then 0.
        else float_of_int ds.D.fast_puts /. float_of_int put_calls
      in
      let full_put = p50_per_run (fun () -> lens.S.put v1 src0) in
      (* get: the mirror direction, source edits propagated forward. *)
      let src = ref src0 and view = ref view0 in
      let gcache = D.make_cache () in
      let delta_get =
        p12_p50
          ~prepare:(fun () ->
            incr counter;
            let s' = p12_edit_line !src !counter (p12_word !counter) in
            (Sd.diff !src s', s'))
          ~f:(fun (edit, s') ->
            let nv, _ =
              D.get_delta lens ~cache:gcache ~source:!src ~view:!view edit
            in
            view := nv;
            src := s')
      in
      let s1 = p12_edit_line src0 (k / 2) "qzz" in
      let full_get = p50_per_run (fun () -> lens.S.get s1) in
      (* What the journal persists for a patch vs for a full document:
         real v2 record framing, path and all. *)
      let rs = "\x1e" in
      let patch_body = "doc-1" ^ rs ^ "42" ^ rs ^ Sd.encode e1 in
      let edit_record_bytes =
        String.length
          (Bx_server.Journal.encode ~seq:1000
             ~path:"/slens/composers/patch" ~body:patch_body)
      in
      let full_record_bytes =
        String.length
          (Bx_server.Journal.encode ~seq:1000
             ~path:"/slens/composers/doc/doc-1" ~body:ns1)
      in
      let edit_record_pct =
        100. *. float_of_int edit_record_bytes /. float_of_int full_record_bytes
      in
      let p12_put_speedup = full_put /. delta_put in
      let p12_get_speedup = full_get /. delta_get in
      Fmt.pr
        "lines=%5d  put_delta %8.1f us vs full put %8.1f us (%5.1fx, fast \
         share %.2f)%s@."
        k (delta_put *. 1e6) (full_put *. 1e6) p12_put_speedup put_fast_share
        (if k = 1000 && p12_put_speedup < 20.0 then
           "  *** BELOW 20x TARGET ***"
         else "");
      Fmt.pr
        "             get_delta %8.1f us vs full get %8.1f us (%5.1fx)@."
        (delta_get *. 1e6) (full_get *. 1e6) p12_get_speedup;
      Fmt.pr
        "             journal record: %d B edit vs %d B full document \
         (%.2f%%)%s@."
        edit_record_bytes full_record_bytes edit_record_pct
        (if k = 1000 && edit_record_pct > 5.0 then
           "  *** ABOVE 5%% TARGET ***"
         else "");
      {
        p12_lines = k;
        p12_bytes = bytes;
        delta_put_us = delta_put *. 1e6;
        full_put_us = full_put *. 1e6;
        p12_put_speedup;
        delta_get_us = delta_get *. 1e6;
        full_get_us = full_get *. 1e6;
        p12_get_speedup;
        edit_record_bytes;
        full_record_bytes;
        edit_record_pct;
        put_fast_share;
      })
    sizes

let write_delta_json path rows =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"suite\": \"bx delta propagation\",\n";
  add "%s" (host_meta ~domains_used:1);
  add "  \"baseline\": \"full put/get through the zero-copy slice engine\",\n";
  add "  \"edit_shape\": \"single-line nationality replacement, rotating \
       line, steady-state cache\",\n";
  add "  \"method\": \"p50 over >= 9 samples after 3 warm-ups; edit \
       construction untimed\",\n";
  add "  \"put_speedup_target_at_1000_lines\": 20.0,\n";
  add "  \"edit_record_max_pct\": 5.0,\n";
  add "  \"rows\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      add
        "    { \"lines\": %d, \"bytes\": %d, \"delta_put_us\": %.2f, \
         \"full_put_us\": %.2f, \"put_speedup\": %.1f, \"put_fast_share\": \
         %.3f, \"delta_get_us\": %.2f, \"full_get_us\": %.2f, \
         \"get_speedup\": %.1f, \"edit_record_bytes\": %d, \
         \"full_record_bytes\": %d, \"edit_record_pct\": %.2f }%s\n"
        r.p12_lines r.p12_bytes r.delta_put_us r.full_put_us
        r.p12_put_speedup r.put_fast_share r.delta_get_us r.full_get_us
        r.p12_get_speedup r.edit_record_bytes r.full_record_bytes
        r.edit_record_pct
        (if i = last then "" else ","))
    rows;
  add "  ]\n";
  add "}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* P13: end-to-end integrity (ISSUE 9).  Three claims under test on one
   journal-backed store seeded with a generated corpus: (a) a full
   scrub pass — journal CRCs, snapshot DIGESTS, entry round-trip laws,
   document view/source agreement — covers the store at a useful rate
   and reports zero findings on clean bytes; (b) single-bit flips
   injected across every cold surface (segment logs, snapshot pages,
   DOCS.bxdocs, MANIFESTs) are all caught — each flipped file ends up
   quarantined by the scrubber or repaired to a clean prefix by boot
   recovery, with nothing silently served; (c) running the background
   scrubber under a read-heavy open-loop load moves p50/p99 by less
   than 10% — the token bucket keeps the tax invisible.  --json-integrity
   dumps the summary (committed as BENCH_integrity.json). *)

type p13_tax = {
  tax_ok : int;
  tax_shed : int;
  tax_failed : int;
  tax_p50_us : int;
  tax_p99_us : int;
}

type p13_summary = {
  p13_entries : int;
  p13_shards : int;
  p13_store_bytes : int;
  p13_scrub_items : int;
  p13_scrub_seconds : float;
  p13_items_per_s : float;
  p13_mb_per_s : float;
  p13_false_positives : int;
  p13_injected : int;
  p13_detected : int;
  p13_quarantined : int;
  p13_repaired_at_boot : int;
  p13_tax_rate : float;
  p13_tax_scrub_rate : int;
  p13_tax_off : p13_tax;
  p13_tax_on : p13_tax;
  p13_p50_delta_pct : float;
  p13_p99_delta_pct : float;
}

let p13_integrity ~entries () =
  rule "P13: integrity — scrub throughput, corruption detection, scrub tax";
  let shards = max 2 (min 64 (entries / 2000)) in
  let dir = Filename.temp_file "bx-bench-integrity" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let lenses = [ ("composers", Bx_catalogue.Composers_string.lens) ] in
  let seed () = Bx_load.Corpus.seed_registry ~shards ~entries ~seed:1 () in
  let create ?(scrub_rate = 0) () =
    let config =
      {
        Bx_server.Service.default_config with
        journal_dir = Some dir;
        shards;
        compact_every = 0;
        scrub_rate;
      }
    in
    match Bx_server.Service.create ~config ~lenses ~seed () with
    | Ok t -> t
    | Error e -> failwith ("P13 service: " ^ e)
  in
  let targets = Bx_load.Corpus.wiki_paths ~entries ~seed:1 in
  (* Land a few accepted edits so the segment journals hold records at
     rest — p11-style: re-POST the fetched page. *)
  let land_edits svc =
    let n = min entries (max 24 (2 * shards)) in
    for i = 0 to n - 1 do
      let path = targets.((i * 97) mod Array.length targets) in
      let page =
        (Bx_server.Service.handle svc ~meth:"GET" ~path:(path ^ ".wiki")
           ~body:"")
          .Bx_repo.Webui.body
      in
      let r = Bx_server.Service.handle svc ~meth:"POST" ~path ~body:page in
      if r.Bx_repo.Webui.status <> 200 then
        failwith
          (Printf.sprintf "P13 POST %s -> %d" path r.Bx_repo.Webui.status)
    done
  in
  (* Phase 1 — build the store and time one clean scrub pass. *)
  let svc = create () in
  let doc_src = Bx_catalogue.Composers_string.synthetic_source 5 in
  (let r =
     Bx_server.Service.handle svc ~meth:"POST"
       ~path:"/slens/composers/doc/bench-doc" ~body:doc_src
   in
   if r.Bx_repo.Webui.status <> 200 then
     failwith
       (Printf.sprintf "P13 doc create -> %d" r.Bx_repo.Webui.status));
  (match Bx_server.Service.checkpoint svc with
  | Ok _ -> ()
  | Error e -> failwith ("P13 checkpoint: " ^ e));
  land_edits svc;
  let store_bytes = dir_bytes dir in
  let t0 = Unix.gettimeofday () in
  let scrub_items, clean_findings = Bx_server.Service.scrub_once svc in
  let scrub_seconds = Unix.gettimeofday () -. t0 in
  let false_positives = List.length clean_findings in
  List.iter
    (fun (name, why) -> Fmt.pr "P13 false positive: %s: %s@." name why)
    clean_findings;
  Bx_server.Service.close svc;
  let items_per_s = float_of_int scrub_items /. scrub_seconds in
  let mb_per_s = float_of_int store_bytes /. scrub_seconds /. 1e6 in
  Fmt.pr "store: %d entries, %d shards, %.1f MB on disk@." entries shards
    (float_of_int store_bytes /. 1e6);
  Fmt.pr
    "scrub: %d items in %.2f s — %.0f items/s, %.1f MB/s, %d false \
     positive(s)%s@."
    scrub_items scrub_seconds items_per_s mb_per_s false_positives
    (if false_positives > 0 then "  *** CLEAN STORE FLAGGED ***" else "");
  (* Phase 2 — scrub tax: the same read-heavy open-loop load with the
     scrubber off, then on.  Serving re-checkpoints on shutdown, which
     is why corruption injection waits for phase 3. *)
  (* The offered load is calibrated, not fixed: an open-loop driver on
     a saturated server measures backlog, not the scrubber.  A short
     saturating probe through the real socket path measures what this
     host actually serves; the tax runs offer 30% of that, so the
     scrubber's cost shows up as latency, not as queueing collapse.
     The scrub rate is an operator knob; pick one the host can afford
     (paced scrubbing is a few percent of one core). *)
  let cores = Domain.recommended_domain_count () in
  let tax_domains = max 1 (min 4 (cores / 2))
  and tax_scrub_rate = max 100 (min 2000 (500 * (cores - 1))) in
  let with_server ~scrub_rate f =
    let svc = create ~scrub_rate () in
    let server =
      Thread.create
        (fun () ->
          match
            Bx_server.Service.serve svc ~port:0 ~workers:(tax_domains + 2)
              ~quiet:true ()
          with
          | Ok () -> ()
          | Error e -> Fmt.epr "P13 serve: %s@." e)
        ()
    in
    let rec wait_port n =
      match Bx_server.Service.port svc with
      | Some p -> p
      | None ->
          if n > 1000 then failwith "P13 service never bound"
          else begin
            Thread.delay 0.01;
            wait_port (n + 1)
          end
    in
    let port = wait_port 0 in
    let r = f port in
    Bx_server.Service.shutdown svc;
    Thread.join server;
    r
  in
  let load ~port ~rate ~warmup ~duration =
    let spec =
      {
        Bx_load.Loadgen.port;
        profile = Bx_load.Workload.read_heavy;
        pacing = Bx_load.Arrival.Poisson;
        rate;
        domains = tax_domains;
        warmup;
        duration;
        seed = 1;
        targets;
      }
    in
    match Bx_load.Loadgen.run spec with
    | Ok r -> r
    | Error e -> failwith ("P13 loadgen: " ^ e)
  in
  (* Per mode: three measured repetitions against one server, medians
     per quantile — a single rep's p99 is one scheduling hiccup away
     from either sign. *)
  let measure ~port ~rate =
    let reps =
      List.init 5 (fun _ -> load ~port ~rate ~warmup:0.5 ~duration:4.0)
    in
    let median f =
      let sorted = List.sort compare (List.map f reps) in
      List.nth sorted (List.length sorted / 2)
    in
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 reps in
    {
      tax_ok = sum (fun r -> r.Bx_load.Loadgen.ok);
      tax_shed = sum (fun r -> r.Bx_load.Loadgen.shed);
      tax_failed = sum (fun r -> r.Bx_load.Loadgen.failed);
      tax_p50_us = median (fun r -> Bx_load.Hist.quantile r.latency 0.5);
      tax_p99_us = median (fun r -> Bx_load.Hist.quantile r.latency 0.99);
    }
  in
  let tax_off, tax_rate =
    with_server ~scrub_rate:0 (fun port ->
        let probe = load ~port ~rate:5000. ~warmup:0.5 ~duration:2.0 in
        let rate =
          Float.max 20. (0.30 *. probe.Bx_load.Loadgen.throughput)
        in
        (measure ~port ~rate, rate))
  in
  let tax_on =
    with_server ~scrub_rate:tax_scrub_rate (fun port ->
        measure ~port ~rate:tax_rate)
  in
  let delta_pct a b =
    100. *. (float_of_int b -. float_of_int a) /. float_of_int (max 1 a)
  in
  let p50_delta = delta_pct tax_off.tax_p50_us tax_on.tax_p50_us in
  let p99_delta = delta_pct tax_off.tax_p99_us tax_on.tax_p99_us in
  (* A percentage over sub-millisecond medians is scheduler noise, not
     scrubber cost: only flag a regression that is both relatively and
     absolutely real. *)
  let over q_off q_on delta =
    delta > 10.0 && q_on - q_off > 1000
  in
  Fmt.pr
    "tax: read-heavy %.0f req/s — scrub off p50/p99 %d/%d us, on \
     (rate=%d/s) %d/%d us -> p50 %+.1f%%, p99 %+.1f%%%s@."
    tax_rate tax_off.tax_p50_us tax_off.tax_p99_us tax_scrub_rate
    tax_on.tax_p50_us tax_on.tax_p99_us p50_delta p99_delta
    (if
       over tax_off.tax_p99_us tax_on.tax_p99_us p99_delta
       || over tax_off.tax_p50_us tax_on.tax_p50_us p50_delta
     then "  *** ABOVE 10% TARGET ***"
     else "");
  (* Phase 3 — corruption detection.  Shutdown's final checkpoint left
     the journals empty, so land fresh edits and close without sealing;
     then flip one bit in each chosen file across every cold surface. *)
  let svc = create () in
  land_edits svc;
  Bx_server.Service.close svc;
  let seg k = Filename.concat dir (Printf.sprintf "shard-%03d" k) in
  let snap k = Filename.concat (seg k) "snapshot" in
  let file_size p = (Unix.stat p).Unix.st_size in
  let candidates surface =
    List.concat_map
      (fun k ->
        let key name = Printf.sprintf "shard-%03d/%s" k name in
        match surface with
        | `Journal ->
            let p = Filename.concat (seg k) "journal.log" in
            if Sys.file_exists p && file_size p > 0 then
              [ (p, key "journal.log", "journal") ]
            else []
        | `Manifest ->
            let p = Filename.concat (snap k) "MANIFEST" in
            if Sys.file_exists p && file_size p > 0 then
              [ (p, key "MANIFEST", "manifest") ]
            else []
        | `Docs ->
            let p = Filename.concat (snap k) "DOCS.bxdocs" in
            if Sys.file_exists p && file_size p > 0 then
              [ (p, key "DOCS.bxdocs", "docs") ]
            else []
        | `Page ->
            if not (Sys.is_directory (snap k)) then []
            else
              Array.to_list (Sys.readdir (snap k))
              |> List.filter (fun name ->
                     Bx_server.Integrity.Digests.covered name
                     && name <> "DOCS.bxdocs")
              |> List.sort compare
              |> List.map (fun name ->
                     (Filename.concat (snap k) name, key name, "page")))
      (List.init shards (fun k -> k))
  in
  let take n l =
    let rec go n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: go (n - 1) rest
    in
    go n l
  in
  let spread n l =
    let arr = Array.of_list l in
    let len = Array.length arr in
    if len <= n then Array.to_list arr
    else List.init n (fun i -> arr.(i * len / n))
  in
  let journals = take 12 (candidates `Journal) in
  let manifests = take 4 (candidates `Manifest) in
  let docs = take 1 (candidates `Docs) in
  let fixed = journals @ manifests @ docs in
  let pages = spread (max 0 (60 - List.length fixed)) (candidates `Page) in
  let chosen = fixed @ pages in
  let rng = Random.State.make [| 0x9e3779b9; entries; shards |] in
  let victims =
    List.map
      (fun (path, key, surface) ->
        let bytes =
          In_channel.with_open_bin path (fun ic ->
              Bytes.of_string (In_channel.input_all ic))
        in
        let len = Bytes.length bytes in
        let byte = Random.State.int rng len in
        let bit = Random.State.int rng 8 in
        Bytes.set bytes byte
          (Char.chr (Char.code (Bytes.get bytes byte) lxor (1 lsl bit)));
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_bytes oc bytes);
        (path, key, surface, len))
      chosen
  in
  let injected = List.length victims in
  (* Boot recovers what it can (dirty journal tails truncate to the
     clean prefix, corrupt snapshot files are skipped and flagged); one
     scrub pass must quarantine everything else.  A flip is detected
     iff its file is quarantined or boot rewrote it. *)
  let svc = create () in
  let _, _ = Bx_server.Service.scrub_once svc in
  let q = Bx_server.Service.quarantine svc in
  let quarantined, repaired =
    List.fold_left
      (fun (quarantined, repaired) (path, key, _surface, pre_len) ->
        let module Q = Bx_server.Integrity.Quarantine in
        if Q.find q (Q.File key) <> None then (quarantined + 1, repaired)
        else if
          (not (Sys.file_exists path)) || file_size path <> pre_len
        then (quarantined, repaired + 1)
        else begin
          Fmt.pr "P13 UNDETECTED: flip of %s (key %s) survived@." path key;
          (quarantined, repaired)
        end)
      (0, 0) victims
  in
  Bx_server.Service.close svc;
  let detected = quarantined + repaired in
  Fmt.pr
    "inject: %d single-bit flips (%d journal, %d manifest, %d docstore, %d \
     pages) — %d detected (%d quarantined, %d repaired at boot)%s@."
    injected (List.length journals) (List.length manifests)
    (List.length docs) (List.length pages) detected quarantined repaired
    (if detected < injected then "  *** CORRUPTION MISSED ***" else "");
  {
    p13_entries = entries;
    p13_shards = shards;
    p13_store_bytes = store_bytes;
    p13_scrub_items = scrub_items;
    p13_scrub_seconds = scrub_seconds;
    p13_items_per_s = items_per_s;
    p13_mb_per_s = mb_per_s;
    p13_false_positives = false_positives;
    p13_injected = injected;
    p13_detected = detected;
    p13_quarantined = quarantined;
    p13_repaired_at_boot = repaired;
    p13_tax_rate = tax_rate;
    p13_tax_scrub_rate = tax_scrub_rate;
    p13_tax_off = tax_off;
    p13_tax_on = tax_on;
    p13_p50_delta_pct = p50_delta;
    p13_p99_delta_pct = p99_delta;
  }

let write_integrity_json path s =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"suite\": \"bx end-to-end integrity\",\n";
  add "%s" (host_meta ~domains_used:1);
  add "  \"entries\": %d,\n" s.p13_entries;
  add "  \"shards\": %d,\n" s.p13_shards;
  add "  \"store_bytes\": %d,\n" s.p13_store_bytes;
  add "  \"scrub\": {\n";
  add "    \"items\": %d,\n" s.p13_scrub_items;
  add "    \"seconds\": %.3f,\n" s.p13_scrub_seconds;
  add "    \"items_per_s\": %.1f,\n" s.p13_items_per_s;
  add "    \"store_mb_per_s\": %.2f,\n" s.p13_mb_per_s;
  add "    \"false_positives\": %d\n" s.p13_false_positives;
  add "  },\n";
  add "  \"detection\": {\n";
  add "    \"injected_bit_flips\": %d,\n" s.p13_injected;
  add "    \"detected\": %d,\n" s.p13_detected;
  add "    \"quarantined\": %d,\n" s.p13_quarantined;
  add "    \"repaired_at_boot\": %d,\n" s.p13_repaired_at_boot;
  add "    \"detection_pct\": %.1f\n"
    (100.
    *. float_of_int s.p13_detected
    /. float_of_int (max 1 s.p13_injected));
  add "  },\n";
  add "  \"scrub_tax\": {\n";
  add "    \"profile\": \"read-heavy\",\n";
  add "    \"offered_rate_per_s\": %.0f,\n" s.p13_tax_rate;
  add "    \"scrub_rate_items_per_s\": %d,\n" s.p13_tax_scrub_rate;
  add "    \"max_delta_pct\": 10.0,\n";
  add "    \"noise_floor_us\": 1000,\n";
  let tax label t =
    add
      "    \"%s\": { \"ok\": %d, \"shed\": %d, \"failed\": %d, \"p50_us\": \
       %d, \"p99_us\": %d },\n"
      label t.tax_ok t.tax_shed t.tax_failed t.tax_p50_us t.tax_p99_us
  in
  tax "scrubber_off" s.p13_tax_off;
  tax "scrubber_on" s.p13_tax_on;
  add "    \"p50_delta_pct\": %.1f,\n" s.p13_p50_delta_pct;
  add "    \"p99_delta_pct\": %.1f\n" s.p13_p99_delta_pct;
  add "  }\n";
  add "}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* P14: chaos and degradation (ISSUE 10).  Three claims on one box:
   (a) brownout availability — at 4x overload on a hot page whose
   cache is being invalidated by a background writer (so the fresh
   lane always pays an injected 5 ms render), the degraded lane keeps
   answering from the stale cache where the shed-only baseline answers
   503; (b) deadline promptness — a client that ships a budget in
   X-Bxwiki-Deadline waits at most ~1.5x that budget for an answer,
   even behind a queue of slow renders; (c) the chaos proxy's own tax —
   a toxic-free proxy is measured against the direct socket, and
   latency(20,10) against both.  --json-chaos dumps the summary
   (committed as BENCH_chaos.json). *)

type p14_avail = {
  av_mode : string;  (* "brownout" | "shed-only" *)
  av_offered : int;
  av_fresh : int;
  av_stale : int;
  av_shed : int;
  av_failed : int;
  av_elapsed : float;
}

type p14_deadline = {
  dl_budget_ms : float;
  dl_offered : int;
  dl_fresh : int;
  dl_shed : int;  (* 503/504: the budget was honoured by refusing *)
  dl_failed : int;
  dl_p50_ms : float;
  dl_p99_ms : float;
  dl_max_ms : float;
  dl_tight_refused : int;
  dl_tight_served : int;
  dl_propagated : int;  (* sheds attributed to the shipped header *)
}

type p14_toxic = { tx_mode : string; tx_p50_ms : float; tx_p95_ms : float }

type p14_summary = {
  p14_multiple : float;
  p14_avail : p14_avail list;
  p14_deadline : p14_deadline;
  p14_toxics : p14_toxic list;
}

let p14_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let p14_contains ~needle hay =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* One whole HTTP conversation, Connection: close; returns the raw
   response bytes ("" on transport failure). *)
let p14_fetch ?(meth = "GET") ?(body = "") port ~headers path =
  let buf = Buffer.create 1024 in
  (try
     let c = connect port in
     (try
        let oc = Unix.out_channel_of_descr c in
        Printf.fprintf oc
          "%s %s HTTP/1.1\r\n%sContent-Length: %d\r\nConnection: \
           close\r\n\r\n%s"
          meth path headers (String.length body) body;
        flush oc;
        let chunk = Bytes.create 4096 in
        let rec go () =
          let n = Unix.read c chunk 0 4096 in
          if n > 0 then begin
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          end
        in
        (try go () with Unix.Unix_error _ | End_of_file -> ());
        Unix.close c
      with e ->
        (try Unix.close c with Unix.Unix_error _ -> ());
        raise e)
   with _ -> ());
  Buffer.contents buf

let p14_status raw =
  match String.index_opt raw ' ' with
  | Some i -> ( try int_of_string (String.sub raw (i + 1) 3) with _ -> 0)
  | None -> 0

(* Replace the first "temperature<k>" marker so each POST is a genuine
   edit: the write bumps the registry generation, which is what keeps
   the hot page's fresh render a cache miss. *)
let p14_bump_rev body i =
  let needle = "temperature" in
  let bl = String.length body and nl = String.length needle in
  let rec find k =
    if k + nl > bl then None
    else if String.sub body k nl = needle then Some k
    else find (k + 1)
  in
  match find 0 with
  | None -> body
  | Some k ->
      let d = ref (k + nl) in
      while !d < bl && body.[!d] >= '0' && body.[!d] <= '9' do
        incr d
      done;
      String.sub body 0 (k + nl)
      ^ string_of_int i
      ^ String.sub body !d (bl - !d)

let p14_wait_port service =
  let rec go n =
    match Bx_server.Service.port service with
    | Some p -> p
    | None ->
        if n > 500 then failwith "chaos service never bound"
        else begin
          Thread.delay 0.01;
          go (n + 1)
        end
  in
  go 0

(* The 4x-overload storm, once with brownout and once shed-only. *)
let p14_storm ~brownout ~offered ~queue_capacity =
  let workers = 2 in
  let config =
    {
      Bx_server.Service.default_config with
      queue_capacity;
      brownout;
      min_concurrency = 4;
    }
  in
  let service =
    match
      Bx_server.Service.create ~config ~seed:Bx_catalogue.Catalogue.seed ()
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let server =
    Thread.create
      (fun () ->
        match
          Bx_server.Service.serve service ~port:0 ~workers ~quiet:true ()
        with
        | Ok () -> ()
        | Error e -> Fmt.epr "chaos service: %s@." e)
      ()
  in
  let port = p14_wait_port service in
  (* Warm the hot page so the degraded lane has a render to serve. *)
  ignore
    (Bx_server.Service.handle service ~meth:"GET" ~path:bench_path ~body:"");
  Bx_fault.Fault.set "service.lock.read" (Bx_fault.Fault.Delay 0.005);
  let stop_editor = Atomic.make false in
  let editor =
    Thread.create
      (fun () ->
        let base =
          (Bx_server.Service.handle service ~meth:"GET"
             ~path:"/examples:celsius.wiki" ~body:"")
            .Bx_repo.Webui.body
        in
        let i = ref 0 in
        while not (Atomic.get stop_editor) do
          incr i;
          ignore
            (Bx_server.Service.handle service ~meth:"POST"
               ~path:"/examples:celsius" ~body:(p14_bump_rev base !i));
          Thread.delay 0.002
        done)
      ()
  in
  let fresh = Atomic.make 0
  and stale = Atomic.make 0
  and shed = Atomic.make 0
  and failed = Atomic.make 0 in
  let per_client _ =
    let raw = p14_fetch port ~headers:"" bench_path in
    match p14_status raw with
    | 200 ->
        if p14_contains ~needle:"X-Bxwiki-Stale:" raw then Atomic.incr stale
        else Atomic.incr fresh
    | 503 -> Atomic.incr shed
    | _ -> Atomic.incr failed
  in
  let elapsed = run_clients offered per_client in
  Atomic.set stop_editor true;
  Thread.join editor;
  Bx_fault.Fault.clear ();
  Bx_server.Service.shutdown service;
  Thread.join server;
  {
    av_mode = (if brownout then "brownout" else "shed-only");
    av_offered = offered;
    av_fresh = Atomic.get fresh;
    av_stale = Atomic.get stale;
    av_shed = Atomic.get shed;
    av_failed = Atomic.get failed;
    av_elapsed = elapsed;
  }

(* Deadline promptness: a burst of cache-missing renders behind two
   workers, every request carrying a budget; nobody waits much past it
   — served or refused.  The service's queue deadline is aligned with
   the budget the clients ship (the deployment story: both come from
   the same SLO), so a connection that queues past its budget is shed
   before a worker wastes a render on it, and a request whose shipped
   budget is exhausted by the time it is read sheds as 504 via the
   propagated header.  A second batch of clients ships an almost-spent
   budget (a retry that burned its allowance elsewhere): those must be
   refused via the header, not rendered. *)
let p14_deadline_storm ~budget_ms ~offered =
  let config =
    {
      Bx_server.Service.default_config with
      queue_capacity = 4 * offered;
      queue_deadline = budget_ms /. 1000.;
      brownout = false;
    }
  in
  let service =
    match
      Bx_server.Service.create ~config ~seed:Bx_catalogue.Catalogue.seed ()
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let server =
    Thread.create
      (fun () ->
        match
          Bx_server.Service.serve service ~port:0 ~workers:2 ~quiet:true ()
        with
        | Ok () -> ()
        | Error e -> Fmt.epr "deadline service: %s@." e)
      ()
  in
  let port = p14_wait_port service in
  Bx_fault.Fault.set "service.lock.read" (Bx_fault.Fault.Delay 0.05);
  let fresh = Atomic.make 0
  and shed = Atomic.make 0
  and failed = Atomic.make 0
  and tight_refused = Atomic.make 0
  and tight_served = Atomic.make 0 in
  let waits = Array.make offered 0. in
  let per_client i =
    let headers = Printf.sprintf "X-Bxwiki-Deadline: %.0f\r\n" budget_ms in
    let started = Unix.gettimeofday () in
    let raw =
      p14_fetch port ~headers (Printf.sprintf "%s?i=%d" bench_path i)
    in
    waits.(i) <- (Unix.gettimeofday () -. started) *. 1000.;
    match p14_status raw with
    | 200 -> Atomic.incr fresh
    | 503 | 504 -> Atomic.incr shed
    | _ -> Atomic.incr failed
  in
  ignore (run_clients offered per_client);
  (* Phase two, on the now-idle service: writes whose shipped budget is
     gone by the time the slow write path reaches its post-lock
     re-check — these must be refused by the propagated header, never
     applied. *)
  Bx_fault.Fault.set "service.lock.write" (Bx_fault.Fault.Delay 0.03);
  let page_body =
    (Bx_server.Service.handle service ~meth:"GET"
       ~path:"/examples:celsius.wiki" ~body:"")
      .Bx_repo.Webui.body
  in
  let tight = offered / 3 in
  let tight_client i =
    let raw =
      p14_fetch ~meth:"POST"
        ~body:(p14_bump_rev page_body (1000 + i))
        port ~headers:"X-Bxwiki-Deadline: 5\r\n" "/examples:celsius"
    in
    match p14_status raw with
    | 503 | 504 -> Atomic.incr tight_refused
    | 200 -> Atomic.incr tight_served
    | _ -> Atomic.incr failed
  in
  ignore (run_clients tight tight_client);
  let propagated =
    Bx_server.Metrics.shed_by_reason
      (Bx_server.Service.metrics service)
      "deadline_propagated"
  in
  Bx_fault.Fault.clear ();
  Bx_server.Service.shutdown service;
  Thread.join server;
  let sorted = Array.copy waits in
  Array.sort compare sorted;
  {
    dl_budget_ms = budget_ms;
    dl_offered = offered;
    dl_fresh = Atomic.get fresh;
    dl_shed = Atomic.get shed;
    dl_failed = Atomic.get failed;
    dl_p50_ms = p14_percentile sorted 50.;
    dl_p99_ms = p14_percentile sorted 99.;
    dl_max_ms = sorted.(Array.length sorted - 1);
    dl_tight_refused = Atomic.get tight_refused;
    dl_tight_served = Atomic.get tight_served;
    dl_propagated = propagated;
  }

(* The proxy's own price: request latency direct, through a toxic-free
   proxy, and through latency(20,10). *)
let p14_toxic_tax () =
  let service =
    match
      Bx_server.Service.create ~seed:Bx_catalogue.Catalogue.seed ()
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let server =
    Thread.create
      (fun () ->
        match
          Bx_server.Service.serve service ~port:0 ~workers:2 ~quiet:true ()
        with
        | Ok () -> ()
        | Error e -> Fmt.epr "tax service: %s@." e)
      ()
  in
  let port = p14_wait_port service in
  ignore
    (Bx_server.Service.handle service ~meth:"GET" ~path:bench_path ~body:"");
  let proxy =
    Bx_fault.Netchaos.create ~name:"bench-tax" ~seed:7 ~upstream_port:port ()
  in
  let measure label target =
    let n = 40 in
    let samples =
      Array.init n (fun _ ->
          let started = Unix.gettimeofday () in
          let raw = p14_fetch target ~headers:"" bench_path in
          if p14_status raw <> 200 then failwith (label ^ ": request failed");
          (Unix.gettimeofday () -. started) *. 1000.)
    in
    Array.sort compare samples;
    {
      tx_mode = label;
      tx_p50_ms = p14_percentile samples 50.;
      tx_p95_ms = p14_percentile samples 95.;
    }
  in
  let direct = measure "direct" port in
  let clean = measure "proxy" (Bx_fault.Netchaos.port proxy) in
  Bx_fault.Netchaos.set_toxics proxy
    [ (Bx_fault.Netchaos.Both, Bx_fault.Netchaos.Latency (20., 10.)) ];
  let stormy = measure "proxy+latency(20,10)" (Bx_fault.Netchaos.port proxy) in
  Bx_fault.Netchaos.close proxy;
  Bx_server.Service.shutdown service;
  Thread.join server;
  [ direct; clean; stormy ]

let p14_chaos () =
  rule "P14: chaos & degradation — brownout, deadlines, proxy tax";
  let queue_capacity = 16 in
  let multiple = 4.0 in
  let offered = int_of_float (multiple *. float_of_int queue_capacity) in
  let storms =
    [
      p14_storm ~brownout:true ~offered ~queue_capacity;
      p14_storm ~brownout:false ~offered ~queue_capacity;
    ]
  in
  Fmt.pr
    "availability at %.0fx overload (hot page, cache busted by a writer, 5 \
     ms render)@."
    multiple;
  Fmt.pr "  mode       offered  fresh  stale   shed  failed  elapsed@.";
  List.iter
    (fun r ->
      Fmt.pr "  %-9s  %7d  %5d  %5d  %5d  %6d  %6.2fs@." r.av_mode
        r.av_offered r.av_fresh r.av_stale r.av_shed r.av_failed r.av_elapsed)
    storms;
  let answered_pct r =
    100. *. float_of_int (r.av_fresh + r.av_stale) /. float_of_int r.av_offered
  in
  (match storms with
  | [ b; s ] ->
      Fmt.pr "brownout answered  %.1f%% (baseline shed %.1f%%)@."
        (answered_pct b)
        (100. *. float_of_int s.av_shed /. float_of_int s.av_offered);
      if answered_pct b < 99. then
        Fmt.pr "*** BROWNOUT ANSWERED < 99%% AT %.0fx OVERLOAD ***@." multiple
  | _ -> ());
  let deadline = p14_deadline_storm ~budget_ms:300. ~offered:48 in
  Fmt.pr
    "@.deadline propagation (budget %.0f ms, 48 cache-missing renders, 2 \
     workers)@."
    deadline.dl_budget_ms;
  Fmt.pr "  served %d, refused-in-time %d, failed %d@." deadline.dl_fresh
    deadline.dl_shed deadline.dl_failed;
  Fmt.pr "  client wait p50 %.0f ms, p99 %.0f ms, max %.0f ms@."
    deadline.dl_p50_ms deadline.dl_p99_ms deadline.dl_max_ms;
  Fmt.pr
    "  almost-spent budgets: %d refused, %d rendered anyway (%d via the \
     propagated header)@."
    deadline.dl_tight_refused deadline.dl_tight_served deadline.dl_propagated;
  if deadline.dl_p99_ms > 1.5 *. deadline.dl_budget_ms then
    Fmt.pr "*** P99 WAIT EXCEEDS 1.5x THE SHIPPED BUDGET ***@."
  else
    Fmt.pr "p99 wait <= 1.5x budget  yes@.";
  let toxics = p14_toxic_tax () in
  Fmt.pr "@.proxy tax (hot cached page, sequential)@.";
  List.iter
    (fun t ->
      Fmt.pr "  %-22s p50 %6.2f ms  p95 %6.2f ms@." t.tx_mode t.tx_p50_ms
        t.tx_p95_ms)
    toxics;
  { p14_multiple = multiple; p14_avail = storms; p14_deadline = deadline;
    p14_toxics = toxics }

let write_chaos_json path s =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"benchmark\": \"P14 chaos and degradation\",\n";
  add "%s" (host_meta ~domains_used:2);
  add "  \"overload_multiple\": %g,\n" s.p14_multiple;
  add "  \"availability\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"mode\": \"%s\", \"offered\": %d, \"fresh\": %d, \"stale\": \
         %d, \"shed\": %d, \"failed\": %d, \"elapsed_s\": %.4f, \
         \"answered_pct\": %.1f}%s\n"
        r.av_mode r.av_offered r.av_fresh r.av_stale r.av_shed r.av_failed
        r.av_elapsed
        (100.
        *. float_of_int (r.av_fresh + r.av_stale)
        /. float_of_int r.av_offered)
        (if i = List.length s.p14_avail - 1 then "" else ","))
    s.p14_avail;
  add "  ],\n";
  let d = s.p14_deadline in
  add "  \"deadline\": {\n";
  add "    \"budget_ms\": %g,\n" d.dl_budget_ms;
  add "    \"offered\": %d,\n" d.dl_offered;
  add "    \"served\": %d,\n" d.dl_fresh;
  add "    \"refused_in_time\": %d,\n" d.dl_shed;
  add "    \"failed\": %d,\n" d.dl_failed;
  add "    \"wait_p50_ms\": %.1f,\n" d.dl_p50_ms;
  add "    \"wait_p99_ms\": %.1f,\n" d.dl_p99_ms;
  add "    \"wait_max_ms\": %.1f,\n" d.dl_max_ms;
  add "    \"p99_budget_ratio\": %.2f,\n" (d.dl_p99_ms /. d.dl_budget_ms);
  add "    \"tight_budget_refused\": %d,\n" d.dl_tight_refused;
  add "    \"tight_budget_served\": %d,\n" d.dl_tight_served;
  add "    \"propagated_sheds\": %d\n" d.dl_propagated;
  add "  },\n";
  add "  \"proxy_tax\": [\n";
  List.iteri
    (fun i t ->
      add "    {\"mode\": \"%s\", \"p50_ms\": %.2f, \"p95_ms\": %.2f}%s\n"
        t.tx_mode t.tx_p50_ms t.tx_p95_ms
        (if i = List.length s.p14_toxics - 1 then "" else ","))
    s.p14_toxics;
  add "  ]\n";
  add "}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))

let e6 () =
  rule "E6: BenchmarX-style scenarios stay consistent at every step";
  List.iter
    (fun scenario ->
      let out = Bx_catalogue.F2p_scenarios.run scenario in
      Fmt.pr "%-26s restorations=%2d consistent-throughout=%b@."
        scenario.Bx_catalogue.F2p_scenarios.scenario_name
        out.Bx_catalogue.F2p_scenarios.restorations
        out.Bx_catalogue.F2p_scenarios.consistent_after_every_step)
    (Bx_catalogue.F2p_scenarios.all 8)

let () =
  let json_path = ref None in
  let strlens_json_path = ref None in
  let shed_json_path = ref None in
  let repl_json_path = ref None in
  let shard_json_path = ref None in
  let e_only = ref false in
  let p7_only = ref false in
  let p8_only = ref false in
  let p9_only = ref false in
  let p11_only = ref false in
  let p11_sizes = ref [ 10_000; 100_000 ] in
  let p12_only = ref false in
  let p12_sizes = ref [ 100; 1000; 5000 ] in
  let delta_json_path = ref None in
  let p13_only = ref false in
  let chaos_json_path = ref None in
  let p14_only = ref false in
  let p13_entries = ref 100_000 in
  let integrity_json_path = ref None in
  let guard_only = ref false in
  let skip_server = ref false in
  let spec =
    [
      ( "--json",
        Arg.String (fun p -> json_path := Some p),
        "<path>  dump the P6 summary and every Bechamel estimate as JSON" );
      ( "--json-strlens",
        Arg.String (fun p -> strlens_json_path := Some p),
        "<path>  dump the P7 slice-engine comparison as JSON" );
      ( "--json-shed",
        Arg.String (fun p -> shed_json_path := Some p),
        "<path>  dump the P8 load-shedding curve as JSON" );
      ( "--e-only",
        Arg.Set e_only,
        " run only the E-series artifact checks (CI smoke test)" );
      ( "--p7-only",
        Arg.Set p7_only,
        " run only the P7 slice-engine comparison (CI bench smoke)" );
      ( "--p8-only",
        Arg.Set p8_only,
        " run only the P8 load-shedding curve" );
      ( "--json-repl",
        Arg.String (fun p -> repl_json_path := Some p),
        "<path>  dump the P9 replication summary as JSON" );
      ( "--p9-only",
        Arg.Set p9_only,
        " run only the P9 replication catch-up/lag benchmark" );
      ( "--json-shard",
        Arg.String (fun p -> shard_json_path := Some p),
        "<path>  dump the P11 sharded-registry scaling rows as JSON" );
      ( "--p11-only",
        Arg.Set p11_only,
        " run only the P11 sharded-registry scaling benchmark" );
      ( "--p11-sizes",
        Arg.String
          (fun s ->
            p11_sizes :=
              List.map
                (fun v ->
                  match int_of_string_opt (String.trim v) with
                  | Some n when n > 0 -> n
                  | _ -> raise (Arg.Bad ("bad --p11-sizes entry: " ^ v)))
                (String.split_on_char ',' s)),
        "<n,m,...>  P11 catalogue sizes (default 10000,100000)" );
      ( "--json-delta",
        Arg.String (fun p -> delta_json_path := Some p),
        "<path>  dump the P12 delta-propagation rows as JSON" );
      ( "--p12-only",
        Arg.Set p12_only,
        " run only the P12 delta-propagation benchmark" );
      ( "--p12-sizes",
        Arg.String
          (fun s ->
            p12_sizes :=
              List.map
                (fun v ->
                  match int_of_string_opt (String.trim v) with
                  | Some n when n > 0 -> n
                  | _ -> raise (Arg.Bad ("bad --p12-sizes entry: " ^ v)))
                (String.split_on_char ',' s)),
        "<n,m,...>  P12 document sizes in lines (default 100,1000,5000)" );
      ( "--json-integrity",
        Arg.String (fun p -> integrity_json_path := Some p),
        "<path>  dump the P13 integrity summary as JSON" );
      ( "--p13-only",
        Arg.Set p13_only,
        " run only the P13 integrity benchmark (scrub / detection / tax)" );
      ( "--p13-entries",
        Arg.String
          (fun v ->
            match int_of_string_opt (String.trim v) with
            | Some n when n > 0 -> p13_entries := n
            | _ -> raise (Arg.Bad ("bad --p13-entries: " ^ v))),
        "<n>  P13 corpus size (default 100000)" );
      ( "--json-chaos",
        Arg.String (fun p -> chaos_json_path := Some p),
        "<path>  dump the P14 chaos/degradation summary as JSON" );
      ( "--p14-only",
        Arg.Set p14_only,
        " run only the P14 chaos benchmark (brownout / deadlines / proxy \
         tax)" );
      ( "--fault-guard",
        Arg.Set guard_only,
        " run only the zero-cost check on disabled failpoints (exits 1 on \
         regression)" );
      ( "--skip-server",
        Arg.Set skip_server,
        " skip the wall-clock P5/P8 server benchmarks" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "bench/main.exe [--e-only] [--p7-only] [--p8-only] [--p9-only] \
     [--p11-only] [--p11-sizes n,m] [--p12-only] [--p12-sizes n,m] \
     [--p13-only] [--p13-entries n] [--p14-only] [--fault-guard] \
     [--skip-server] \
     [--json <path>] [--json-strlens <path>] [--json-shed <path>] \
     [--json-repl <path>] [--json-shard <path>] [--json-delta <path>] \
     [--json-integrity <path>] [--json-chaos <path>]";
  if !guard_only then fault_guard ()
  else if !p14_only then begin
    let summary = p14_chaos () in
    match !chaos_json_path with
    | Some path ->
        write_chaos_json path summary;
        Fmt.pr "@.wrote %s@." path
    | None -> ()
  end
  else if !p13_only then begin
    let summary = p13_integrity ~entries:!p13_entries () in
    match !integrity_json_path with
    | Some path ->
        write_integrity_json path summary;
        Fmt.pr "@.wrote %s@." path
    | None -> ()
  end
  else if !p12_only then begin
    let rows = p12_delta ~sizes:!p12_sizes () in
    match !delta_json_path with
    | Some path ->
        write_delta_json path rows;
        Fmt.pr "@.wrote %s@." path
    | None -> ()
  end
  else if !p11_only then begin
    let rows = p11_sharded ~sizes:!p11_sizes () in
    match !shard_json_path with
    | Some path ->
        write_shard_json path rows;
        Fmt.pr "@.wrote %s@." path
    | None -> ()
  end
  else if !p9_only then begin
    let summary = p9_replication () in
    match !repl_json_path with
    | Some path ->
        write_repl_json path summary;
        Fmt.pr "@.wrote %s@." path
    | None -> ()
  end
  else if !p8_only then begin
    let meta, rows = p8_load_shedding () in
    match !shed_json_path with
    | Some path ->
        write_shed_json path ~meta rows;
        Fmt.pr "@.wrote %s@." path
    | None -> ()
  end
  else if !p7_only then begin
    let p7 = p7_strlens () in
    match !strlens_json_path with
    | Some path ->
        write_strlens_json path ~p7;
        Fmt.pr "@.wrote %s@." path
    | None -> ()
  end
  else begin
    e1 ();
    e2 ();
    e3 ();
    e4 ();
    e5 ();
    e6 ();
    if not !e_only then begin
      if not !skip_server then begin
        p5_server_throughput ();
        p5_journal_replay ();
        (let meta, rows = p8_load_shedding () in
         match !shed_json_path with
         | Some path ->
             write_shed_json path ~meta rows;
             Fmt.pr "@.wrote %s@." path
         | None -> ());
        (let summary = p9_replication () in
         match !repl_json_path with
         | Some path ->
             write_repl_json path summary;
             Fmt.pr "@.wrote %s@." path
         | None -> ());
        (let summary = p13_integrity ~entries:!p13_entries () in
         match !integrity_json_path with
         | Some path ->
             write_integrity_json path summary;
             Fmt.pr "@.wrote %s@." path
         | None -> ());
        let summary = p14_chaos () in
        match !chaos_json_path with
        | Some path ->
            write_chaos_json path summary;
            Fmt.pr "@.wrote %s@." path
        | None -> ()
      end;
      let p6 = p6_engine () in
      let p7 = p7_strlens () in
      (let rows = p12_delta ~sizes:!p12_sizes () in
       match !delta_json_path with
       | Some path ->
           write_delta_json path rows;
           Fmt.pr "@.wrote %s@." path
       | None -> ());
      (let rows = p11_sharded ~sizes:!p11_sizes () in
       match !shard_json_path with
       | Some path ->
           write_shard_json path rows;
           Fmt.pr "@.wrote %s@." path
       | None -> ());
      rule "P1-P4, P6: performance series (Bechamel, OLS estimate per run)";
      let tests =
        composers_tests @ strlens_tests @ regex_tests @ registry_tests
        @ alignment_tests @ engine_tests @ scenario_tests @ store_tests
        @ generic_scenario_tests @ tree_edit_tests @ web_tests
      in
      let rows = result_rows (benchmark tests) in
      print_rows rows;
      (match !json_path with
      | Some path ->
          write_json path ~p6 ~series:rows;
          Fmt.pr "@.wrote %s@." path
      | None -> ());
      match !strlens_json_path with
      | Some path ->
          write_strlens_json path ~p7;
          Fmt.pr "@.wrote %s@." path
      | None -> ()
    end
  end
