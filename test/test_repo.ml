(* Unit and property tests for the repository core (bx_repo). *)

open Bx_repo

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let h = String.lowercase_ascii hay and n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  let rec scan i = i + nl <= hl && (String.sub h i nl = n || scan (i + 1)) in
  nl = 0 || scan 0

let ok_or_fail = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" (Registry.error_message e)

(* ------------------------------------------------------------------ *)
(* Version *)

let version_tests =
  [
    tc "initial is 0.1 and provisional" (fun () ->
        check Alcotest.string "0.1" "0.1" (Version.to_string Version.initial);
        check Alcotest.bool "provisional" true
          (Version.is_provisional Version.initial));
    tc "promote takes 0.x to 1.0 and x.y to (x+1).0" (fun () ->
        check Alcotest.string "1.0" "1.0"
          (Version.to_string (Version.promote (Version.make 0 3)));
        check Alcotest.string "2.0" "2.0"
          (Version.to_string (Version.promote (Version.make 1 4))));
    tc "bump_minor is linear" (fun () ->
        check Alcotest.string "1.3" "1.3"
          (Version.to_string (Version.bump_minor (Version.make 1 2))));
    tc "of_string round-trips" (fun () ->
        List.iter
          (fun s ->
            match Version.of_string s with
            | Ok v -> check Alcotest.string s s (Version.to_string v)
            | Error e -> Alcotest.fail e)
          [ "0.1"; "1.0"; "12.34" ]);
    tc "of_string rejects junk" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool s true (Version.of_string s |> Result.is_error))
          [ ""; "1"; "1.2.3"; "a.b"; "-1.0" ]);
    tc "compare orders major then minor" (fun () ->
        check Alcotest.bool "0.9 < 1.0" true
          (Version.compare (Version.make 0 9) (Version.make 1 0) < 0);
        check Alcotest.bool "1.1 < 1.2" true
          (Version.compare (Version.make 1 1) (Version.make 1 2) < 0));
    tc "make rejects negatives" (fun () ->
        check Alcotest.bool "raises" true
          (try ignore (Version.make (-1) 0); false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Contributor / Reference *)

let contributor_tests =
  [
    tc "to_string/of_string with affiliation" (fun () ->
        let c = Contributor.make ~affiliation:"University of Edinburgh" "Perdita Stevens" in
        let s = Contributor.to_string c in
        check Alcotest.string "rendered" "Perdita Stevens (University of Edinburgh)" s;
        check Alcotest.bool "round-trip" true
          (Contributor.equal c (Contributor.of_string s)));
    tc "of_string without affiliation" (fun () ->
        let c = Contributor.of_string "James Cheney" in
        check Alcotest.string "name" "James Cheney" c.Contributor.person_name;
        check Alcotest.bool "no affiliation" true (c.Contributor.affiliation = None));
  ]

let sample_ref =
  Reference.make
    ~authors:[ "Perdita Stevens" ]
    ~title:"A Landscape of Bidirectional Model Transformations"
    ~venue:"GTTSE" ~year:2008 ~doi:"10.1007/978-3-540-88643-3_10" ()

let reference_tests =
  [
    tc "to_line/of_line round-trips with doi" (fun () ->
        match Reference.of_line (Reference.to_line sample_ref) with
        | Ok r -> check Alcotest.bool "equal" true (r = sample_ref)
        | Error e -> Alcotest.fail e);
    tc "to_line/of_line round-trips without doi" (fun () ->
        let r = { sample_ref with Reference.ref_doi = None } in
        match Reference.of_line (Reference.to_line r) with
        | Ok r' -> check Alcotest.bool "equal" true (r = r')
        | Error e -> Alcotest.fail e);
    tc "multiple authors survive" (fun () ->
        let r =
          Reference.make ~authors:[ "A. One"; "B. Two"; "C. Three" ]
            ~title:"T" ~venue:"V" ~year:2014 ()
        in
        match Reference.of_line (Reference.to_line r) with
        | Ok r' ->
            check Alcotest.(list string) "authors"
              [ "A. One"; "B. Two"; "C. Three" ]
              r'.Reference.ref_authors
        | Error e -> Alcotest.fail e);
    tc "of_line rejects junk" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool s true (Reference.of_line s |> Result.is_error))
          [ ""; "no brackets"; "[20xx] a | b | c"; "[2014] only-author" ]);
    tc "bibtex contains key fields" (fun () ->
        let b = Reference.to_bibtex ~key:"stevens2008" sample_ref in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true
              (contains ~needle b))
          [ "stevens2008"; "GTTSE"; "2008"; "doi" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Identifier *)

let identifier_tests =
  [
    tc "of_title canonicalises" (fun () ->
        let id = Result.get_ok (Identifier.of_title "Composers") in
        check Alcotest.string "upper" "COMPOSERS" (Identifier.to_string id);
        let id2 = Result.get_ok (Identifier.of_title "UML to RDBMS!") in
        check Alcotest.string "slug" "UML-TO-RDBMS" (Identifier.to_string id2));
    tc "of_title is idempotent through of_string" (fun () ->
        let id = Result.get_ok (Identifier.of_title "Foo  Bar-Baz 3") in
        let id2 = Result.get_ok (Identifier.of_string (Identifier.to_string id)) in
        check Alcotest.bool "stable" true (Identifier.equal id id2));
    tc "titles without content are rejected" (fun () ->
        check Alcotest.bool "error" true
          (Identifier.of_title "!!! ---" |> Result.is_error));
    tc "wiki_path is lower-case under examples:" (fun () ->
        let id = Result.get_ok (Identifier.of_title "Composers") in
        check Alcotest.string "path" "examples:composers"
          (Identifier.wiki_path id));
    tc "no leading or trailing hyphens" (fun () ->
        let id = Result.get_ok (Identifier.of_title "  (Families)  ") in
        check Alcotest.string "trimmed" "FAMILIES" (Identifier.to_string id));
  ]

(* ------------------------------------------------------------------ *)
(* Template *)

let sample_template ?(version = Version.initial) ?(reviewers = []) () =
  Template.make ~title:"COMPOSERS" ~version
    ~classes:[ Template.Precise ]
    ~overview:"Two representations of the same composers."
    ~models:
      [
        Template.model_desc ~name:"M" "A set of composer objects.";
        Template.model_desc ~name:"N" "An ordered list of pairs.";
      ]
    ~consistency:"Same (name, nationality) pairs on both sides."
    ~restoration:
      {
        Template.rest_forward = "Delete unmatched entries; append missing pairs.";
        Template.rest_backward = "Delete unmatched composers; add with unknown dates.";
      }
    ~properties:
      Bx.Properties.
        [ Satisfies Correct; Satisfies Hippocratic; Violates Undoable ]
    ~discussion:"A classic example of why undoability is too strong."
    ~authors:[ Contributor.make "Perdita Stevens" ]
    ~reviewers ()

let template_tests =
  [
    tc "a complete PRECISE entry validates" (fun () ->
        match Template.validate (sample_template ()) with
        | Ok () -> ()
        | Error msgs -> Alcotest.failf "errors: %s" (String.concat "; " msgs));
    tc "PRECISE and SKETCH are mutually exclusive" (fun () ->
        let t =
          { (sample_template ()) with
            Template.classes = [ Template.Precise; Template.Sketch ] }
        in
        check Alcotest.bool "invalid" true (Template.validate t |> Result.is_error));
    tc "PRECISE needs two models and both directions" (fun () ->
        let t = { (sample_template ()) with Template.models = [ Template.model_desc ~name:"M" "only one" ] } in
        check Alcotest.bool "one model" true (Template.validate t |> Result.is_error);
        let t =
          { (sample_template ()) with
            Template.restoration = { Template.rest_forward = "f"; rest_backward = "" } }
        in
        check Alcotest.bool "missing backward" true
          (Template.validate t |> Result.is_error));
    tc "0.x entries cannot list reviewers; >=1.0 must" (fun () ->
        let t = sample_template ~reviewers:[ Contributor.make "R" ] () in
        check Alcotest.bool "0.x with reviewers" true
          (Template.validate t |> Result.is_error);
        let t = sample_template ~version:(Version.make 1 0) () in
        check Alcotest.bool "1.0 without reviewers" true
          (Template.validate t |> Result.is_error);
        let t =
          sample_template ~version:(Version.make 1 0)
            ~reviewers:[ Contributor.make "R" ] ()
        in
        check Alcotest.bool "1.0 with reviewers ok" true
          (Template.validate t = Ok ()));
    tc "required text fields must be present" (fun () ->
        let base = sample_template () in
        List.iter
          (fun t ->
            check Alcotest.bool "invalid" true
              (Template.validate t |> Result.is_error))
          [
            { base with Template.title = " " };
            { base with Template.overview = "" };
            { base with Template.consistency = "" };
            { base with Template.discussion = "" };
            { base with Template.authors = [] };
            { base with Template.classes = [] };
          ]);
    tc "a SKETCH entry may be thin" (fun () ->
        let t =
          Template.make ~title:"SPREADSHEET"
            ~classes:[ Template.Sketch ]
            ~overview:"A sketch."
            ~models:[ Template.model_desc ~name:"S" "Sheets." ]
            ~consistency:"Formulas agree with values."
            ~discussion:"Details not yet worked out."
            ~authors:[ Contributor.make "A" ]
            ()
        in
        check Alcotest.bool "valid" true (Template.validate t = Ok ()));
    tc "lint flags long overviews and missing properties" (fun () ->
        let t =
          { (sample_template ()) with
            Template.overview = "One. Two. Three. Four. Five.";
            Template.properties = [] }
        in
        check Alcotest.bool "two warnings" true (List.length (Template.lint t) >= 2));
    tc "lint is quiet on the sample" (fun () ->
        check Alcotest.(list string) "no advice" [] (Template.lint (sample_template ())));
    tc "class names round-trip" (fun () ->
        List.iter
          (fun c ->
            check Alcotest.bool "round-trip" true
              (Template.class_of_name (Template.class_name c) = Some c))
          [ Template.Precise; Template.Industrial; Template.Sketch; Template.Benchmark ]);
    tc "artefact kind names round-trip" (fun () ->
        List.iter
          (fun k ->
            check Alcotest.bool "round-trip" true
              (Template.artefact_kind_of_name (Template.artefact_kind_name k) = k))
          [ Template.Code; Template.Diagram; Template.Sample_data; Template.Proof;
            Template.Other "vm-image" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Curation *)

let curation_tests =
  [
    tc "roles and capabilities" (fun () ->
        let member = Curation.account "m" in
        let reviewer = Curation.account ~role:Curation.Reviewer "r" in
        let curator = Curation.account ~role:Curation.Curator "c" in
        check Alcotest.bool "member comments" true (Curation.can_comment member);
        check Alcotest.bool "member cannot review" false (Curation.can_review member);
        check Alcotest.bool "reviewer reviews" true (Curation.can_review reviewer);
        check Alcotest.bool "reviewer cannot approve" false (Curation.can_approve reviewer);
        check Alcotest.bool "curator approves" true (Curation.can_approve curator));
    tc "editing is controlled" (fun () ->
        let authors = [ "Alice"; "Bob" ] in
        check Alcotest.bool "author edits" true
          (Curation.can_edit ~author_names:authors (Curation.account "Alice"));
        check Alcotest.bool "stranger cannot" false
          (Curation.can_edit ~author_names:authors (Curation.account "Eve"));
        check Alcotest.bool "curator edits anything" true
          (Curation.can_edit ~author_names:authors
             (Curation.account ~role:Curation.Curator "c")));
    tc "role names round-trip" (fun () ->
        List.iter
          (fun r ->
            check Alcotest.bool "round-trip" true
              (Curation.role_of_name (Curation.role_name r) = Some r))
          [ Curation.Member; Curation.Reviewer; Curation.Curator ]);
  ]

(* ------------------------------------------------------------------ *)
(* Glossary *)

let glossary_tests =
  [
    tc "hippocraticness is in the glossary" (fun () ->
        check Alcotest.bool "found" true (Glossary.lookup "hippocratic" <> None));
    tc "extra terms are present" (fun () ->
        List.iter
          (fun term ->
            check Alcotest.bool term true (Glossary.lookup term <> None))
          [ "bx"; "state-based"; "delta-based"; "dictionary lens";
            "composition problem"; "curated repository"; "resourceful";
            "canonizer"; "quotient lens"; "constant complement";
            "view update"; "span"; "benchmark"; "alignment" ]);
    tc "lookup is case- and separator-insensitive" (fun () ->
        check Alcotest.bool "State Based" true
          (Glossary.lookup "State Based" <> None));
    tc "unknown terms return None" (fun () ->
        check Alcotest.bool "none" true (Glossary.lookup "flux capacitor" = None));
    tc "terms are sorted and nonempty" (fun () ->
        let ts = Glossary.terms () in
        check Alcotest.bool "many" true (List.length ts > 25);
        let names = List.map fst ts in
        check Alcotest.bool "sorted" true
          (List.sort String.compare names = names));
  ]

(* ------------------------------------------------------------------ *)
(* Markup *)

let markup_tests =
  [
    tc "render/parse a mixed document" (fun () ->
        let doc =
          Markup.
            [
              Heading (1, "COMPOSERS");
              Para [ Text "An example with "; Bold "bold"; Text " text." ];
              Bullets [ "first"; "second" ];
              Code_block [ "let x = 1"; "let y = 2" ];
              Heading (2, "Discussion");
              Para [ Text "Plain paragraph." ];
            ]
        in
        match Markup.parse (Markup.render doc) with
        | Ok doc' -> check Alcotest.bool "round-trip" true (Markup.equal doc doc')
        | Error e -> Alcotest.fail e);
    tc "heading levels parse" (fun () ->
        match Markup.parse "+ One\n\n++ Two\n\n+++ Three\n" with
        | Ok [ Markup.Heading (1, "One"); Markup.Heading (2, "Two");
               Markup.Heading (3, "Three") ] -> ()
        | Ok doc -> Alcotest.failf "unexpected: %s" (Fmt.str "%a" Markup.pp doc)
        | Error e -> Alcotest.fail e);
    tc "inline markup parses" (fun () ->
        let inlines = Markup.parse_inlines "a **b** //c// {{d}} [[[t|l]]] e" in
        check Alcotest.string "plain" "a b c d l e" (Markup.plain_text inlines);
        check Alcotest.string "re-render" "a **b** //c// {{d}} [[[t|l]]] e"
          (Markup.render_inlines inlines));
    tc "unbalanced markers are literal" (fun () ->
        let inlines = Markup.parse_inlines "a ** b" in
        check Alcotest.string "literal" "a ** b" (Markup.render_inlines inlines));
    tc "link without label uses target" (fun () ->
        match Markup.parse_inlines "[[[page]]]" with
        | [ Markup.Link { target = "page"; label = "page" } ] -> ()
        | _ -> Alcotest.fail "expected self-labelled link");
    tc "multi-line paragraphs join with spaces" (fun () ->
        match Markup.parse "line one\nline two\n" with
        | Ok [ Markup.Para inlines ] ->
            check Alcotest.string "joined" "line one line two"
              (Markup.plain_text inlines)
        | _ -> Alcotest.fail "expected one paragraph");
    tc "unterminated code block errors" (fun () ->
        check Alcotest.bool "error" true
          (Markup.parse "[[code]]\nno end\n" |> Result.is_error));
    tc "empty document renders to empty string" (fun () ->
        check Alcotest.string "empty" "" (Markup.render []);
        check Alcotest.bool "parses" true (Markup.parse "" = Ok []));
    tc "consecutive bullets group into one block" (fun () ->
        match Markup.parse "* a\n* b\n\n* c\n" with
        | Ok [ Markup.Bullets [ "a"; "b" ]; Markup.Bullets [ "c" ] ] -> ()
        | Ok doc -> Alcotest.failf "unexpected: %s" (Fmt.str "%a" Markup.pp doc)
        | Error e -> Alcotest.fail e);
  ]

(* Property: parse inverts render on canonical generated documents. *)
let markup_prop_tests =
  let text_gen =
    QCheck2.Gen.(
      map
        (fun ws -> String.concat " " ws)
        (list_size (1 -- 5) (string_size ~gen:(char_range 'a' 'z') (1 -- 6))))
  in
  let block_gen =
    QCheck2.Gen.(
      oneof
        [
          map (fun t -> Markup.Heading (1, t)) text_gen;
          map (fun t -> Markup.Heading (2, t)) text_gen;
          map (fun t -> Markup.Para [ Markup.Text t ]) text_gen;
          map (fun items -> Markup.Bullets items) (list_size (1 -- 4) text_gen);
          map (fun lines -> Markup.Code_block lines) (list_size (1 -- 3) text_gen);
        ])
  in
  let doc_gen = QCheck2.Gen.(list_size (0 -- 8) block_gen) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"parse inverts render on canonical docs"
         doc_gen
         (fun doc -> Markup.parse (Markup.render doc) = Ok doc));
  ]

(* ------------------------------------------------------------------ *)
(* Sync lens (E5) *)

let sync_tests =
  [
    tc "GetPut: putting the rendered page back changes nothing" (fun () ->
        let t = Sync.normalise (sample_template ()) in
        let lens = Sync.lens () in
        let t' = lens.Bx.Lens.put (lens.Bx.Lens.get t) t in
        check Alcotest.bool "identity" true (Template.equal t t'));
    tc "PutGet: a canonical page survives a round trip" (fun () ->
        let t = Sync.normalise (sample_template ()) in
        let lens = Sync.lens () in
        let doc = lens.Bx.Lens.get t in
        let doc' = lens.Bx.Lens.get (lens.Bx.Lens.put doc (Sync.blank ~title:"X")) in
        check Alcotest.bool "stable" true (Markup.equal doc doc'));
    tc "editing the overview through the wiki propagates" (fun () ->
        let t = Sync.normalise (sample_template ()) in
        let lens = Sync.lens () in
        let doc = lens.Bx.Lens.get t in
        let doc' =
          List.map
            (function
              | Markup.Heading (2, "Overview") -> Markup.Heading (2, "Overview")
              | b -> b)
            doc
        in
        (* Replace the paragraph after the Overview heading. *)
        let rec replace = function
          | Markup.Heading (2, "Overview") :: Markup.Para _ :: rest ->
              Markup.Heading (2, "Overview")
              :: Markup.Para [ Markup.Text "Edited overview." ]
              :: rest
          | b :: rest -> b :: replace rest
          | [] -> []
        in
        let t' = lens.Bx.Lens.put (replace doc') t in
        check Alcotest.string "overview" "Edited overview." t'.Template.overview;
        check Alcotest.string "title untouched" t.Template.title t'.Template.title);
    tc "deleting an optional section deletes the data" (fun () ->
        let t = Sync.normalise (sample_template ()) in
        let lens = Sync.lens () in
        let doc = lens.Bx.Lens.get t in
        let rec drop_properties = function
          | Markup.Heading (2, "Properties") :: Markup.Bullets _ :: rest -> rest
          | b :: rest -> b :: drop_properties rest
          | [] -> []
        in
        let t' = lens.Bx.Lens.put (drop_properties doc) t in
        check Alcotest.bool "properties emptied" true
          (t'.Template.properties = []));
    tc "deleting a required section falls back to the old value" (fun () ->
        let t = Sync.normalise (sample_template ()) in
        let lens = Sync.lens () in
        let doc = lens.Bx.Lens.get t in
        let rec drop_overview = function
          | Markup.Heading (2, "Overview") :: Markup.Para _ :: rest -> rest
          | b :: rest -> b :: drop_overview rest
          | [] -> []
        in
        let t' = lens.Bx.Lens.put (drop_overview doc) t in
        check Alcotest.string "overview kept" t.Template.overview
          t'.Template.overview);
    tc "unknown sections are ignored (complement)" (fun () ->
        let t = Sync.normalise (sample_template ()) in
        let lens = Sync.lens () in
        let doc =
          lens.Bx.Lens.get t
          @ [ Markup.Heading (2, "Trivia"); Markup.Para [ Markup.Text "x" ] ]
        in
        let t' = lens.Bx.Lens.put doc t in
        check Alcotest.bool "fields unchanged" true (Template.equal t t'));
    tc "create builds a template from scratch" (fun () ->
        let t = Sync.normalise (sample_template ()) in
        let lens = Sync.lens () in
        let t' = lens.Bx.Lens.create (lens.Bx.Lens.get t) in
        check Alcotest.string "title" t.Template.title t'.Template.title;
        check Alcotest.bool "same version" true
          (Version.equal t.Template.version t'.Template.version);
        check Alcotest.bool "same models" true
          (t'.Template.models = t.Template.models));
    tc "restoration subsections round-trip" (fun () ->
        let t = Sync.normalise (sample_template ()) in
        match Sync.of_wiki_text (Sync.wiki_text t) with
        | Ok t' ->
            check Alcotest.string "forward"
              t.Template.restoration.Template.rest_forward
              t'.Template.restoration.Template.rest_forward;
            check Alcotest.string "backward"
              t.Template.restoration.Template.rest_backward
              t'.Template.restoration.Template.rest_backward
        | Error e -> Alcotest.fail e);
    tc "references and properties survive the wiki round trip" (fun () ->
        let t =
          Sync.normalise
            { (sample_template ()) with Template.references = [ sample_ref ] }
        in
        match Sync.of_wiki_text (Sync.wiki_text t) with
        | Ok t' ->
            check Alcotest.bool "references" true
              (t'.Template.references = t.Template.references);
            check Alcotest.bool "properties" true
              (t'.Template.properties = t.Template.properties)
        | Error e -> Alcotest.fail e);
    tc "malformed pages are rejected" (fun () ->
        check Alcotest.bool "no title" true
          (Sync.of_wiki_text "just a paragraph\n" |> Result.is_error);
        check Alcotest.bool "bad version" true
          (Sync.of_wiki_text "+ T\n\n++ Version\n\nnot-a-version\n"
          |> Result.is_error));
    tc "normalise is idempotent" (fun () ->
        let t =
          { (sample_template ()) with
            Template.discussion = "para  one\nwith   spaces\n\npara two" }
        in
        let n1 = Sync.normalise t in
        let n2 = Sync.normalise n1 in
        check Alcotest.bool "idempotent" true (Template.equal n1 n2);
        check Alcotest.string "paragraphs kept"
          "para one with spaces\n\npara two" n1.Template.discussion);
  ]

(* ------------------------------------------------------------------ *)
(* Registry (E6) *)

let member = Curation.account "Perdita Stevens"
let other_member = Curation.account "Someone Else"
let reviewer = Curation.account ~role:Curation.Reviewer "A Reviewer"
let author_reviewer = Curation.account ~role:Curation.Reviewer "Perdita Stevens"
let curator = Curation.account ~role:Curation.Curator "James Cheney"

let submit_sample reg =
  ok_or_fail (Registry.submit reg ~as_:member (sample_template ()))

let registry_tests =
  [
    tc "submit assigns the title's identifier" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        check Alcotest.string "id" "COMPOSERS" (Identifier.to_string id);
        check Alcotest.int "size" 1 (Registry.size reg));
    tc "duplicate submission conflicts" (fun () ->
        let reg = Registry.create () in
        let _ = submit_sample reg in
        match Registry.submit reg ~as_:member (sample_template ()) with
        | Error (Registry.Conflict _) -> ()
        | _ -> Alcotest.fail "expected conflict");
    tc "submission must be provisional and valid" (fun () ->
        let reg = Registry.create () in
        let t = sample_template ~version:(Version.make 1 0)
            ~reviewers:[ Contributor.make "R" ] () in
        (match Registry.submit reg ~as_:member t with
        | Error (Registry.Invalid _) -> ()
        | _ -> Alcotest.fail "expected invalid");
        let bad = { (sample_template ()) with Template.overview = "" } in
        match Registry.submit reg ~as_:member bad with
        | Error (Registry.Invalid _) -> ()
        | _ -> Alcotest.fail "expected invalid");
    tc "comments append to the latest version" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        ok_or_fail (Registry.comment reg ~as_:other_member id ~text:"Nice example");
        let t = ok_or_fail (Registry.latest reg id) in
        check Alcotest.int "one comment" 1 (List.length t.Template.comments);
        check Alcotest.string "attributed" "Someone Else"
          (List.hd t.Template.comments).Template.comment_author);
    tc "member cannot endorse; reviewer can; author-reviewer cannot" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        (match Registry.endorse reg ~as_:member id with
        | Error (Registry.Permission_denied _) -> ()
        | _ -> Alcotest.fail "member endorsed");
        ok_or_fail (Registry.endorse reg ~as_:reviewer id);
        (match Registry.endorse reg ~as_:author_reviewer id with
        | Error (Registry.Permission_denied _) -> ()
        | _ -> Alcotest.fail "author endorsed own entry");
        check Alcotest.(list string) "one endorsement" [ "A Reviewer" ]
          (ok_or_fail (Registry.endorsements reg id)));
    tc "double endorsement conflicts" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        ok_or_fail (Registry.endorse reg ~as_:reviewer id);
        match Registry.endorse reg ~as_:reviewer id with
        | Error (Registry.Conflict _) -> ()
        | _ -> Alcotest.fail "expected conflict");
    tc "approval requires curator and an endorsement" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        (match Registry.approve reg ~as_:reviewer id with
        | Error (Registry.Permission_denied _) -> ()
        | _ -> Alcotest.fail "reviewer approved");
        (match Registry.approve reg ~as_:curator id with
        | Error (Registry.Conflict _) -> ()
        | _ -> Alcotest.fail "approved without endorsement");
        ok_or_fail (Registry.endorse reg ~as_:reviewer id);
        let v = ok_or_fail (Registry.approve reg ~as_:curator id) in
        check Alcotest.string "promoted" "1.0" (Version.to_string v);
        let t = ok_or_fail (Registry.latest reg id) in
        check Alcotest.bool "reviewers recorded" true
          (List.exists
             (fun c -> c.Contributor.person_name = "A Reviewer")
             t.Template.reviewers));
    tc "old versions remain available after approval" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        ok_or_fail (Registry.endorse reg ~as_:reviewer id);
        let _ = ok_or_fail (Registry.approve reg ~as_:curator id) in
        let vs = ok_or_fail (Registry.versions reg id) in
        check Alcotest.(list string) "both versions" [ "0.1"; "1.0" ]
          (List.map Version.to_string vs);
        let old = ok_or_fail (Registry.find_version reg id Version.initial) in
        check Alcotest.bool "0.1 retrievable" true
          (Version.is_provisional old.Template.version));
    tc "revise bumps the minor version and respects permissions" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        let edited =
          { (sample_template ()) with Template.discussion = "Updated discussion." }
        in
        (match Registry.revise reg ~as_:other_member id edited with
        | Error (Registry.Permission_denied _) -> ()
        | _ -> Alcotest.fail "stranger revised");
        let v = ok_or_fail (Registry.revise reg ~as_:member id edited) in
        check Alcotest.string "0.2" "0.2" (Version.to_string v);
        let v2 = ok_or_fail (Registry.revise reg ~as_:curator id edited) in
        check Alcotest.string "0.3" "0.3" (Version.to_string v2));
    tc "revise may not change the title" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        let renamed = { (sample_template ()) with Template.title = "OTHER" } in
        match Registry.revise reg ~as_:member id renamed with
        | Error (Registry.Conflict _) -> ()
        | _ -> Alcotest.fail "title changed");
    tc "search by class, property and text" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        let hit q = Registry.search reg q = [ id ] in
        check Alcotest.bool "by class" true
          (hit (Registry.query ~cls:Template.Precise ()));
        check Alcotest.bool "by property" true
          (hit (Registry.query
                  ~property:(Bx.Properties.Violates Bx.Properties.Undoable) ()));
        check Alcotest.bool "by text" true
          (hit (Registry.query ~text:"undoability" ()));
        check Alcotest.bool "miss" true
          (Registry.search reg (Registry.query ~text:"zebra" ()) = []));
    tc "citation mentions title, version and wiki path" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        let c = ok_or_fail (Registry.cite reg id) in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true (contains ~needle c))
          [ "COMPOSERS"; "0.1"; "examples:composers" ]);
    tc "citations pin old versions after revision" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        let _ =
          ok_or_fail
            (Registry.revise reg ~as_:member id
               { (sample_template ()) with Template.discussion = "v2" })
        in
        let c = ok_or_fail (Registry.cite reg ~version:Version.initial id) in
        check Alcotest.bool "cites 0.1" true
          (contains ~needle:"version 0.1" c));
    tc "bibtex citation renders" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        let b = ok_or_fail (Registry.cite_bibtex reg id) in
        check Alcotest.bool "misc" true (contains ~needle:"@misc" b));
    tc "export/import round-trips the store" (fun () ->
        let reg = Registry.create () in
        let id = submit_sample reg in
        ok_or_fail (Registry.endorse reg ~as_:reviewer id);
        let _ = ok_or_fail (Registry.approve reg ~as_:curator id) in
        let pages = Registry.export reg in
        (* one page per version plus the latest alias *)
        check Alcotest.int "three pages" 3 (List.length pages);
        match Registry.import pages with
        | Error e -> Alcotest.fail e
        | Ok reg' ->
            check Alcotest.(list string) "same ids"
              (List.map Identifier.to_string (Registry.ids reg))
              (List.map Identifier.to_string (Registry.ids reg'));
            let vs = ok_or_fail (Registry.versions reg' id) in
            check Alcotest.(list string) "same versions" [ "0.1"; "1.0" ]
              (List.map Version.to_string vs);
            let t = ok_or_fail (Registry.latest reg' id) in
            let t0 = ok_or_fail (Registry.latest reg id) in
            check Alcotest.bool "same latest template" true
              (Template.equal (Sync.normalise t0) (Sync.normalise t)));
    tc "lookups on unknown ids fail cleanly" (fun () ->
        let reg = Registry.create () in
        let ghost = Result.get_ok (Identifier.of_title "GHOST") in
        (match Registry.latest reg ghost with
        | Error (Registry.Not_found _) -> ()
        | _ -> Alcotest.fail "expected not found");
        match Registry.cite reg ghost with
        | Error (Registry.Not_found _) -> ()
        | _ -> Alcotest.fail "expected not found");
  ]

(* ------------------------------------------------------------------ *)
(* Filesystem store *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bxstore-test-%d" (Unix.getpid ()))
  in
  let rec cleanup path =
    if Sys.file_exists path then begin
      if Sys.is_directory path then begin
        Array.iter (fun n -> cleanup (Filename.concat path n)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    end
  in
  cleanup dir;
  Fun.protect ~finally:(fun () -> cleanup dir) (fun () -> f dir)

let seeded_registry () =
  let reg = Registry.create () in
  let id = ok_or_fail (Registry.submit reg ~as_:member (sample_template ())) in
  ok_or_fail (Registry.endorse reg ~as_:reviewer id);
  let _ = ok_or_fail (Registry.approve reg ~as_:curator id) in
  (reg, id)

let store_tests =
  [
    tc "save writes one file per page plus the index" (fun () ->
        with_temp_dir (fun dir ->
            let reg, _ = seeded_registry () in
            match Store.save ~dir reg with
            | Error e -> Alcotest.fail e
            | Ok n ->
                (* two versions + latest alias + json sidecar + index *)
                check Alcotest.int "files" 5 n;
                check Alcotest.bool "index exists" true
                  (Sys.file_exists (Filename.concat dir "INDEX.wiki"));
                check Alcotest.bool "json sidecar parses" true
                  (let file = Filename.concat dir "examples_composers.json" in
                   Sys.file_exists file
                   &&
                   let ic = open_in file in
                   let contents =
                     Fun.protect
                       ~finally:(fun () -> close_in ic)
                       (fun () -> really_input_string ic (in_channel_length ic))
                   in
                   Result.is_ok (Json_codec.of_string contents))));
    tc "load round-trips the registry" (fun () ->
        with_temp_dir (fun dir ->
            let reg, id = seeded_registry () in
            (match Store.save ~dir reg with
            | Error e -> Alcotest.fail e
            | Ok _ -> ());
            match Store.load ~dir () with
            | Error e -> Alcotest.fail e
            | Ok reg' ->
                check Alcotest.int "one entry" 1 (Registry.size reg');
                let vs = ok_or_fail (Registry.versions reg' id) in
                check Alcotest.(list string) "versions" [ "0.1"; "1.0" ]
                  (List.map Version.to_string vs);
                let t = ok_or_fail (Registry.latest reg' id) in
                let t0 = ok_or_fail (Registry.latest reg id) in
                check Alcotest.bool "same template" true
                  (Template.equal (Sync.normalise t0) (Sync.normalise t))));
    tc "load ignores the index and latest aliases" (fun () ->
        with_temp_dir (fun dir ->
            let reg, _ = seeded_registry () in
            (match Store.save ~dir reg with Ok _ -> () | Error e -> Alcotest.fail e);
            match Store.load ~dir () with
            | Ok reg' ->
                (* Exactly the two versioned pages, not four entries. *)
                check Alcotest.int "one entry" 1 (Registry.size reg')
            | Error e -> Alcotest.fail e));
    tc "load on a missing directory errors" (fun () ->
        check Alcotest.bool "error" true
          (Result.is_error (Store.load ~dir:"/nonexistent/bx-dir" ())));
    tc "page_filename flattens path separators" (fun () ->
        check Alcotest.string "flattened" "examples_composers_0.1.wiki"
          (Store.page_filename "examples:composers/0.1"));
  ]

(* ------------------------------------------------------------------ *)
(* Manuscript and index (section 5.2) *)

let two_entry_registry () =
  let reg = Registry.create () in
  let _ = ok_or_fail (Registry.submit reg ~as_:member (sample_template ())) in
  let second =
    { (sample_template ()) with
      Template.title = "OTHER";
      Template.authors = [ Contributor.make "Someone Else" ];
      Template.references = [ sample_ref ];
      Template.properties = Bx.Properties.[ Satisfies Correct ] }
  in
  let t =
    { (sample_template ()) with
      Template.references = [ sample_ref ] }
  in
  (* Replace COMPOSERS with a version that shares a reference. *)
  let _ = ok_or_fail (Registry.revise reg ~as_:member
                        (Result.get_ok (Identifier.of_title "COMPOSERS")) t) in
  let _ = ok_or_fail (Registry.submit reg ~as_:other_member second) in
  reg

let manuscript_tests =
  [
    tc "manuscript contains every entry and the credits" (fun () ->
        let reg = two_entry_registry () in
        let text = Manuscript.generate reg in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true (contains ~needle text))
          [ "Collected Examples"; "COMPOSERS"; "OTHER"; "Credits";
            "Perdita Stevens"; "Someone Else"; "Contents" ]);
    tc "manuscript is parseable wiki markup" (fun () ->
        let reg = two_entry_registry () in
        match Markup.parse (Manuscript.generate reg) with
        | Ok doc -> check Alcotest.bool "nonempty" true (List.length doc > 10)
        | Error e -> Alcotest.fail e);
    tc "entry headings are demoted below the manuscript title" (fun () ->
        let reg = two_entry_registry () in
        match Markup.parse (Manuscript.generate reg) with
        | Error e -> Alcotest.fail e
        | Ok doc ->
            let level1 =
              List.filter
                (function Markup.Heading (1, _) -> true | _ -> false)
                doc
            in
            check Alcotest.int "single top heading" 1 (List.length level1));
    tc "contributors maps people to their entries" (fun () ->
        let reg = two_entry_registry () in
        let cs = Manuscript.contributors reg in
        check Alcotest.bool "stevens on composers" true
          (List.assoc_opt "Perdita Stevens" cs = Some [ "COMPOSERS" ]);
        check Alcotest.bool "else on other" true
          (List.assoc_opt "Someone Else" cs = Some [ "OTHER" ]));
    tc "bibliography has one record per entry plus the repository" (fun () ->
        let reg = two_entry_registry () in
        let bib = Manuscript.bibliography reg in
        check Alcotest.bool "composers" true (contains ~needle:"composers-0.2" bib);
        check Alcotest.bool "other" true (contains ~needle:"other-0.1" bib);
        check Alcotest.bool "repository" true
          (contains ~needle:"bx-examples-repository" bib));
  ]

let index_tests =
  [
    tc "by_class groups and sorts" (fun () ->
        let reg = two_entry_registry () in
        let groups = Catalogue_index.by_class reg in
        check Alcotest.bool "precise group" true
          (match List.assoc_opt Template.Precise groups with
           | Some ids ->
               List.map Identifier.to_string ids = [ "COMPOSERS"; "OTHER" ]
           | None -> false));
    tc "by_property includes negative claims" (fun () ->
        let reg = two_entry_registry () in
        let groups = Catalogue_index.by_property reg in
        check Alcotest.bool "not undoable -> composers" true
          (List.exists
             (fun (claim, ids) ->
               Bx.Properties.claim_name claim = "not undoable"
               && List.map Identifier.to_string ids = [ "COMPOSERS" ])
             groups));
    tc "by_author and by_reference trace provenance" (fun () ->
        let reg = two_entry_registry () in
        check Alcotest.bool "stevens authors composers" true
          (List.assoc_opt "Perdita Stevens" (Catalogue_index.by_author reg)
           |> Option.map (List.map Identifier.to_string)
           = Some [ "COMPOSERS" ]);
        check Alcotest.bool "shared source indexes both" true
          (List.assoc_opt sample_ref.Reference.ref_title
             (Catalogue_index.by_reference reg)
           |> Option.map (List.map Identifier.to_string)
           = Some [ "COMPOSERS"; "OTHER" ]));
    tc "related finds entries sharing a source" (fun () ->
        let reg = two_entry_registry () in
        let composers = Result.get_ok (Identifier.of_title "COMPOSERS") in
        check Alcotest.(list string) "other is related" [ "OTHER" ]
          (List.map Identifier.to_string (Catalogue_index.related reg composers)));
    tc "render produces a parseable page" (fun () ->
        let reg = two_entry_registry () in
        let text = Markup.render (Catalogue_index.render reg) in
        check Alcotest.bool "parses" true (Result.is_ok (Markup.parse text)));
  ]

(* ------------------------------------------------------------------ *)
(* Robustness: junk in, errors (not crashes) out *)

let robustness_tests =
  [
    tc "markup parse never raises on arbitrary text" (fun () ->
        let inputs =
          [ "+"; "++"; "*"; "* "; "[[code]]"; "[[code]]\nx\n[[/code]]";
            "+++++++ deep"; "a\n\n\n\nb"; "** unbalanced"; "{{"; "[[[";
            String.make 1000 '*'; "\n\n\n" ]
        in
        List.iter
          (fun s ->
            match Markup.parse s with
            | Ok _ | Error _ -> ())
          inputs);
    tc "sync rejects pages whose sections are malformed" (fun () ->
        List.iter
          (fun page ->
            check Alcotest.bool "rejected" true
              (Result.is_error (Sync.of_wiki_text page)))
          [
            "+ T\n\n++ Version\n\nbogus\n";
            "+ T\n\n++ Type\n\nNOT-A-CLASS\n";
            "+ T\n\n++ Properties\n\n* not-a-property\n";
            "+ T\n\n++ Models\n\n* malformed bullet without colon\n";
            "+ T\n\n++ References\n\n* not a reference line\n";
          ]);
    tc "registry import surfaces the offending page" (fun () ->
        let pages = [ ("examples:x/0.1", "not even a heading\n") ] in
        match Registry.import pages with
        | Error msg ->
            check Alcotest.bool "mentions the page" true
              (contains ~needle:"examples:x" msg)
        | Ok _ -> Alcotest.fail "expected failure");
    tc "registry import rejects bad version segments" (fun () ->
        let pages = [ ("examples:x/banana", "+ X\n") ] in
        check Alcotest.bool "error" true (Result.is_error (Registry.import pages)));
    tc "store load skips files without version suffixes" (fun () ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "bx-junk-%d" (Unix.getpid ()))
        in
        let cleanup () =
          if Sys.file_exists dir then begin
            Array.iter
              (fun n -> Sys.remove (Filename.concat dir n))
              (Sys.readdir dir);
            Sys.rmdir dir
          end
        in
        cleanup ();
        Sys.mkdir dir 0o755;
        Fun.protect ~finally:cleanup (fun () ->
            let oc = open_out (Filename.concat dir "README.wiki") in
            output_string oc "not an entry";
            close_out oc;
            let oc = open_out (Filename.concat dir "notes.txt") in
            output_string oc "junk";
            close_out oc;
            match Store.load ~dir () with
            | Ok reg -> check Alcotest.int "empty registry" 0 (Registry.size reg)
            | Error e -> Alcotest.fail e));
    tc "version parsing is total on junk" (fun () ->
        List.iter
          (fun s -> ignore (Version.of_string s))
          [ "\xff\xfe"; "...."; "-"; "9999999999999999999999.0" ]);
    tc "identifier canonicalisation is total" (fun () ->
        List.iter
          (fun s -> ignore (Identifier.of_title s))
          [ ""; "\x00\x01"; String.make 500 '-'; "ünïcode-ish" ]);
  ]

let markup_fuzz_tests =
  let gen =
    QCheck2.Gen.(
      string_size ~gen:(oneofl [ '+'; '*'; ' '; 'a'; '\n'; '['; ']'; '{'; '}'; '/' ])
        (0 -- 60))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500 ~name:"markup parse is total on marker soup"
         gen
         (fun s ->
           match Markup.parse s with Ok _ | Error _ -> true));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"render of whatever parses re-parses (idempotent fixpoint)"
         gen
         (fun s ->
           match Markup.parse s with
           | Error _ -> true
           | Ok doc -> (
               match Markup.parse (Markup.render doc) with
               | Ok doc2 -> Markup.render doc2 = Markup.render doc
               | Error _ -> false)));
  ]

(* ------------------------------------------------------------------ *)
(* Version diffs and Markdown export *)

let diff_tests =
  [
    tc "identical templates have no changes" (fun () ->
        check Alcotest.bool "empty" true
          (Diff.templates (sample_template ()) (sample_template ()) = []));
    tc "changed fields are reported with before and after" (fun () ->
        let t1 = sample_template () in
        let t2 = { t1 with Template.overview = "New overview." } in
        match Diff.templates t1 t2 with
        | [ c ] ->
            check Alcotest.string "field" "overview" c.Diff.field;
            check Alcotest.string "before" t1.Template.overview c.Diff.before;
            check Alcotest.string "after" "New overview." c.Diff.after
        | cs -> Alcotest.failf "expected one change, got %d" (List.length cs));
    tc "list fields diff too" (fun () ->
        let t1 = sample_template () in
        let t2 =
          { t1 with
            Template.properties = Bx.Properties.[ Satisfies Correct ] }
        in
        check Alcotest.bool "properties changed" true
          (List.exists (fun c -> c.Diff.field = "properties")
             (Diff.templates t1 t2)));
    tc "the version field is never reported" (fun () ->
        let t1 = sample_template () in
        let t2 = { t1 with Template.version = Version.make 0 2 } in
        check Alcotest.bool "no change rows" true (Diff.templates t1 t2 = []));
    tc "pp renders a +/- block" (fun () ->
        let t1 = sample_template () in
        let t2 = { t1 with Template.discussion = "changed" } in
        let text = Fmt.str "%a" Diff.pp (Diff.templates t1 t2) in
        check Alcotest.bool "minus line" true (contains ~needle:"- " text);
        check Alcotest.bool "plus line" true (contains ~needle:"+ changed" text));
  ]

let markdown_tests =
  [
    tc "blocks render to their markdown forms" (fun () ->
        let doc =
          Markup.
            [
              Heading (1, "Title");
              Heading (3, "Sub");
              Para [ Text "plain "; Bold "bold"; Italic "it"; Code "c";
                     Link { target = "t"; label = "l" } ];
              Bullets [ "one"; "two" ];
              Code_block [ "let x = 1" ];
            ]
        in
        let md = Markup.to_markdown doc in
        List.iter
          (fun needle -> check Alcotest.bool needle true (contains ~needle md))
          [ "# Title"; "### Sub"; "**bold**"; "*it*"; "`c`"; "[l](t)";
            "- one"; "```" ]);
    tc "empty document renders empty" (fun () ->
        check Alcotest.string "empty" "" (Markup.to_markdown []));
    tc "a full entry renders to markdown" (fun () ->
        let md =
          Markup.to_markdown (Sync.render_entry (Sync.normalise (sample_template ())))
        in
        check Alcotest.bool "has title" true (contains ~needle:"# COMPOSERS" md);
        check Alcotest.bool "has sections" true (contains ~needle:"## Overview" md));
  ]

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let json_codec_tests =
  [
    tc "decode inverts encode on the sample" (fun () ->
        let t = sample_template () in
        match Json_codec.decode (Json_codec.encode t) with
        | Ok t' -> check Alcotest.bool "equal" true (Template.equal t t')
        | Error e -> Alcotest.fail e);
    tc "string round trip, compact and pretty" (fun () ->
        let t = sample_template () in
        (match Json_codec.of_string (Json_codec.to_string t) with
        | Ok t' -> check Alcotest.bool "compact" true (Template.equal t t')
        | Error e -> Alcotest.fail e);
        match Json_codec.of_string (Json_codec.to_string ~indent:2 t) with
        | Ok t' -> check Alcotest.bool "pretty" true (Template.equal t t')
        | Error e -> Alcotest.fail e);
    tc "all optional structure survives" (fun () ->
        let t =
          { (sample_template ()) with
            Template.references = [ sample_ref ];
            Template.variants = [ Template.variant ~name:"v" "desc" ];
            Template.comments = [ Template.comment ~author:"a" "text" ];
            Template.artefacts =
              [ Template.artefact ~name:"impl" ~kind:Template.Code "here.ml" ];
            Template.models =
              [
                Template.model_desc ~name:"M" ~meta_model:"(a)*" "with meta";
                Template.model_desc ~name:"N" "plain";
              ] }
        in
        match Json_codec.decode (Json_codec.encode t) with
        | Ok t' -> check Alcotest.bool "equal" true (Template.equal t t')
        | Error e -> Alcotest.fail e);
    tc "decode rejects broken documents" (fun () ->
        List.iter
          (fun json ->
            check Alcotest.bool json true
              (Result.is_error (Json_codec.of_string json)))
          [
            "{}";
            "{\"title\": \"X\"}";
            "{\"title\": \"X\", \"version\": \"zero\", \"overview\": \"o\", \"consistency\": \"c\", \"discussion\": \"d\"}";
          ]);
    tc "unknown property claims are rejected" (fun () ->
        let t = sample_template () in
        let json = Json_codec.encode t in
        let broken =
          match json with
          | Bx_models.Json.Obj fields ->
              Bx_models.Json.Obj
                (List.map
                   (fun (k, v) ->
                     if k = "properties" then
                       (k, Bx_models.Json.List [ Bx_models.Json.String "sparkly" ])
                     else (k, v))
                   fields)
          | _ -> Alcotest.fail "expected object"
        in
        check Alcotest.bool "rejected" true
          (Result.is_error (Json_codec.decode broken)));
    tc "every catalogue entry round-trips through JSON" (fun () ->
        List.iter
          (fun t ->
            match Json_codec.decode (Json_codec.encode t) with
            | Ok t' ->
                check Alcotest.bool t.Template.title true (Template.equal t t')
            | Error e -> Alcotest.failf "%s: %s" t.Template.title e)
          (Bx_catalogue.Catalogue.all ()));
  ]

(* ------------------------------------------------------------------ *)
(* Round-trip properties over random templates *)

let random_template_tests =
  let gen = Bx_check.Generators.template in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"sync GetPut: put (render t) t = t on random templates" gen
         (fun t ->
           let t = Sync.normalise t in
           let lens = Sync.lens () in
           Template.equal t (lens.Bx.Lens.put (lens.Bx.Lens.get t) t)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"sync PutGet: rendered pages survive a round trip" gen
         (fun t ->
           let t = Sync.normalise t in
           let lens = Sync.lens () in
           let doc = lens.Bx.Lens.get t in
           Markup.equal doc (lens.Bx.Lens.get (lens.Bx.Lens.create doc))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"wiki text parses back to the same template" gen
         (fun t ->
           let t = Sync.normalise t in
           match Sync.of_wiki_text (Sync.wiki_text t) with
           | Ok t' -> Template.equal t t'
           | Error _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"JSON decode inverts encode on random templates" gen
         (fun t ->
           match Json_codec.of_string (Json_codec.to_string t) with
           | Ok t' -> Template.equal t t'
           | Error _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"markdown export is total on random templates" gen
         (fun t ->
           String.length (Markup.to_markdown (Sync.render_entry t)) > 0));
  ]

(* ------------------------------------------------------------------ *)
(* The wiki's request handler (bxwiki, minus the sockets) *)

let webui_tests =
  let fresh () = Bx_catalogue.Catalogue.seed () in
  let get reg path =
    Webui.handle reg ~meth:"GET" ~path ~body:""
  in
  [
    tc "index lists the entries" (fun () ->
        let r = get (fresh ()) "/" in
        check Alcotest.int "200" 200 r.Webui.status;
        check Alcotest.bool "mentions composers" true
          (contains ~needle:"COMPOSERS" r.Webui.body);
        check Alcotest.bool "html" true
          (contains ~needle:"text/html" r.Webui.content_type));
    tc "entry pages render in three formats" (fun () ->
        let reg = fresh () in
        let html = get reg "/examples:lines" in
        check Alcotest.int "html 200" 200 html.Webui.status;
        check Alcotest.bool "has heading" true
          (contains ~needle:"<h1>LINES</h1>" html.Webui.body);
        let wiki = get reg "/examples:lines.wiki" in
        check Alcotest.bool "wiki text" true
          (contains ~needle:"+ LINES" wiki.Webui.body);
        check Alcotest.bool "plain" true
          (contains ~needle:"text/plain" wiki.Webui.content_type);
        let json = get reg "/examples:lines.json" in
        check Alcotest.bool "json" true
          (contains ~needle:"\"title\": \"LINES\"" json.Webui.body));
    tc "unknown pages 404; unknown methods 405" (fun () ->
        let reg = fresh () in
        check Alcotest.int "404" 404 (get reg "/examples:ghost").Webui.status;
        check Alcotest.int "405" 405
          (Webui.handle reg ~meth:"PUT" ~path:"/" ~body:"").Webui.status);
    tc "extra pages mount on GET routes" (fun () ->
        let reg = fresh () in
        let r =
          Webui.handle
            ~pages:[ ("/checks", fun () -> ("Checks", "<p>stub</p>")) ]
            reg ~meth:"GET" ~path:"/checks" ~body:""
        in
        check Alcotest.int "200" 200 r.Webui.status;
        check Alcotest.bool "body" true (contains ~needle:"stub" r.Webui.body));
    tc "the glossary is served" (fun () ->
        let r = get (fresh ()) "/glossary" in
        check Alcotest.int "200" 200 r.Webui.status;
        check Alcotest.bool "hippocratic defined" true
          (contains ~needle:"hippocratic" r.Webui.body));
    tc "the manuscript is served" (fun () ->
        let r = get (fresh ()) "/manuscript" in
        check Alcotest.int "200" 200 r.Webui.status;
        check Alcotest.bool "collected" true
          (contains ~needle:"Collected Examples" r.Webui.body));
    tc "POST edits a page through the Sync lens and bumps the version" (fun () ->
        let reg = fresh () in
        let before = get reg "/examples:lines.wiki" in
        let edited =
          Str.global_replace (Str.regexp_string "0.1") "0.1" before.Webui.body
          |> fun s ->
          (* Change the overview paragraph. *)
          Str.replace_first (Str.regexp "A newline-terminated text document")
            "EDITED: a newline-terminated text document" s
        in
        let saved =
          Webui.handle reg ~meth:"POST" ~path:"/examples:lines" ~body:edited
        in
        check Alcotest.int "200" 200 saved.Webui.status;
        check Alcotest.bool "version 0.2" true
          (contains ~needle:"version 0.2" saved.Webui.body);
        let after = get reg "/examples:lines.wiki" in
        check Alcotest.bool "edit visible" true
          (contains ~needle:"EDITED:" after.Webui.body);
        check Alcotest.bool "history kept" true
          (match Registry.versions reg
                   (Result.get_ok (Identifier.of_title "LINES")) with
           | Ok vs -> List.map Version.to_string vs = [ "0.1"; "0.2" ]
           | Error _ -> false));
    tc "malformed POST bodies are a 400, not a crash" (fun () ->
        let reg = fresh () in
        let r =
          Webui.handle reg ~meth:"POST" ~path:"/examples:lines"
            ~body:"+ LINES\n\n++ Version\n\nnot-a-version\n"
        in
        check Alcotest.int "400" 400 r.Webui.status);
    tc "POST to a retitled page is rejected (identifier stability)" (fun () ->
        let reg = fresh () in
        let page = (get reg "/examples:lines.wiki").Webui.body in
        let renamed =
          Str.replace_first (Str.regexp_string "+ LINES") "+ RENAMED" page
        in
        let r =
          Webui.handle reg ~meth:"POST" ~path:"/examples:lines" ~body:renamed
        in
        check Alcotest.int "400" 400 r.Webui.status);
    tc "a member editor without authorship is refused (403)" (fun () ->
        let reg = fresh () in
        let page = (get reg "/examples:lines.wiki").Webui.body in
        let r =
          Webui.handle ~editor:(Curation.account "Random Visitor") reg
            ~meth:"POST" ~path:"/examples:lines" ~body:page
        in
        check Alcotest.int "403" 403 r.Webui.status);
  ]

let () =
  Alcotest.run "bx-repo"
    [
      ("version", version_tests);
      ("contributor", contributor_tests);
      ("reference", reference_tests);
      ("identifier", identifier_tests);
      ("template", template_tests);
      ("curation", curation_tests);
      ("glossary", glossary_tests);
      ("markup", markup_tests);
      ("markup-properties", markup_prop_tests);
      ("sync", sync_tests);
      ("registry", registry_tests);
      ("store", store_tests);
      ("manuscript", manuscript_tests);
      ("index", index_tests);
      ("robustness", robustness_tests);
      ("markup-fuzz", markup_fuzz_tests);
      ("diff", diff_tests);
      ("markdown", markdown_tests);
      ("json-codec", json_codec_tests);
      ("random-template-properties", random_template_tests);
      ("webui", webui_tests);
    ]
