(* Unit and property tests for the regex/automata substrate. *)

open Bx_regex

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let parse_ok s =
  match Parse.of_string s with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" s e

(* ------------------------------------------------------------------ *)
(* Character sets *)

let cset_tests =
  [
    tc "membership over ranges" (fun () ->
        let s = Cset.union (Cset.range 'a' 'f') (Cset.singleton 'z') in
        check Alcotest.bool "a" true (Cset.mem 'a' s);
        check Alcotest.bool "f" true (Cset.mem 'f' s);
        check Alcotest.bool "g" false (Cset.mem 'g' s);
        check Alcotest.bool "z" true (Cset.mem 'z' s));
    tc "union merges adjacent ranges" (fun () ->
        let s = Cset.union (Cset.range 'a' 'c') (Cset.range 'd' 'f') in
        check Alcotest.int "one range" 1 (List.length (Cset.to_ranges s)));
    tc "inter of overlapping ranges" (fun () ->
        let s = Cset.inter (Cset.range 'a' 'm') (Cset.range 'g' 'z') in
        check Alcotest.bool "g..m" true
          (Cset.equal s (Cset.range 'g' 'm')));
    tc "complement round-trips" (fun () ->
        let s = Cset.range 'b' 'y' in
        check Alcotest.bool "double complement" true
          (Cset.equal s (Cset.complement (Cset.complement s)));
        check Alcotest.bool "disjoint from complement" true
          (Cset.is_empty (Cset.inter s (Cset.complement s)));
        check Alcotest.bool "covers full" true
          (Cset.equal Cset.full (Cset.union s (Cset.complement s))));
    tc "diff removes exactly the second set" (fun () ->
        let s = Cset.diff (Cset.range 'a' 'e') (Cset.singleton 'c') in
        check Alcotest.bool "c gone" false (Cset.mem 'c' s);
        check Alcotest.bool "b stays" true (Cset.mem 'b' s);
        check Alcotest.int "cardinal" 4 (Cset.cardinal s));
    tc "of_string collects distinct characters" (fun () ->
        let s = Cset.of_string "banana" in
        check Alcotest.int "3 distinct" 3 (Cset.cardinal s));
    tc "choose returns the least element" (fun () ->
        check Alcotest.(option char) "least" (Some 'b')
          (Cset.choose (Cset.of_string "dcb"));
        check Alcotest.(option char) "empty" None (Cset.choose Cset.empty));
    tc "subset" (fun () ->
        check Alcotest.bool "sub" true
          (Cset.subset (Cset.range 'b' 'c') (Cset.range 'a' 'd'));
        check Alcotest.bool "not sub" false
          (Cset.subset (Cset.range 'a' 'd') (Cset.range 'b' 'c')));
    tc "refine partitions and respects inputs" (fun () ->
        let a = Cset.range 'a' 'm' and b = Cset.range 'g' 'z' in
        let blocks = Cset.refine [ a; b ] in
        (* Blocks are pairwise disjoint and cover the full space. *)
        let total = List.fold_left (fun n s -> n + Cset.cardinal s) 0 blocks in
        check Alcotest.int "covers 256" 256 total;
        List.iter
          (fun blk ->
            List.iter
              (fun s ->
                let i = Cset.inter blk s in
                check Alcotest.bool "block inside or outside each input" true
                  (Cset.is_empty i || Cset.equal i blk))
              [ a; b ])
          blocks);
  ]

(* ------------------------------------------------------------------ *)
(* Regexes *)

let letters = Regex.cset (Cset.range 'a' 'z')
let digits = Regex.cset (Cset.range '0' '9')

let regex_tests =
  [
    tc "str matches exactly the literal" (fun () ->
        let r = Regex.str "abc" in
        check Alcotest.bool "abc" true (Regex.matches r "abc");
        check Alcotest.bool "ab" false (Regex.matches r "ab");
        check Alcotest.bool "abcd" false (Regex.matches r "abcd"));
    tc "empty string and epsilon" (fun () ->
        check Alcotest.bool "eps matches empty" true
          (Regex.matches Regex.epsilon "");
        check Alcotest.bool "empty matches nothing" false
          (Regex.matches Regex.empty "");
        check Alcotest.bool "str \"\" = eps" true
          (Regex.equal (Regex.str "") Regex.epsilon));
    tc "alt and star" (fun () ->
        let r = Regex.(star (alt (str "ab") (str "c"))) in
        List.iter
          (fun (s, expected) ->
            check Alcotest.bool s expected (Regex.matches r s))
          [ ("", true); ("ab", true); ("cab", true); ("abcabc", true);
            ("a", false); ("ba", false) ]);
    tc "plus requires at least one" (fun () ->
        let r = Regex.plus (Regex.chr 'x') in
        check Alcotest.bool "empty" false (Regex.matches r "");
        check Alcotest.bool "x" true (Regex.matches r "x");
        check Alcotest.bool "xxx" true (Regex.matches r "xxx"));
    tc "opt matches zero or one" (fun () ->
        let r = Regex.opt (Regex.chr 'x') in
        check Alcotest.bool "empty" true (Regex.matches r "");
        check Alcotest.bool "x" true (Regex.matches r "x");
        check Alcotest.bool "xx" false (Regex.matches r "xx"));
    tc "repeat is exact" (fun () ->
        let r = Regex.repeat 3 (Regex.chr 'a') in
        check Alcotest.bool "aaa" true (Regex.matches r "aaa");
        check Alcotest.bool "aa" false (Regex.matches r "aa"));
    tc "smart constructors canonicalise" (fun () ->
        let open Regex in
        check Alcotest.bool "alt idempotent" true
          (equal (alt letters letters) letters);
        check Alcotest.bool "alt commutes" true
          (equal (alt letters digits) (alt digits letters));
        check Alcotest.bool "seq unit" true
          (equal (seq epsilon letters) letters);
        check Alcotest.bool "seq absorbs empty" true
          (equal (seq empty letters) empty);
        check Alcotest.bool "star of star" true
          (equal (star (star letters)) (star letters));
        check Alcotest.bool "star of empty" true
          (equal (star empty) epsilon));
    tc "nullable" (fun () ->
        let open Regex in
        check Alcotest.bool "star" true (nullable (star letters));
        check Alcotest.bool "cset" false (nullable letters);
        check Alcotest.bool "seq of nullables" true
          (nullable (seq (opt letters) (star digits))));
    tc "deriv walks the string" (fun () ->
        let r = Regex.str "ab" in
        let r' = Regex.deriv 'a' r in
        check Alcotest.bool "residual is b" true
          (Regex.equal r' (Regex.str "b"));
        check Alcotest.bool "wrong char kills" true
          (Regex.equal (Regex.deriv 'x' r) Regex.empty));
    tc "reverse reverses the language" (fun () ->
        let r = Regex.(seq (str "ab") (star (str "c"))) in
        let rr = Regex.reverse r in
        check Alcotest.bool "ccba" true (Regex.matches rr "ccba");
        check Alcotest.bool "abcc not in reverse" false
          (Regex.matches rr "abcc"));
    tc "derivative_classes partition the byte space" (fun () ->
        let r = Regex.(alt (seq letters digits) (str "x")) in
        let classes = Regex.derivative_classes r in
        let total =
          List.fold_left (fun n s -> n + Cset.cardinal s) 0 classes
        in
        check Alcotest.int "covers 256" 256 total);
    tc "pp renders something readable" (fun () ->
        let r = Regex.(alt (str "ab") (star digits)) in
        check Alcotest.bool "nonempty" true
          (String.length (Regex.to_string r) > 0));
  ]

(* Property: derivative-based matching agrees with a reference matcher on a
   fixed structure (membership of randomly generated strings in (ab|c)* ). *)
let regex_prop_tests =
  let reference s =
    (* (ab|c)* : greedy scan. *)
    let n = String.length s in
    let rec go i =
      if i = n then true
      else if s.[i] = 'c' then go (i + 1)
      else if i + 1 < n && s.[i] = 'a' && s.[i + 1] = 'b' then go (i + 2)
      else false
    in
    go 0
  in
  let r = Regex.(star (alt (str "ab") (str "c"))) in
  let gen = QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 12)) in
  let test =
    QCheck2.Test.make ~count:500 ~name:"matches agrees with reference on (ab|c)*"
      gen
      (fun s -> Regex.matches r s = reference s)
  in
  [ QCheck_alcotest.to_alcotest test ]

(* ------------------------------------------------------------------ *)
(* DFA *)

let dfa_tests =
  [
    tc "accepts agrees with Regex.matches" (fun () ->
        let r = Regex.(star (alt (str "ab") (str "c"))) in
        let d = Dfa.build r in
        List.iter
          (fun s ->
            check Alcotest.bool s (Regex.matches r s) (Dfa.accepts d s))
          [ ""; "ab"; "c"; "abc"; "ba"; "abab"; "cab"; "a" ]);
    tc "prefix_marks marks accepted prefixes" (fun () ->
        let d = Dfa.build (Regex.star (Regex.str "ab")) in
        let marks = Dfa.prefix_marks d "abab" in
        check Alcotest.(list bool) "marks"
          [ true; false; true; false; true ]
          (Array.to_list marks));
    tc "empty language has no accepting state" (fun () ->
        let d = Dfa.build Regex.(seq (chr 'a') empty) in
        check Alcotest.bool "empty" true (Dfa.is_empty_lang d);
        check Alcotest.(option string) "no shortest" None
          (Dfa.shortest_accepted d));
    tc "shortest_accepted finds a minimal witness" (fun () ->
        let r = Regex.(seq (str "aa") (star (str "b"))) in
        let d = Dfa.build r in
        check Alcotest.(option string) "aa" (Some "aa")
          (Dfa.shortest_accepted d));
    tc "dfa is small for simple regexes" (fun () ->
        let d = Dfa.build (Regex.str "abc") in
        (* a,ab,abc residuals + sink + root = 5 *)
        check Alcotest.bool "at most 5 states" true (Dfa.size d <= 5));
    tc "run_from composes" (fun () ->
        let d = Dfa.build (Regex.str "abc") in
        let mid = Dfa.run_from d Dfa.initial "ab" in
        let fin = Dfa.run_from d mid "c" in
        check Alcotest.bool "accepting" true (Dfa.accepting d fin));
    tc "transitions cover the byte space in every state" (fun () ->
        let d = Dfa.build (Regex.(alt (str "foo") (star digits))) in
        for i = 0 to Dfa.size d - 1 do
          let total =
            List.fold_left
              (fun n (cls, _) -> n + Cset.cardinal cls)
              0 (Dfa.transitions d i)
          in
          check Alcotest.int "covers 256" 256 total
        done);
  ]

(* ------------------------------------------------------------------ *)
(* The compiled engine: hash-consing, dense tables, compilation cache *)

let engine_tests =
  [
    tc "hash-consing makes structural equality physical" (fun () ->
        let r1 = Regex.(seq (star (chr 'a')) (str "bc")) in
        let r2 = Regex.(seq (star (chr 'a')) (str "bc")) in
        check Alcotest.bool "same id" true (Regex.id r1 = Regex.id r2);
        check Alcotest.bool "physically equal" true (r1 == r2);
        check Alcotest.bool "distinct regexes get distinct ids" true
          (Regex.id r1 <> Regex.id (Regex.str "bc")));
    tc "compile caches by interned regex" (fun () ->
        let r = Regex.(seq (star (chr 'q')) (str "zq")) in
        ignore (Dfa.compile r);
        let h0, m0 = Dfa.cache_stats () in
        (* The same regex, built afresh: interned to the same id, so the
           compiled automaton is reused, not rebuilt. *)
        ignore (Dfa.compile Regex.(seq (star (chr 'q')) (str "zq")));
        let h1, m1 = Dfa.cache_stats () in
        check Alcotest.int "no new DFA build" m0 m1;
        check Alcotest.int "one more cache hit" (h0 + 1) h1);
    tc "matches runs compiled and agrees with the derivative engine"
      (fun () ->
        let r = Regex.(star (alt (str "ab") (str "c"))) in
        List.iter
          (fun s ->
            check Alcotest.bool s (Regex.matches_deriv r s)
              (Regex.matches r s))
          [ ""; "ab"; "c"; "abc"; "ba"; "abab"; "cab"; "a" ]);
    tc "sink is the empty-residual state" (fun () ->
        let d = Dfa.compile (Regex.str "ab") in
        check Alcotest.bool "has a sink" true (Dfa.sink d >= 0);
        check Alcotest.int "stuck input lands on the sink" (Dfa.sink d)
          (Dfa.run_from d Dfa.initial "zz");
        check Alcotest.bool "sink never accepts" false
          (Dfa.accepting d (Dfa.sink d));
        let total = Dfa.compile (Regex.star Regex.any) in
        check Alcotest.int "total language has no sink" (-1) (Dfa.sink total));
    tc "dense table agrees with the class view in every state" (fun () ->
        let d = Dfa.compile (parse_ok "[a-m]+x|(yz)*") in
        for i = 0 to Dfa.size d - 1 do
          List.iter
            (fun (cls, j) ->
              List.iter
                (fun (lo, hi) ->
                  check Alcotest.int "lo" j (Dfa.step d i lo);
                  check Alcotest.int "hi" j (Dfa.step d i hi))
                (Cset.to_ranges cls))
            (Dfa.transitions d i)
        done);
  ]

let engine_prop_tests =
  let gen =
    QCheck2.Gen.pair Bx_check.Generators.regex Bx_check.Generators.regex_input
  in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck2.Test.make ~count:1000
        ~name:"compiled DFA matching = derivative matching" gen
        (fun (r, s) -> Dfa.accepts (Dfa.compile r) s = Regex.matches_deriv r s);
      QCheck2.Test.make ~count:400
        ~name:"minimise preserves the language (random regexes)" gen
        (fun (r, s) ->
          Dfa.accepts (Dfa.minimise (Dfa.compile r)) s
          = Regex.matches_deriv r s);
      QCheck2.Test.make ~count:400
        ~name:"minimised automaton is never larger"
        Bx_check.Generators.regex
        (fun r ->
          let d = Dfa.compile r in
          Dfa.size (Dfa.minimise d) <= Dfa.size d);
    ]

(* ------------------------------------------------------------------ *)
(* Language decision procedures *)

let lang_tests =
  [
    tc "disjoint languages" (fun () ->
        check Alcotest.bool "letters vs digits" true
          (Lang.disjoint (Regex.plus letters) (Regex.plus digits) = Ok ()));
    tc "overlapping languages yield a witness" (fun () ->
        match Lang.disjoint (Regex.str "ab") Regex.(seq (chr 'a') (star (chr 'b'))) with
        | Error w -> check Alcotest.string "witness" "ab" w
        | Ok () -> Alcotest.fail "expected overlap");
    tc "subset and counterexample" (fun () ->
        let sub = Regex.str "ab" in
        let sup = Regex.(star (alt (chr 'a') (chr 'b'))) in
        check Alcotest.bool "ab in (a|b)*" true (Lang.subset sub sup);
        check Alcotest.bool "not conversely" false (Lang.subset sup sub);
        match Lang.subset_counterexample sup sub with
        | Some w -> check Alcotest.bool "counterexample outside" true
                      (not (Regex.matches sub w))
        | None -> Alcotest.fail "expected counterexample");
    tc "equivalence of syntactically different regexes" (fun () ->
        let r1 = Regex.(star (chr 'a')) in
        let r2 = Regex.(alt epsilon (plus (chr 'a'))) in
        check Alcotest.bool "a* = eps|a+" true (Lang.equivalent r1 r2));
    tc "inequivalence yields a shortest witness" (fun () ->
        let r1 = Regex.(star (chr 'a')) in
        let r2 = Regex.(plus (chr 'a')) in
        check Alcotest.(option string) "eps distinguishes" (Some "")
          (Lang.equiv_counterexample r1 r2));
    tc "emptiness" (fun () ->
        check Alcotest.bool "empty" true (Lang.is_empty Regex.empty);
        check Alcotest.bool "eps not empty" false (Lang.is_empty Regex.epsilon);
        check Alcotest.bool "a(empty) empty" true
          (Lang.is_empty Regex.(seq (chr 'a') empty)));
    tc "shortest member" (fun () ->
        check Alcotest.(option string) "aa" (Some "aa")
          (Lang.shortest Regex.(seq (str "aa") (star (chr 'b')))));
  ]

(* ------------------------------------------------------------------ *)
(* Ambiguity analyses *)

let ambig_tests =
  [
    tc "a* . b* is unambiguous" (fun () ->
        check Alcotest.bool "ok" true
          (Ambig.unambig_concat
             Regex.(star (chr 'a'))
             Regex.(star (chr 'b'))
          = Ok ()));
    tc "a* . a* is ambiguous with witness a" (fun () ->
        match
          Ambig.unambig_concat Regex.(star (chr 'a')) Regex.(star (chr 'a'))
        with
        | Error w -> check Alcotest.string "overlap" "a" w
        | Ok () -> Alcotest.fail "expected ambiguity");
    tc "(a|ab) . (b|eps)-style overlap is detected" (fun () ->
        (* w = "ab" splits as a·b and ab·eps *)
        let r1 = Regex.(alt (str "a") (str "ab")) in
        let r2 = Regex.(opt (chr 'b')) in
        check Alcotest.bool "ambiguous" true
          (Ambig.unambig_concat r1 r2 <> Ok ()));
    tc "literal . literal is unambiguous" (fun () ->
        check Alcotest.bool "ok" true
          (Ambig.unambig_concat (Regex.str "foo") (Regex.str "oof") = Ok ()));
    tc "empty first language is trivially unambiguous" (fun () ->
        check Alcotest.bool "ok" true
          (Ambig.unambig_concat Regex.empty Regex.(star (chr 'a')) = Ok ()));
    tc "star of a single char is unambiguous" (fun () ->
        check Alcotest.bool "ok" true
          (Ambig.unambig_star (Regex.chr 'a') = Ok ()));
    tc "star of a nullable body is ambiguous" (fun () ->
        check Alcotest.bool "eps witness" true
          (Ambig.unambig_star (Regex.opt (Regex.chr 'a')) = Error ""));
    tc "star of (a|aa) is ambiguous" (fun () ->
        check Alcotest.bool "ambiguous" true
          (Ambig.unambig_star Regex.(alt (str "a") (str "aa")) <> Ok ()));
    tc "star of lines (text newline) is unambiguous" (fun () ->
        let line = Regex.(seq (star letters) (chr '\n')) in
        check Alcotest.bool "ok" true (Ambig.unambig_star line = Ok ()));
    tc "disjoint_union distinguishes by first char" (fun () ->
        check Alcotest.bool "ok" true
          (Ambig.disjoint_union (Regex.str "a") (Regex.str "b") = Ok ());
        check Alcotest.bool "shared" true
          (Ambig.disjoint_union (Regex.str "a") Regex.(star (chr 'a'))
          <> Ok ()));
    tc "csv field star: field ; separated is unambiguous" (fun () ->
        (* (letter+ ,)* letter+ — the shape the Composers CSV lens uses. *)
        let field = Regex.plus letters in
        let item = Regex.(seq field (chr ',')) in
        check Alcotest.bool "ok" true (Ambig.unambig_star item = Ok ());
        check Alcotest.bool "concat with tail ok" true
          (Ambig.unambig_concat (Regex.star item) field = Ok ()));
  ]

(* Oracle property: unambig_concat agrees with a brute-force split counter
   over short strings drawn from small languages. *)
let ambig_prop_tests =
  let abc = [ 'a'; 'b'; 'c' ] in
  (* A small pool of structurally diverse regexes over {a,b,c}. *)
  let pool =
    Regex.
      [
        str "a";
        str "ab";
        alt (str "a") (str "ab");
        star (chr 'a');
        plus (chr 'b');
        alt (str "a") (str "b");
        seq (chr 'a') (star (chr 'b'));
        opt (chr 'c');
        star (alt (str "ab") (str "c"));
      ]
  in
  let strings_up_to n =
    (* All strings over abc of length <= n. *)
    let rec go n =
      if n = 0 then [ "" ]
      else
        let shorter = go (n - 1) in
        shorter
        @ List.concat_map
            (fun s ->
              if String.length s = n - 1 then
                List.map (fun c -> s ^ String.make 1 c) abc
              else [])
            shorter
    in
    go n
  in
  let all_strings = strings_up_to 6 in
  let brute_ambiguous r1 r2 =
    List.exists
      (fun w ->
        let n = String.length w in
        let splits = ref 0 in
        for i = 0 to n do
          if
            Regex.matches r1 (String.sub w 0 i)
            && Regex.matches r2 (String.sub w i (n - i))
          then incr splits
        done;
        !splits > 1)
      all_strings
  in
  let gen = QCheck2.Gen.(pair (oneofl pool) (oneofl pool)) in
  let test =
    QCheck2.Test.make ~count:81
      ~name:"unambig_concat agrees with brute-force split counting"
      gen
      (fun (r1, r2) ->
        let decided = Ambig.unambig_concat r1 r2 = Ok () in
        let brute = not (brute_ambiguous r1 r2) in
        (* The decision procedure is exact; brute force only sees short
           strings, so: decided-unambiguous must imply brute-unambiguous. *)
        if decided then brute else true)
  in
  let witness_test =
    QCheck2.Test.make ~count:81
      ~name:"ambiguity witnesses really are overlaps"
      gen
      (fun (r1, r2) ->
        match Ambig.unambig_concat r1 r2 with
        | Ok () -> true
        | Error q ->
            (* q nonempty, and there exist p, s with p,pq in L1, qs,s in L2.
               Search within our bounded string set. *)
            String.length q > 0
            && List.exists
                 (fun p ->
                   Regex.matches r1 p && Regex.matches r1 (p ^ q))
                 all_strings
            && List.exists
                 (fun s ->
                   Regex.matches r2 s && Regex.matches r2 (q ^ s))
                 all_strings)
  in
  List.map QCheck_alcotest.to_alcotest [ test; witness_test ]



(* ------------------------------------------------------------------ *)
(* Concrete-syntax parser *)

let parse_tests =
  [
    tc "literals, sequencing and alternation" (fun () ->
        let r = parse_ok "ab|c" in
        check Alcotest.bool "ab" true (Regex.matches r "ab");
        check Alcotest.bool "c" true (Regex.matches r "c");
        check Alcotest.bool "a" false (Regex.matches r "a"));
    tc "postfix operators bind tighter than sequencing" (fun () ->
        let r = parse_ok "ab*" in
        check Alcotest.bool "a" true (Regex.matches r "a");
        check Alcotest.bool "abbb" true (Regex.matches r "abbb");
        check Alcotest.bool "abab" false (Regex.matches r "abab"));
    tc "grouping" (fun () ->
        let r = parse_ok "(ab)+" in
        check Alcotest.bool "abab" true (Regex.matches r "abab");
        check Alcotest.bool "aba" false (Regex.matches r "aba"));
    tc "optional" (fun () ->
        let r = parse_ok "colou?r" in
        check Alcotest.bool "color" true (Regex.matches r "color");
        check Alcotest.bool "colour" true (Regex.matches r "colour"));
    tc "character classes and ranges" (fun () ->
        let r = parse_ok "[a-c0-9]+" in
        check Alcotest.bool "ab01" true (Regex.matches r "ab01");
        check Alcotest.bool "d" false (Regex.matches r "d"));
    tc "negated classes" (fun () ->
        let r = parse_ok "[^a-z]" in
        check Alcotest.bool "A" true (Regex.matches r "A");
        check Alcotest.bool "a" false (Regex.matches r "a"));
    tc "dot matches any single byte" (fun () ->
        let r = parse_ok "a.c" in
        check Alcotest.bool "abc" true (Regex.matches r "abc");
        check Alcotest.bool "a?c" true (Regex.matches r "a?c");
        check Alcotest.bool "ac" false (Regex.matches r "ac"));
    tc "escapes" (fun () ->
        let r = parse_ok "a\\.b\\n" in
        check Alcotest.bool "literal dot + newline" true
          (Regex.matches r "a.b\n");
        check Alcotest.bool "x rejected" false (Regex.matches r "axb\n"));
    tc "empty pattern is epsilon" (fun () ->
        check Alcotest.bool "eps" true (Regex.equal (parse_ok "") Regex.epsilon);
        check Alcotest.bool "group" true (Regex.equal (parse_ok "()") Regex.epsilon));
    tc "parse errors carry a position" (fun () ->
        List.iter
          (fun s ->
            match Parse.of_string s with
            | Error msg ->
                check Alcotest.bool "mentions position" true
                  (String.length msg > 0)
            | Ok _ -> Alcotest.failf "%S should not parse" s)
          [ "("; "a)"; "[abc"; "*a"; "a\\" ]);
    tc "trailing hyphen in a class is literal" (fun () ->
        let r = parse_ok "[a-]" in
        check Alcotest.bool "a" true (Regex.matches r "a");
        check Alcotest.bool "-" true (Regex.matches r "-"));
    tc "to_parseable round-trips the language" (fun () ->
        List.iter
          (fun src ->
            let r = parse_ok src in
            let r2 = parse_ok (Parse.to_parseable r) in
            match Lang.equiv_counterexample r r2 with
            | None -> ()
            | Some w -> Alcotest.failf "%S: differs on %S" src w)
          [ "ab|c"; "(ab)*c+"; "[a-z]+, [0-9]*"; "a?b?c?"; "x|y|z";
            "[^a]b."; "a\\*b" ]);
    tc "to_parseable rejects the empty language" (fun () ->
        check Alcotest.bool "raises" true
          (try ignore (Parse.to_parseable Regex.empty); false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Minimisation *)

let minimise_tests =
  [
    tc "minimised DFA accepts the same language" (fun () ->
        List.iter
          (fun src ->
            let r = parse_ok src in
            let d = Dfa.build r in
            let m = Dfa.minimise d in
            (* Compare on an exhaustive set of short strings. *)
            let alphabet = [ 'a'; 'b'; 'c' ] in
            let rec strings n =
              if n = 0 then [ "" ]
              else
                let shorter = strings (n - 1) in
                shorter
                @ List.concat_map
                    (fun s ->
                      if String.length s = n - 1 then
                        List.map (fun c -> s ^ String.make 1 c) alphabet
                      else [])
                    shorter
            in
            List.iter
              (fun s ->
                check Alcotest.bool (src ^ "/" ^ s) (Dfa.accepts d s)
                  (Dfa.accepts m s))
              (strings 5))
          [ "a*b"; "(ab)*"; "a|ab|abc"; "[ab]*c"; "a+b+" ]);
    tc "minimisation shrinks a redundant automaton" (fun () ->
        (* a|aa|aaa|aaaa has equivalent residuals the derivative
           construction keeps apart. *)
        let r = parse_ok "aaaa|aaa|aa|a" in
        let d = Dfa.build r in
        let m = Dfa.minimise d in
        check Alcotest.bool "no bigger" true (Dfa.size m <= Dfa.size d);
        (* The minimal DFA for this language has 6 states (0..4 a's seen,
           plus sink). *)
        check Alcotest.int "minimal size" 6 (Dfa.size m));
    tc "minimisation is idempotent" (fun () ->
        let d = Dfa.minimise (Dfa.build (parse_ok "(ab|c)*")) in
        check Alcotest.int "same size" (Dfa.size d)
          (Dfa.size (Dfa.minimise d)));
    tc "initial state stays initial" (fun () ->
        let m = Dfa.minimise (Dfa.build (parse_ok "abc")) in
        check Alcotest.bool "accepts abc" true (Dfa.accepts m "abc");
        check Alcotest.bool "rejects ab" false (Dfa.accepts m "ab"));
    tc "transitions of the minimised DFA still cover all bytes" (fun () ->
        let m = Dfa.minimise (Dfa.build (parse_ok "[a-m]+[n-z]*")) in
        for i = 0 to Dfa.size m - 1 do
          let total =
            List.fold_left (fun n (cls, _) -> n + Cset.cardinal cls) 0
              (Dfa.transitions m i)
          in
          check Alcotest.int "covers 256" 256 total
        done);
  ]

let minimise_prop_tests =
  let pool =
    [ "a*b"; "(ab|c)*"; "a|ab|abc"; "[ab]+"; "a?b?c"; "(a|b)(a|b)"; "c[ab]*" ]
  in
  let gen = QCheck2.Gen.(pair (oneofl pool) (string_size ~gen:(oneofl ['a';'b';'c']) (0 -- 8))) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:500
         ~name:"minimise preserves acceptance on random strings" gen
         (fun (src, s) ->
           let r = parse_ok src in
           let d = Dfa.build r in
           Dfa.accepts d s = Dfa.accepts (Dfa.minimise d) s));
  ]

(* ------------------------------------------------------------------ *)
(* Kleene's theorem made executable: to_regex / complement / inter *)

let kleene_tests =
  [
    tc "to_regex round-trips the language" (fun () ->
        List.iter
          (fun src ->
            let r = parse_ok src in
            let r' = Dfa.to_regex (Dfa.build r) in
            match Lang.equiv_counterexample r r' with
            | None -> ()
            | Some w -> Alcotest.failf "%S: differs on %S" src w)
          [ "a"; "ab|c"; "(ab)*"; "a+b?"; "[ab]*c"; "a|aa|aaa" ]);
    tc "to_regex of the empty automaton is empty" (fun () ->
        let d = Dfa.build Regex.(seq (chr 'a') empty) in
        check Alcotest.bool "empty" true
          (Lang.is_empty (Dfa.to_regex d)));
    tc "complement flips membership" (fun () ->
        let r = parse_ok "(ab)*" in
        let c = Lang.complement r in
        List.iter
          (fun s ->
            check Alcotest.bool s
              (not (Regex.matches r s))
              (Regex.matches c s))
          [ ""; "ab"; "a"; "abab"; "ba"; "abc" ]);
    tc "complement is an involution up to language equality" (fun () ->
        let r = parse_ok "a[bc]*" in
        check Alcotest.bool "equal" true
          (Lang.equivalent r (Lang.complement (Lang.complement r))));
    tc "inter agrees with the witness-based emptiness test" (fun () ->
        let r1 = parse_ok "[ab]*a" and r2 = parse_ok "a[ab]*" in
        let i = Lang.inter r1 r2 in
        (* strings starting and ending with a *)
        List.iter
          (fun (s, expected) -> check Alcotest.bool s expected (Regex.matches i s))
          [ ("a", true); ("aba", true); ("ab", false); ("ba", false) ]);
    tc "inter with a disjoint language is empty" (fun () ->
        let i = Lang.inter (parse_ok "a+") (parse_ok "b+") in
        check Alcotest.bool "empty" true (Lang.is_empty i));
  ]

let kleene_prop_tests =
  let pool = [ "a*b"; "(ab|c)*"; "a|ab"; "[ab]+"; "a?b?" ] in
  let gen =
    QCheck2.Gen.(
      pair (oneofl pool)
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 7)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:"complement disagrees with the original everywhere" gen
         (fun (src, s) ->
           let r = parse_ok src in
           Regex.matches (Lang.complement r) s = not (Regex.matches r s)));
  ]

(* ------------------------------------------------------------------ *)
(* Enumeration *)

let enumerate_tests =
  [
    tc "enumerates in shortlex order" (fun () ->
        check Alcotest.(list string) "(a|b)* up to 2"
          [ ""; "a"; "b"; "aa"; "ab"; "ba"; "bb" ]
          (Lang.enumerate ~max_length:2 (parse_ok "[ab]*")));
    tc "finite languages enumerate completely" (fun () ->
        check Alcotest.(list string) "a|bc"
          [ "a"; "bc" ]
          (Lang.enumerate ~max_length:5 (parse_ok "a|bc")));
    tc "empty language enumerates nothing" (fun () ->
        check Alcotest.(list string) "empty" []
          (Lang.enumerate ~max_length:3 Regex.empty));
    tc "enumeration agrees with matching" (fun () ->
        let r = parse_ok "(ab|c)*" in
        List.iter
          (fun s -> check Alcotest.bool s true (Regex.matches r s))
          (Lang.enumerate ~max_length:4 r));
  ]

let () =
  Alcotest.run "bx-regex"
    [
      ("cset", cset_tests);
      ("regex", regex_tests);
      ("regex-properties", regex_prop_tests);
      ("dfa", dfa_tests);
      ("engine", engine_tests);
      ("engine-properties", engine_prop_tests);
      ("lang", lang_tests);
      ("ambig", ambig_tests);
      ("ambig-properties", ambig_prop_tests);
      ("parse", parse_tests);
      ("minimise", minimise_tests);
      ("minimise-properties", minimise_prop_tests);
      ("kleene", kleene_tests);
      ("kleene-properties", kleene_prop_tests);
      ("enumerate", enumerate_tests);
    ]
