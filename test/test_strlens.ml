(* Unit and property tests for the Boomerang-style string lenses. *)

open Bx_regex
open Bx_strlens

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let letters = Regex.cset (Cset.range 'a' 'z')
let word = Regex.plus letters
let digits = Regex.plus (Regex.cset (Cset.range '0' '9'))

(* ------------------------------------------------------------------ *)
(* Split machinery *)

let split_tests =
  [
    tc "rev_string" (fun () ->
        check Alcotest.string "abc" "cba" (Split.rev_string "abc");
        check Alcotest.string "empty" "" (Split.rev_string ""));
    tc "concat splitter finds the unique point" (fun () ->
        let split = Split.make_concat_splitter word digits in
        check Alcotest.(pair string string) "ab12" ("ab", "12")
          (split "ab12"));
    tc "concat splitter with boundary marker" (fun () ->
        let split =
          Split.make_concat_splitter
            (Regex.seq word (Regex.chr ','))
            word
        in
        check Alcotest.(pair string string) "a,b" ("a,", "b") (split "a,b"));
    tc "concat splitter raises on non-members" (fun () ->
        let split = Split.make_concat_splitter word digits in
        check Alcotest.bool "raises" true
          (try
             ignore (split "123abc");
             false
           with Split.Split_error _ -> true));
    tc "star splitter chunks lines" (fun () ->
        let line = Regex.(seq (star letters) (chr '\n')) in
        let split = Split.make_star_splitter line in
        check Alcotest.(list string) "chunks" [ "ab\n"; "\n"; "c\n" ]
          (split "ab\n\nc\n"));
    tc "star splitter on empty string yields no chunks" (fun () ->
        let split = Split.make_star_splitter word in
        check Alcotest.(list string) "empty" [] (split ""));
    tc "star splitter rejects nullable bodies" (fun () ->
        check Alcotest.bool "invalid" true
          (try
             let (_ : Split.star_splitter) =
               Split.make_star_splitter (Regex.star letters)
             in
             false
           with Invalid_argument _ -> true));
    tc "star splitter raises on stray suffix" (fun () ->
        let line = Regex.(seq (plus letters) (chr ';')) in
        let split = Split.make_star_splitter line in
        check Alcotest.bool "raises" true
          (try
             ignore (split "ab;cd");
             false
           with Split.Split_error _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Primitives *)

let prim_tests =
  [
    tc "copy is the identity on its language" (fun () ->
        let l = Slens.copy word in
        check Alcotest.string "get" "abc" (l.get "abc");
        check Alcotest.string "put" "xyz" (l.put "xyz" "abc"));
    tc "const projects away and restores" (fun () ->
        let l = Slens.const ~stype:digits ~view:"N" ~default:"0" in
        check Alcotest.string "get" "N" (l.get "123");
        check Alcotest.string "put restores source" "123" (l.put "N" "123");
        check Alcotest.string "create uses default" "0" (l.create "N"));
    tc "const rejects a default outside the source type" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Slens.const ~stype:digits ~view:"N" ~default:"x");
             false
           with Slens.Type_error _ -> true));
    tc "const rejects foreign views on put" (fun () ->
        let l = Slens.const ~stype:digits ~view:"N" ~default:"0" in
        check Alcotest.bool "raises" true
          (try
             ignore (l.put "M" "123");
             false
           with Slens.Type_error _ -> true));
    tc "del erases, put brings the source back" (fun () ->
        let l = Slens.del digits ~default:"0" in
        check Alcotest.string "get" "" (l.get "42");
        check Alcotest.string "put" "42" (l.put "" "42"));
    tc "ins adds view-only text" (fun () ->
        let l = Slens.ins "hi " in
        check Alcotest.string "get" "hi " (l.get "");
        check Alcotest.string "put" "" (l.put "hi " ""));
  ]

(* ------------------------------------------------------------------ *)
(* Combinators *)

let comb_tests =
  [
    tc "concat maps both halves" (fun () ->
        let l = Slens.concat (Slens.copy word)
            (Slens.del digits ~default:"0") in
        check Alcotest.string "get" "ab" (l.get "ab12");
        check Alcotest.string "put keeps hidden digits" "xy12"
          (l.put "xy" "ab12");
        check Alcotest.string "create uses default" "xy0" (l.create "xy"));
    tc "concat rejects ambiguous source types" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Slens.concat (Slens.copy (Regex.star letters))
                       (Slens.copy (Regex.star letters)));
             false
           with Slens.Type_error _ -> true));
    tc "concat_list chains several pieces" (fun () ->
        let l =
          Slens.concat_list
            [
              Slens.copy word;
              Slens.const ~stype:(Regex.chr ',') ~view:" - " ~default:",";
              Slens.copy digits;
            ]
        in
        check Alcotest.string "get" "ab - 12" (l.get "ab,12");
        check Alcotest.string "put" "cd,34" (l.put "cd - 34" "ab,12"));
    tc "union dispatches on source type" (fun () ->
        let l = Slens.union (Slens.copy word) (Slens.copy digits) in
        check Alcotest.string "letters" "ab" (l.get "ab");
        check Alcotest.string "digits" "12" (l.get "12"));
    tc "union put prefers the branch of the old source" (fun () ->
        (* Both branches have the same view type; put must route through
           the branch matching the old source. *)
        let b1 =
          Slens.concat (Slens.copy word) (Slens.del (Regex.chr '!') ~default:"!")
        in
        let b2 =
          Slens.concat (Slens.copy word) (Slens.del (Regex.chr '?') ~default:"?")
        in
        let l = Slens.union b1 b2 in
        check Alcotest.string "! source keeps !" "xy!" (l.put "xy" "ab!");
        check Alcotest.string "? source keeps ?" "xy?" (l.put "xy" "ab?"));
    tc "union rejects overlapping source types" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Slens.union (Slens.copy word) (Slens.copy (Regex.str "ab")));
             false
           with Slens.Type_error _ -> true));
    tc "union create picks the first matching view type" (fun () ->
        let l = Slens.union (Slens.copy word) (Slens.copy digits) in
        check Alcotest.string "create digits" "12" (l.create "12"));
    tc "star maps chunks and aligns positionally" (fun () ->
        let item =
          Slens.concat (Slens.copy word)
            (Slens.concat
               (Slens.del (Regex.chr ':') ~default:":")
               (Slens.concat (Slens.del digits ~default:"0")
                  (Slens.copy (Regex.chr ';'))))
        in
        let l = Slens.star item in
        check Alcotest.string "get" "ab;cd;" (l.get "ab:1;cd:2;");
        (* Positional: first view chunk reuses first source chunk. *)
        check Alcotest.string "put same length" "xy:1;zw:2;"
          (l.put "xy;zw;" "ab:1;cd:2;");
        check Alcotest.string "put shorter drops" "xy:1;"
          (l.put "xy;" "ab:1;cd:2;");
        check Alcotest.string "put longer creates" "xy:1;zw:2;uv:0;"
          (l.put "xy;zw;uv;" "ab:1;cd:2;"));
    tc "star_key aligns by key, preserving hidden data" (fun () ->
        let item =
          Slens.concat (Slens.copy word)
            (Slens.concat
               (Slens.del (Regex.chr ':') ~default:":")
               (Slens.concat (Slens.del digits ~default:"0")
                  (Slens.copy (Regex.chr ';'))))
        in
        let l = Slens.star_key ~key:Fun.id item in
        (* Reorder the view: hidden numbers follow their words. *)
        check Alcotest.string "reorder" "cd:2;ab:1;"
          (l.put "cd;ab;" "ab:1;cd:2;");
        (* Delete + re-add: data of the re-added key survives within one
           put, because the old source still has it. *)
        check Alcotest.string "drop one" "cd:2;" (l.put "cd;" "ab:1;cd:2;"));
    tc "separated handles empty and non-empty lists" (fun () ->
        let l = Slens.separated ~sep:(Slens.copy (Regex.chr ',')) (Slens.copy word) in
        check Alcotest.string "empty" "" (l.get "");
        check Alcotest.string "single" "ab" (l.get "ab");
        check Alcotest.string "many" "ab,cd" (l.get "ab,cd"));
    tc "compose pipes two lenses" (fun () ->
        (* First lens rewrites ',' to ' '; second deletes digits after the
           space.  Composition requires equal intermediate types. *)
        let l1 =
          Slens.concat_list
            [
              Slens.copy word;
              Slens.const ~stype:(Regex.chr ',') ~view:" " ~default:",";
              Slens.copy digits;
            ]
        in
        let l2 =
          Slens.concat_list
            [
              Slens.copy word;
              Slens.copy (Regex.chr ' ');
              Slens.copy digits;
            ]
        in
        let l = Slens.compose l1 l2 in
        check Alcotest.string "get" "ab 12" (l.get "ab,12");
        check Alcotest.string "put" "cd,34" (l.put "cd 34" "ab,12"));
    tc "compose rejects mismatched intermediate types" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Slens.compose (Slens.copy word) (Slens.copy digits));
             false
           with Slens.Type_error _ -> true));
    tc "swap exchanges the two halves in the view" (fun () ->
        let l =
          Slens.swap (Slens.copy word)
            (Slens.copy digits)
        in
        check Alcotest.string "get" "12ab" (l.get "ab12");
        check Alcotest.string "put" "cd34" (l.put "34cd" "ab12"));
  ]

(* ------------------------------------------------------------------ *)
(* Law properties with random well-typed inputs *)

let gen_word = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 8))
let gen_digits = QCheck2.Gen.(string_size ~gen:(char_range '0' '9') (1 -- 5))

let law_holds l x =
  match l.Bx.Law.check x with Bx.Law.Holds -> true | Bx.Law.Violated _ -> false

let entry_gen =
  (* Well-typed sources of the form word:digits; *)
  QCheck2.Gen.(
    map
      (fun pairs ->
        String.concat ""
          (List.map (fun (w, d) -> w ^ ":" ^ d ^ ";") pairs))
      (list_size (0 -- 6) (pair gen_word gen_digits)))

let item =
  Slens.concat (Slens.copy word)
    (Slens.concat
       (Slens.del (Regex.chr ':') ~default:":")
       (Slens.concat (Slens.del digits ~default:"0")
          (Slens.copy (Regex.chr ';'))))

let view_gen =
  QCheck2.Gen.(
    map
      (fun ws -> String.concat "" (List.map (fun w -> w ^ ";") ws))
      (list_size (0 -- 6) gen_word))

let law_tests =
  let mk name gen prop = QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name gen prop) in
  [
    mk "star: GetPut on random well-typed sources" entry_gen (fun s ->
        law_holds (Slens.get_put_law (Slens.star item)) s);
    mk "star: PutGet on random source/view pairs"
      QCheck2.Gen.(pair entry_gen view_gen)
      (fun (s, v) -> law_holds (Slens.put_get_law (Slens.star item)) (s, v));
    mk "star_key: GetPut on random well-typed sources" entry_gen (fun s ->
        law_holds (Slens.get_put_law (Slens.star_key ~key:Fun.id item)) s);
    mk "star_key: PutGet needs key-distinct views"
      QCheck2.Gen.(pair entry_gen view_gen)
      (fun (s, v) ->
        (* Dictionary alignment can merge duplicate keys; restrict to views
           with distinct chunks, which is the documented precondition. *)
        let chunks = String.split_on_char ';' v in
        let distinct = List.sort_uniq compare chunks in
        if List.length distinct <> List.length chunks then true
        else
          law_holds (Slens.put_get_law (Slens.star_key ~key:Fun.id item)) (s, v));
    mk "concat: round-trip through to_lens" QCheck2.Gen.(pair gen_word gen_digits)
      (fun (w, d) ->
        let l =
          Slens.concat (Slens.copy word) (Slens.del digits ~default:"0")
        in
        let fl = Slens.to_lens l in
        let s = w ^ d in
        String.equal (fl.Bx.Lens.put (fl.Bx.Lens.get s) s) s);
  ]

(* ------------------------------------------------------------------ *)
(* The POPL'08 flavour: a composers CSV projection *)

let composers_lens () =
  (* source line:  name, dates, nationality\n
     view line:    name, nationality\n *)
  let name = Regex.plus (Regex.cset (Cset.union (Cset.range 'A' 'Z') (Cset.range 'a' 'z'))) in
  let dates =
    Regex.concat_list
      Regex.[ repeat 4 (cset (Cset.range '0' '9')); chr '-';
              repeat 4 (cset (Cset.range '0' '9')) ]
  in
  let nationality = name in
  let line =
    Slens.concat_list
      [
        Slens.copy name;
        Slens.copy (Regex.str ", ");
        Slens.del (Regex.seq dates (Regex.str ", ")) ~default:"0000-0000, ";
        Slens.copy nationality;
        Slens.copy (Regex.chr '\n');
      ]
  in
  Slens.star_key ~key:Fun.id line

let composers_tests =
  [
    tc "get projects away the dates" (fun () ->
        let l = composers_lens () in
        check Alcotest.string "projection"
          "Jean, French\nAlexandre, French\n"
          (l.get
             "Jean, 1925-2016, French\nAlexandre, 1813-1888, French\n"));
    tc "put preserves dates under reordering" (fun () ->
        let l = composers_lens () in
        check Alcotest.string "reordered"
          "Alexandre, 1813-1888, French\nJean, 1925-2016, French\n"
          (l.put "Alexandre, French\nJean, French\n"
             "Jean, 1925-2016, French\nAlexandre, 1813-1888, French\n"));
    tc "put creates unknown composers with default dates" (fun () ->
        let l = composers_lens () in
        check Alcotest.string "created"
          "Benjamin, 0000-0000, English\n"
          (l.put "Benjamin, English\n" ""));
    tc "deleting from the view deletes from the source" (fun () ->
        let l = composers_lens () in
        check Alcotest.string "deleted" "Jean, 1925-2016, French\n"
          (l.put "Jean, French\n"
             "Jean, 1925-2016, French\nAlexandre, 1813-1888, French\n"));
    tc "construction compiles each distinct regex's DFA exactly once"
      (fun () ->
        (* Warm: every regex of the catalogue Composers lens is compiled. *)
        ignore (Bx_catalogue.Composers_string.build_lens ());
        let h0, m0 = Dfa.cache_stats () in
        (* Rebuilding the whole lens (all type checks, ambiguity analyses
           and splitters rerun) must not build a single DFA. *)
        ignore (Bx_catalogue.Composers_string.build_lens ());
        let h1, m1 = Dfa.cache_stats () in
        check Alcotest.int "re-construction builds no DFA" m0 m1;
        check Alcotest.bool "re-construction is served by the cache" true
          (h1 > h0));
  ]

(* ------------------------------------------------------------------ *)
(* Canonizers / quotient lenses *)

let canonizer_tests =
  [
    tc "identity canonizer is trivial" (fun () ->
        let cz = Canonizer.identity word in
        check Alcotest.string "canonize" "abc" (cz.Canonizer.canonize "abc"));
    tc "make rejects canonical forms outside the concrete type" (fun () ->
        check Alcotest.bool "raises" true
          (try
             let (_ : Canonizer.t) =
               Canonizer.make ~ctype:word ~atype:digits ~canonize:Fun.id
             in
             false
           with Slens.Type_error _ -> true));
    tc "final_newline accepts and repairs unterminated documents" (fun () ->
        let line = Regex.(seq (plus letters) (chr '\n')) in
        let doc = Regex.star line in
        let cz = Canonizer.final_newline doc in
        check Alcotest.string "already terminated" "ab\ncd\n"
          (cz.Canonizer.canonize "ab\ncd\n");
        check Alcotest.string "repaired" "ab\ncd\n"
          (cz.Canonizer.canonize "ab\ncd");
        check Alcotest.bool "ctype accepts unterminated" true
          (Regex.matches cz.Canonizer.ctype "ab\ncd");
        check Alcotest.bool "atype is the terminated form" true
          (Regex.matches cz.Canonizer.atype "ab\ncd\n"));
    tc "canonized_law holds for final_newline" (fun () ->
        let line = Regex.(seq (plus letters) (chr '\n')) in
        let cz = Canonizer.final_newline (Regex.star line) in
        let law = Canonizer.canonized_law cz in
        List.iter
          (fun s ->
            match law.Bx.Law.check s with
            | Bx.Law.Holds -> ()
            | Bx.Law.Violated m -> Alcotest.failf "%S: %s" s m)
          [ "ab\n"; "ab"; ""; "ab\ncd" ]);
    tc "left_quot lets a lens accept sloppy sources" (fun () ->
        let line =
          Slens.concat (Slens.copy word)
            (Slens.copy (Regex.chr '\n'))
        in
        let doc_lens = Slens.star line in
        let cz = Canonizer.final_newline doc_lens.Slens.stype in
        let l = Canonizer.left_quot cz doc_lens in
        check Alcotest.string "unterminated source accepted" "ab\ncd\n"
          (l.Slens.get "ab\ncd");
        check Alcotest.string "put produces the canonical form" "xy\n"
          (l.Slens.put "xy\n" "ab"));
    tc "right_quot canonizes the edited view before put" (fun () ->
        let line =
          Slens.concat (Slens.copy word) (Slens.copy (Regex.chr '\n'))
        in
        let doc_lens = Slens.star line in
        let cz = Canonizer.final_newline doc_lens.Slens.vtype in
        let l = Canonizer.right_quot doc_lens cz in
        check Alcotest.string "sloppy view accepted" "xy\n"
          (l.Slens.put "xy" "ab\n"));
    tc "left_quot rejects mismatched types" (fun () ->
        check Alcotest.bool "raises" true
          (try
             let (_ : Slens.t) =
               Canonizer.left_quot (Canonizer.identity digits)
                 (Slens.copy word)
             in
             false
           with Slens.Type_error _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Diff-aligned star *)

let diff_item =
  Slens.concat (Slens.copy word)
    (Slens.concat
       (Slens.del (Regex.chr ':') ~default:":")
       (Slens.concat (Slens.del digits ~default:"0")
          (Slens.copy (Regex.chr ';'))))

let star_diff_tests =
  [
    tc "middle insertion keeps surrounding hidden data" (fun () ->
        let l = Slens.star_diff ~key:Fun.id diff_item in
        check Alcotest.string "inserted" "aa:1;xx:0;bb:2;"
          (l.Slens.put "aa;xx;bb;" "aa:1;bb:2;"));
    tc "middle deletion keeps the rest" (fun () ->
        let l = Slens.star_diff ~key:Fun.id diff_item in
        check Alcotest.string "deleted" "aa:1;cc:3;"
          (l.Slens.put "aa;cc;" "aa:1;bb:2;cc:3;"));
    tc "duplicate keys align in order (greedy star_key also ok here)" (fun () ->
        let l = Slens.star_diff ~key:Fun.id diff_item in
        check Alcotest.string "both kept" "aa:1;aa:2;"
          (l.Slens.put "aa;aa;" "aa:1;aa:2;"));
    tc "diff vs greedy on duplicate keys with a prefix edit" (fun () ->
        (* Source: aa:1; aa:2;  View: replace the first aa by xx.  LCS
           matches the surviving view "aa" with the LATER source chunk
           (order-respecting: something before it disappeared), while
           greedy key matching grabs the FIRST source chunk. *)
        let src = "aa:1;aa:2;" in
        let view = "xx;aa;" in
        let diff = Slens.star_diff ~key:Fun.id diff_item in
        let greedy = Slens.star_key ~key:Fun.id diff_item in
        check Alcotest.string "diff: order-respecting match"
          "xx:0;aa:2;" (diff.Slens.put view src);
        check Alcotest.string "greedy: first match wins"
          "xx:0;aa:1;" (greedy.Slens.put view src));
    tc "get and create agree with plain star" (fun () ->
        let plain = Slens.star diff_item in
        let diff = Slens.star_diff ~key:Fun.id diff_item in
        check Alcotest.string "get" (plain.Slens.get "aa:1;bb:2;")
          (diff.Slens.get "aa:1;bb:2;");
        check Alcotest.string "create" (plain.Slens.create "aa;bb;")
          (diff.Slens.create "aa;bb;"));
    tc "GetPut holds for star_diff" (fun () ->
        let l = Slens.star_diff ~key:Fun.id diff_item in
        let law = Slens.get_put_law l in
        List.iter
          (fun s ->
            match law.Bx.Law.check s with
            | Bx.Law.Holds -> ()
            | Bx.Law.Violated m -> Alcotest.failf "%S: %s" s m)
          [ ""; "aa:1;"; "aa:1;bb:2;cc:3;"; "aa:1;aa:2;" ]);
  ]

let star_diff_prop_tests =
  let mk name gen prop = QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name gen prop) in
  [
    mk "star_diff: GetPut on random well-typed sources" entry_gen (fun s ->
        law_holds (Slens.get_put_law (Slens.star_diff ~key:Fun.id item)) s);
    mk "star_diff: PutGet on random source/view pairs"
      QCheck2.Gen.(pair entry_gen view_gen)
      (fun (s, v) ->
        law_holds (Slens.put_get_law (Slens.star_diff ~key:Fun.id item)) (s, v));
  ]

(* ------------------------------------------------------------------ *)
(* Permute *)

let permute_tests =
  [
    tc "permute reorders three fields" (fun () ->
        (* source: word,digits,word! ; view: word!word,digits (order [2;0;1]) *)
        let pieces =
          [
            Slens.concat (Slens.copy word) (Slens.del (Regex.chr ',') ~default:",");
            Slens.concat (Slens.copy digits) (Slens.del (Regex.chr ',') ~default:",");
            Slens.copy (Regex.seq word (Regex.chr '!'));
          ]
        in
        let l = Slens.permute ~order:[ 2; 0; 1 ] pieces in
        check Alcotest.string "get" "hi!ab12" (l.Slens.get "ab,12,hi!");
        check Alcotest.string "put" "yo,99,zz!" (l.Slens.put "zz!yo99" "ab,12,hi!"));
    tc "permute with the identity order is concat_list" (fun () ->
        let pieces = [ Slens.copy word; Slens.copy (Regex.chr ';'); Slens.copy digits ] in
        let l = Slens.permute ~order:[ 0; 1; 2 ] pieces in
        let c = Slens.concat_list pieces in
        check Alcotest.string "same get" (c.Slens.get "ab;12") (l.Slens.get "ab;12"));
    tc "swap coincides with permute [1;0]" (fun () ->
        let l1 = Slens.copy word and l2 = Slens.copy digits in
        let s = Slens.swap l1 l2 in
        let p = Slens.permute ~order:[ 1; 0 ] [ l1; l2 ] in
        check Alcotest.string "get" (s.Slens.get "ab12") (p.Slens.get "ab12");
        check Alcotest.string "put" (s.Slens.put "34cd" "ab12")
          (p.Slens.put "34cd" "ab12"));
    tc "permute preserves hidden data per field" (fun () ->
        let field = Slens.concat (Slens.copy word)
            (Slens.concat (Slens.del (Regex.chr ':') ~default:":")
               (Slens.del digits ~default:"0")) in
        let semi = Slens.copy (Regex.chr ';') in
        let l =
          Slens.permute ~order:[ 2; 1; 0 ]
            [ field; semi; Slens.copy digits ]
        in
        (* source: ab:7;12  view: 12;ab *)
        check Alcotest.string "get" "12;ab" (l.Slens.get "ab:7;12");
        check Alcotest.string "put keeps :7" "xy:7;99"
          (l.Slens.put "99;xy" "ab:7;12"));
    tc "permute rejects non-permutations" (fun () ->
        List.iter
          (fun order ->
            check Alcotest.bool "raises" true
              (try
                 let (_ : Slens.t) =
                   Slens.permute ~order [ Slens.copy word; Slens.copy digits ]
                 in
                 false
               with Slens.Type_error _ -> true))
          [ [ 0; 0 ]; [ 1 ]; [ 0; 1; 2 ]; [ 2; 0 ] ]);
    tc "permute rejects ambiguous chains" (fun () ->
        check Alcotest.bool "raises" true
          (try
             let (_ : Slens.t) =
               Slens.permute ~order:[ 0; 1 ] [ Slens.copy word; Slens.copy word ]
             in
             false
           with Slens.Type_error _ -> true));
    tc "GetPut/PutGet hold for a permuted lens" (fun () ->
        let l =
          Slens.permute ~order:[ 1; 0 ]
            [ Slens.copy word; Slens.copy digits ]
        in
        let gp = Slens.get_put_law l and pg = Slens.put_get_law l in
        (match gp.Bx.Law.check "ab12" with
        | Bx.Law.Holds -> ()
        | Bx.Law.Violated m -> Alcotest.fail m);
        match pg.Bx.Law.check ("ab12", "34cd") with
        | Bx.Law.Holds -> ()
        | Bx.Law.Violated m -> Alcotest.fail m);
  ]

(* ------------------------------------------------------------------ *)
(* The execution engine: allocation discipline, batching, counters *)

let engine_tests =
  let module CS = Bx_catalogue.Composers_string in
  [
    tc "end-to-end get allocates output, not intermediates" (fun () ->
        (* The copying engine allocates hundreds of minor words per line
           (every split materialises both halves); the slice engine only
           allocates the output buffer, the result string and the bounds
           arrays.  A budget of 35 words/line (measured: ~17) fails if
           anyone reintroduces per-split substrings. *)
        let k = 500 in
        let src = CS.synthetic_source k in
        ignore (CS.lens.Slens.get src);
        let before = Gc.minor_words () in
        ignore (Sys.opaque_identity (CS.lens.Slens.get src));
        let per_line = (Gc.minor_words () -. before) /. float_of_int k in
        if per_line > 35. then
          Alcotest.failf "get allocates %.1f minor words/line (budget 35)"
            per_line);
    tc "end-to-end put stays within its allocation budget" (fun () ->
        (* Keyed put additionally builds the chunk-key table and captures
           chunk views; measured ~100 words/line, budget 200. *)
        let k = 500 in
        let src = CS.synthetic_source k in
        let view = CS.synthetic_view k in
        ignore (CS.lens.Slens.put view src);
        let before = Gc.minor_words () in
        ignore (Sys.opaque_identity (CS.lens.Slens.put view src));
        let per_line = (Gc.minor_words () -. before) /. float_of_int k in
        if per_line > 200. then
          Alcotest.failf "put allocates %.1f minor words/line (budget 200)"
            per_line);
    tc "get_all matches get document-wise" (fun () ->
        let docs = List.init 5 (fun i -> CS.synthetic_source (10 + i)) in
        check
          Alcotest.(list string)
          "batch = map" (List.map CS.lens.Slens.get docs)
          (Slens.get_all CS.lens docs));
    tc "get_all with several workers agrees with one" (fun () ->
        let docs = List.init 12 (fun i -> CS.synthetic_source (5 + i)) in
        check
          Alcotest.(list string)
          "workers irrelevant to results"
          (Slens.get_all ~workers:1 CS.lens docs)
          (Slens.get_all ~workers:4 CS.lens docs));
    tc "put_all matches put pair-wise" (fun () ->
        let pairs =
          List.init 6 (fun i ->
              (CS.synthetic_view (4 + i), CS.synthetic_source (4 + i)))
        in
        check
          Alcotest.(list string)
          "batch = map"
          (List.map (fun (v, s) -> CS.lens.Slens.put v s) pairs)
          (Slens.put_all ~workers:3 CS.lens pairs));
    tc "create_all matches create" (fun () ->
        let views = List.init 4 (fun i -> CS.synthetic_view (3 + i)) in
        check
          Alcotest.(list string)
          "batch = map"
          (List.map CS.lens.Slens.create views)
          (Slens.create_all ~workers:2 CS.lens views));
    tc "stats count bytes and splits" (fun () ->
        Slens.reset_stats ();
        let src = CS.synthetic_source 20 in
        ignore (CS.lens.Slens.get src);
        let st = Slens.stats () in
        check Alcotest.bool "bytes counted" true
          (st.Slens.bytes >= String.length src);
        (* 20 records, each split into 5 parts: at least 20 chunk
           decisions and 20 * 4 field boundaries. *)
        check Alcotest.bool "splits counted" true (st.Slens.splits >= 100);
        ignore (CS.lens.Slens.get src);
        let st2 = Slens.stats () in
        check Alcotest.bool "counters are cumulative" true
          (st2.Slens.bytes > st.Slens.bytes);
        check Alcotest.bool "contexts are reused" true
          (st2.Slens.ctx_reuse > 0));
  ]

let () =
  Alcotest.run "bx-strlens"
    [
      ("split", split_tests);
      ("primitives", prim_tests);
      ("combinators", comb_tests);
      ("laws", law_tests);
      ("composers-csv", composers_tests);
      ("canonizer", canonizer_tests);
      ("star-diff", star_diff_tests);
      ("star-diff-properties", star_diff_prop_tests);
      ("permute", permute_tests);
      ("engine", engine_tests);
    ]
