(* The load subsystem (bx_load): histogram quantiles against exact
   sorted-array quantiles, merge laws, open-loop schedules, the
   generated corpus, per-domain failure accounting in parallel_map,
   response-cache sharding, and one in-process end-to-end loadgen run
   against a live socket server. *)

open Bx_load

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Histograms *)

let exact_quantile values q =
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  sorted.(rank - 1)

let hist_of values =
  let h = Hist.create () in
  Array.iter (Hist.record h) values;
  h

let hist_unit_tests =
  [
    tc "empty histogram reports zeros" (fun () ->
        let h = Hist.create () in
        check Alcotest.int "total" 0 (Hist.total h);
        check Alcotest.int "q50" 0 (Hist.quantile h 0.5);
        check Alcotest.int "max" 0 (Hist.max_value h);
        check Alcotest.int "min" 0 (Hist.min_value h));
    tc "values below 2^sub_bits are exact" (fun () ->
        let h = hist_of (Array.init 100 (fun i -> i)) in
        List.iter
          (fun q ->
            check Alcotest.int
              (Printf.sprintf "q%.2f" q)
              (exact_quantile (Array.init 100 (fun i -> i)) q)
              (Hist.quantile h q))
          [ 0.01; 0.5; 0.9; 0.99; 1.0 ]);
    tc "max and min are exact whatever the buckets" (fun () ->
        let h = hist_of [| 3; 141_592; 65; 35_897 |] in
        check Alcotest.int "max" 141_592 (Hist.max_value h);
        check Alcotest.int "min" 3 (Hist.min_value h);
        check Alcotest.int "total" 4 (Hist.total h));
    tc "quantile never exceeds the recorded max" (fun () ->
        let h = hist_of [| 1_000_000 |] in
        check Alcotest.int "q999 clamps" 1_000_000 (Hist.quantile h 0.999));
    tc "negative values clamp to zero" (fun () ->
        let h = hist_of [| -5 |] in
        check Alcotest.int "min" 0 (Hist.min_value h);
        check Alcotest.int "q50" 0 (Hist.quantile h 0.5));
    tc "merge refuses mismatched sub_bits" (fun () ->
        let a = Hist.create ~sub_bits:7 () in
        let b = Hist.create ~sub_bits:8 () in
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Hist.merge: sub_bits differ") (fun () ->
            ignore (Hist.merge a b)));
  ]

(* Latency-shaped values: mostly small, a heavy tail, up to ~17 minutes
   in microseconds. *)
let gen_values =
  QCheck2.Gen.(
    array_size (1 -- 400)
      (oneof [ 0 -- 1000; 0 -- 100_000; 0 -- 1_000_000_000 ]))

let hist_qcheck_tests =
  let mk name gen prop =
    QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen prop)
  in
  [
    (* The defining guarantee: a bucketed quantile is an upper bound on
       the exact quantile, overshooting by at most one bucket width —
       which is at most exact / sub_buckets (and 1 in the exact
       levels). *)
    mk "bucketed quantiles track exact quantiles"
      QCheck2.Gen.(pair gen_values (oneofl [ 0.5; 0.9; 0.99; 0.999; 1.0 ]))
      (fun (values, q) ->
        let h = hist_of values in
        let exact = exact_quantile values q in
        let est = Hist.quantile h q in
        est >= exact && est <= exact + max 1 (exact / Hist.sub_buckets h));
    mk "merge is associative and commutative"
      QCheck2.Gen.(triple gen_values gen_values gen_values)
      (fun (a, b, c) ->
        let ha = hist_of a and hb = hist_of b and hc = hist_of c in
        let left = Hist.merge (Hist.merge ha hb) hc in
        let right = Hist.merge ha (Hist.merge hb hc) in
        let flipped = Hist.merge hc (Hist.merge hb ha) in
        let same x y =
          Hist.total x = Hist.total y
          && Hist.max_value x = Hist.max_value y
          && Hist.min_value x = Hist.min_value y
          && List.for_all
               (fun q -> Hist.quantile x q = Hist.quantile y q)
               [ 0.1; 0.5; 0.9; 0.99; 0.999 ]
        in
        same left right && same left flipped);
    mk "merge equals recording the concatenation"
      QCheck2.Gen.(pair gen_values gen_values)
      (fun (a, b) ->
        let merged = Hist.merge (hist_of a) (hist_of b) in
        let whole = hist_of (Array.append a b) in
        Hist.total merged = Hist.total whole
        && List.for_all
             (fun q -> Hist.quantile merged q = Hist.quantile whole q)
             [ 0.5; 0.99 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Arrival schedules *)

let arrival_tests =
  [
    tc "constant pacing spaces arrivals evenly" (fun () ->
        let offs = Arrival.schedule Constant ~rate:100. ~seed:0L ~count:10 in
        check (Alcotest.float 1e-9) "first" 0. offs.(0);
        check (Alcotest.float 1e-9) "last" 0.09 offs.(9));
    tc "poisson pacing is deterministic in the seed" (fun () ->
        let a = Arrival.schedule Poisson ~rate:50. ~seed:42L ~count:200 in
        let b = Arrival.schedule Poisson ~rate:50. ~seed:42L ~count:200 in
        check (Alcotest.array (Alcotest.float 0.)) "same seed" a b;
        let c = Arrival.schedule Poisson ~rate:50. ~seed:43L ~count:200 in
        Alcotest.(check bool) "different seed differs" false (a = c));
    tc "poisson arrivals are ordered with the right mean gap" (fun () ->
        let rate = 1000. and count = 20_000 in
        let offs = Arrival.schedule Poisson ~rate ~seed:7L ~count in
        for i = 1 to count - 1 do
          if offs.(i) < offs.(i - 1) then
            Alcotest.failf "arrival %d goes backwards" i
        done;
        (* Mean gap should be 1/rate within a few percent at this n. *)
        let mean = offs.(count - 1) /. float_of_int (count - 1) in
        if mean < 0.0009 || mean > 0.0011 then
          Alcotest.failf "mean gap %.6f out of range for rate %.0f" mean rate);
  ]

(* ------------------------------------------------------------------ *)
(* The generated corpus *)

let corpus_tests =
  [
    tc "every generated entry validates, titles unique" (fun () ->
        let ts = Corpus.generate ~entries:60 ~seed:5 in
        check Alcotest.int "count" 60 (List.length ts);
        List.iter
          (fun t ->
            match Bx_repo.Template.validate t with
            | Ok () -> ()
            | Error es ->
                Alcotest.failf "%s: %s" t.Bx_repo.Template.title
                  (String.concat "; " es))
          ts;
        let titles = List.map (fun t -> t.Bx_repo.Template.title) ts in
        check Alcotest.int "unique titles" 60
          (List.length (List.sort_uniq compare titles)));
    tc "generation is deterministic in (entries, seed)" (fun () ->
        let a = Corpus.generate ~entries:20 ~seed:9 in
        let b = Corpus.generate ~entries:20 ~seed:9 in
        List.iter2
          (fun x y ->
            Alcotest.(check bool)
              x.Bx_repo.Template.title true
              (Bx_repo.Template.equal x y))
          a b;
        let c = Corpus.generate ~entries:20 ~seed:10 in
        Alcotest.(check bool) "different seed differs" false
          (List.for_all2 Bx_repo.Template.equal a c));
    tc "seed_registry = catalogue + corpus, all submittable" (fun () ->
        let registry = Corpus.seed_registry ~entries:12 ~seed:3 () in
        let catalogue = List.length (Bx_catalogue.Catalogue.all ()) in
        check Alcotest.int "size" (catalogue + 12)
          (Bx_repo.Registry.size registry));
    tc "wiki_paths match the registry's served paths" (fun () ->
        let registry = Corpus.seed_registry ~entries:6 ~seed:3 () in
        Array.iter
          (fun path ->
            (* "/examples:name" -> the identifier part after the colon *)
            let i = String.index path ':' in
            let name = String.sub path (i + 1) (String.length path - i - 1) in
            match Bx_repo.Identifier.of_string name with
            | Error e -> Alcotest.failf "%s: %s" path e
            | Ok id -> (
                match Bx_repo.Registry.latest registry id with
                | Ok _ -> ()
                | Error e ->
                    Alcotest.failf "%s not in registry: %s" path
                      (Bx_repo.Registry.error_message e)))
          (Corpus.wiki_paths ~entries:6 ~seed:3));
  ]

(* ------------------------------------------------------------------ *)
(* parallel_map failure accounting (the loadgen client domains ride on
   this: one crashed domain must not abort the others) *)

exception Boom of int

let parallel_tests =
  [
    tc "parallel_map_results isolates per-item failures" (fun () ->
        let out =
          Bx_strlens.Slens.parallel_map_results ~workers:4
            (fun i -> if i mod 3 = 0 then raise (Boom i) else i * 10)
            [ 1; 2; 3; 4; 5; 6 ]
        in
        check Alcotest.int "six outcomes" 6 (List.length out);
        List.iteri
          (fun idx r ->
            let i = idx + 1 in
            match r with
            | Ok v when i mod 3 <> 0 ->
                check Alcotest.int "value" (i * 10) v
            | Error msg when i mod 3 = 0 ->
                Alcotest.(check bool)
                  "mentions the exception" true
                  (String.length msg > 0)
            | Ok _ -> Alcotest.failf "item %d should have failed" i
            | Error e -> Alcotest.failf "item %d failed: %s" i e)
          out);
    tc "parallel_map re-raises the first failure in item order" (fun () ->
        match
          Bx_strlens.Slens.parallel_map ~workers:4
            (fun i -> if i >= 3 then raise (Boom i) else i)
            [ 1; 2; 3; 4; 5 ]
        with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom i -> check Alcotest.int "first in order" 3 i);
    tc "workers=1 still reports outcomes" (fun () ->
        let out =
          Bx_strlens.Slens.parallel_map_results ~workers:1
            (fun i -> if i = 2 then failwith "two" else i)
            [ 1; 2; 3 ]
        in
        check Alcotest.int "three outcomes" 3 (List.length out);
        Alcotest.(check bool)
          "middle failed" true
          (match out with [ Ok 1; Error _; Ok 3 ] -> true | _ -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Response-cache sharding *)

let response body =
  { Bx_repo.Webui.status = 200; content_type = "text/html"; body; headers = [] }

let respcache_tests =
  [
    tc "a domain hits its own shard" (fun () ->
        let cache =
          Bx_server.Respcache.create ~capacity:64 ~shards:4
            (Bx_server.Metrics.create ())
        in
        check Alcotest.int "shards" 4 (Bx_server.Respcache.shard_count cache);
        Bx_server.Respcache.store cache ~path:"/a" ~generation:1 (response "A");
        (match Bx_server.Respcache.find cache ~path:"/a" ~generation:1 with
        | Some r -> check Alcotest.string "body" "A" r.Bx_repo.Webui.body
        | None -> Alcotest.fail "expected a hit in the same domain");
        check Alcotest.int "size" 1 (Bx_server.Respcache.size cache);
        let acq, _ = Bx_server.Respcache.lock_stats cache in
        Alcotest.(check bool) "acquisitions counted" true (acq > 0));
    tc "shards are per-domain; other domains miss and refill" (fun () ->
        let shards = 16 in
        let cache =
          Bx_server.Respcache.create ~capacity:64 ~shards
            (Bx_server.Metrics.create ())
        in
        Bx_server.Respcache.store cache ~path:"/p" ~generation:1 (response "P");
        let mine = (Domain.self () :> int) mod shards in
        let seen_other =
          Domain.join
            (Domain.spawn (fun () ->
                 let theirs = (Domain.self () :> int) mod shards in
                 if theirs = mine then None
                 else begin
                   let miss =
                     Bx_server.Respcache.find cache ~path:"/p" ~generation:1
                   in
                   Bx_server.Respcache.store cache ~path:"/p" ~generation:1
                     (response "P");
                   let hit =
                     Bx_server.Respcache.find cache ~path:"/p" ~generation:1
                   in
                   Some (miss, hit)
                 end))
        in
        match seen_other with
        | None -> () (* same shard by id coincidence: nothing to assert *)
        | Some (miss, hit) ->
            Alcotest.(check bool) "other shard misses" true (miss = None);
            Alcotest.(check bool) "then fills its own" true (hit <> None);
            check Alcotest.int "both shards filled" 2
              (Bx_server.Respcache.size cache));
    tc "stale generations are evicted at capacity" (fun () ->
        (* capacity 16 is the per-shard floor *)
        let cache =
          Bx_server.Respcache.create ~capacity:16 ~shards:1
            (Bx_server.Metrics.create ())
        in
        for i = 1 to 16 do
          Bx_server.Respcache.store cache
            ~path:(Printf.sprintf "/old%d" i)
            ~generation:1 (response "old")
        done;
        Bx_server.Respcache.store cache ~path:"/new" ~generation:2
          (response "new");
        Alcotest.(check bool)
          "old generation swept" true
          (Bx_server.Respcache.size cache <= 2);
        Alcotest.(check bool)
          "new entry present" true
          (Bx_server.Respcache.find cache ~path:"/new" ~generation:2 <> None));
  ]

(* ------------------------------------------------------------------ *)
(* Service lock counters *)

let service_lock_tests =
  [
    tc "reads and writes are counted and exported" (fun () ->
        let t =
          match
            Bx_server.Service.create ~seed:Bx_catalogue.Catalogue.seed ()
          with
          | Ok t -> t
          | Error e -> Alcotest.failf "service: %s" e
        in
        let get path =
          Bx_server.Service.handle t ~meth:"GET" ~path ~body:""
        in
        check Alcotest.int "GET /" 200 (get "/").Bx_repo.Webui.status;
        let wiki = get "/examples:composers.wiki" in
        check Alcotest.int "GET wiki" 200 wiki.Bx_repo.Webui.status;
        let post =
          Bx_server.Service.handle t ~meth:"POST" ~path:"/examples:composers"
            ~body:wiki.Bx_repo.Webui.body
        in
        check Alcotest.int "POST back" 200 post.Bx_repo.Webui.status;
        let row name mode =
          match
            List.find_opt
              (fun (l, m, _, _) -> l = name && m = mode)
              (Bx_server.Service.lock_stats t)
          with
          | Some (_, _, acq, _) -> acq
          | None -> Alcotest.failf "no %s/%s row" name mode
        in
        Alcotest.(check bool) "read acquisitions" true (row "registry" "read" >= 2);
        Alcotest.(check bool) "write acquisitions" true (row "registry" "write" >= 1);
        let metrics = get "/metrics" in
        check Alcotest.int "GET /metrics" 200 metrics.Bx_repo.Webui.status;
        List.iter
          (fun needle ->
            if
              not
                (let hay = metrics.Bx_repo.Webui.body in
                 let nl = String.length needle and hl = String.length hay in
                 let rec scan i =
                   i + nl <= hl
                   && (String.sub hay i nl = needle || scan (i + 1))
                 in
                 scan 0)
            then Alcotest.failf "/metrics lacks %s" needle)
          [
            "bxwiki_lock_acquisitions_total{lock=\"registry\",mode=\"read\"}";
            "bxwiki_lock_contended_total{lock=\"registry\",mode=\"write\"}";
            "bxwiki_respcache_shards";
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* End to end: a live server, a short open-loop run *)

let catalogue_targets () =
  List.filter_map
    (fun t ->
      match Bx_repo.Identifier.of_title t.Bx_repo.Template.title with
      | Ok id -> Some ("/" ^ Bx_repo.Identifier.wiki_path id)
      | Error _ -> None)
    (Bx_catalogue.Catalogue.all ())
  |> Array.of_list

let live_tests =
  [
    tc "open-loop run against a live server" (fun () ->
        let config =
          { Bx_server.Service.default_config with cache_shards = 2 }
        in
        let t =
          match
            Bx_server.Service.create ~config
              ~lenses:
                [ ("composers", Bx_catalogue.Composers_string.lens) ]
              ~seed:Bx_catalogue.Catalogue.seed ()
          with
          | Ok t -> t
          | Error e -> Alcotest.failf "service: %s" e
        in
        let server =
          Thread.create
            (fun () ->
              match
                Bx_server.Service.serve t ~port:0 ~workers:2 ~quiet:true ()
              with
              | Ok () -> ()
              | Error e -> Printf.eprintf "serve: %s\n%!" e)
            ()
        in
        let rec wait_port n =
          match Bx_server.Service.port t with
          | Some p -> p
          | None ->
              if n > 500 then Alcotest.fail "server never bound"
              else begin
                Thread.delay 0.01;
                wait_port (n + 1)
              end
        in
        let port = wait_port 0 in
        (match Loadgen.scrape_locks ~port with
        | Error e -> Alcotest.failf "scrape: %s" e
        | Ok rows ->
            Alcotest.(check bool)
              "registry read row scraped" true
              (List.exists
                 (fun r ->
                   r.Loadgen.lock = "registry" && r.Loadgen.mode = "read")
                 rows));
        let spec =
          {
            Loadgen.port;
            profile = Workload.read_heavy;
            pacing = Arrival.Constant;
            rate = 60.;
            domains = 2;
            warmup = 0.3;
            duration = 1.0;
            seed = 11;
            targets = catalogue_targets ();
          }
        in
        (match Loadgen.run spec with
        | Error e -> Alcotest.failf "loadgen: %s" e
        | Ok r ->
            Alcotest.(check bool) "sent some" true (r.Loadgen.sent > 0);
            check Alcotest.int "no failures" 0 r.Loadgen.failed;
            check Alcotest.int "no transport errors" 0 r.Loadgen.transport;
            check (Alcotest.list Alcotest.string) "no domain crashes" []
              r.Loadgen.domain_failures;
            check Alcotest.int "every request measured" r.Loadgen.sent
              (Hist.total r.Loadgen.latency);
            Alcotest.(check bool)
              "lock deltas recorded" true
              (r.Loadgen.locks <> []));
        Bx_server.Service.shutdown t;
        Thread.join server);
  ]

let () =
  Alcotest.run "bx_load"
    [
      ("histogram", hist_unit_tests);
      ("histogram laws", hist_qcheck_tests);
      ("arrivals", arrival_tests);
      ("corpus", corpus_tests);
      ("parallel accounting", parallel_tests);
      ("respcache shards", respcache_tests);
      ("service locks", service_lock_tests);
      ("live loadgen", live_tests);
    ]
