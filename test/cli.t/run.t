The CLI end to end, against the seeded repository.

Listing shows every entry, provisional at 0.1, as in the paper:

  $ bxrepo list | head -6
  BOOKSTORE              v0.1   PRECISE              A tree lens: an XML-ish bookstore of (title, author, pric...
  BOOKSTORE-EDIT         v0.1   PRECISE              The delta-based bookstore: price-list edits against tree ...
  CELSIUS                v0.1   PRECISE              Celsius and Fahrenheit temperatures kept consistent by th...
  COMPOSERS              v0.1   PRECISE              This example stands for many cases where two slightly, bu...
  COMPOSERS-BOOMERANG    v0.1   PRECISE              The original, asymmetric form of the Composers example: a...
  COMPOSERS-EDIT         v0.1   PRECISE              The delta-based Composers: the same two models as COMPOSE...

  $ bxrepo list | wc -l
  17

The section 4 entry's wiki page, through the Sync lens:

  $ bxrepo render COMPOSERS | head -9
  + COMPOSERS
  
  ++ Version
  
  0.1
  
  ++ Type
  
  PRECISE





Machine verification of the paper's claims (E1):

  $ bxrepo check COMPOSERS
  COMPOSERS: claimed properties vs machine verification
  correct                verified
  hippocratic            verified
  not undoable           verified
  simply-matching        unsupported (human review)

Citations are stable and version-pinned:

  $ bxrepo cite COMPOSERS
  Perdita Stevens, James McKinna, James Cheney. "COMPOSERS", version 0.1. The Bx Examples Repository, http://bx-community.wikidot.com/examples:composers.

Search by property claim:

  $ bxrepo search --property 'not undoable'
  COMPOSERS
  FAMILIES2PERSONS
  SCHEMA-COEVOLUTION

  $ bxrepo search --class BENCHMARK
  FAMILIES2PERSONS

The glossary resolves template vocabulary:

  $ bxrepo glossary hippocratic
  hippocratic
    Restoration never modifies models that are already consistent ('first, do
    no harm').

Unknown entries fail cleanly:

  $ bxrepo show NONESUCH
  bxrepo: no entry NONESUCH
  [1]

The undoability counterexample (E2), straight from the paper's Discussion:

  $ bxrepo demo-undoability
  The COMPOSERS undoability counterexample (paper, section 4):
  
    m0 = [Britten, 1913-1976, English; Tippett, 1905-1998, English]
    n0 = [Britten, English; Tippett, English]
  
  delete Britten from n:
    n1 = [Tippett, English]
  enforce consistency on m (bwd):
    m1 = [Tippett, 1905-1998, English]
  
  restore Britten to n:
    n2 = [Britten, English; Tippett, English]
  enforce consistency on m again (bwd):
    m2 = [Britten, ????-????, English; Tippett, 1905-1998, English]
  
  dates lost: true — m cannot return to its original state.





Export writes the section 5.4 local copy; import reads it back:

  $ bxrepo export ./wiki-copy
  exported 52 files to ./wiki-copy
  $ bxrepo import ./wiki-copy | head -3
  loaded 17 entries:
    BOOKSTORE              versions 0.1
    BOOKSTORE-EDIT         versions 0.1

Structured JSON for platform moves (section 5.1):

  $ bxrepo show LINES --json | head -5
  {
    "title": "LINES",
    "version": "0.1",
    "classes": [
      "PRECISE"

Contributors validate their JSON drafts before submitting:

  $ bxrepo show CELSIUS --json > draft.json
  $ bxrepo validate draft.json
  validates.
  no style advice.
  $ sed 's/"overview": ".*"/"overview": ""/' draft.json > broken.json
  $ bxrepo validate broken.json
  error: overview must be present
  [1]

The symlens repair verifies Undoable where the base entry denies it:

  $ bxrepo check COMPOSERS-SYMLENS
  COMPOSERS-SYMLENS: claimed properties vs machine verification
  correct                verified
  hippocratic            verified
  undoable               verified

The cross-reference index and the archival manuscript:

  $ bxrepo index | head -5
  + Index
  
  ++ By class
  
  * PRECISE: BOOKSTORE, BOOKSTORE-EDIT, CELSIUS, COMPOSERS, COMPOSERS-BOOMERANG, COMPOSERS-EDIT, COMPOSERS-SYMLENS, FAMILIES2PERSONS, FORMATTER, LINES, MASTER-REPLICAS, PEOPLE, SELECT-PROJECT-VIEW, UML2RDBMS, WIKI-SYNC

  $ bxrepo manuscript | head -1
  + The Bx Examples Repository: Collected Examples

The BENCHMARK entry's scenarios stay consistent throughout:

  $ bxrepo scenario --size 4
  batch-forward(4)             create all families, derive persons once
    families=4 persons=16 restorations=2 consistent-throughout=true
  incremental-forward(4)       add families one at a time, restoring after each
    families=4 persons=16 restorations=5 consistent-throughout=true
  backward-churn(4)            delete and re-add persons, restoring families each time
    families=1 persons=4 restorations=9 consistent-throughout=true




The wiki as a durable service (bx_server): start on an ephemeral port
with a journal, browse, edit.

  $ bxwiki --port 0 --port-file port --journal jdir --quiet 2> server.err &
  $ BXPID=$!
  $ for i in $(seq 1 150); do [ -s port ] && break; sleep 0.1; done
  $ PORT=$(cat port)

  $ curl -sf "http://127.0.0.1:$PORT/examples:celsius.wiki" -o page.wiki
  $ head -1 page.wiki
  + CELSIUS

  $ sed 's/temperature/TEMPERATURE/' page.wiki > edited.wiki
  $ curl -sf -X POST --data-binary @edited.wiki \
  >   "http://127.0.0.1:$PORT/examples:celsius" | grep -o 'Saved as version 0.2'
  Saved as version 0.2

The edit was journaled (fsync'd before the 200), and the service is
observable at /metrics:

  $ curl -sf "http://127.0.0.1:$PORT/metrics" > metrics.txt
  $ grep -c 'bxwiki_requests_total{route="entry",method="POST",status="200"} 1' metrics.txt
  1
  $ grep -c 'bxwiki_request_duration_seconds_bucket{route="entry.wiki",le="+Inf"} 1' metrics.txt
  1

kill -9 the server mid-session: the journal replays the edit on restart,
so nothing acknowledged is lost.

  $ kill -9 $BXPID 2> /dev/null
  $ wait $BXPID 2> /dev/null || true
  $ test -s jdir/journal.log && echo journal-has-records
  journal-has-records

  $ bxwiki --port 0 --port-file port2 --journal jdir > boot.log 2> server2.err &
  $ BXPID=$!
  $ for i in $(seq 1 150); do [ -s port2 ] && break; sleep 0.1; done
  $ PORT2=$(cat port2)
  $ grep -c 'replayed 1 journaled edit' boot.log
  1
  $ curl -sf "http://127.0.0.1:$PORT2/examples:celsius.wiki" > revived.wiki
  $ grep -q TEMPERATURE revived.wiki && echo edit-survived
  edit-survived
  $ sed -n '5p' revived.wiki
  0.2

Graceful shutdown on SIGTERM drains, writes a snapshot, and truncates
the journal:

  $ kill -TERM $BXPID
  $ wait $BXPID
  $ tail -1 boot.log
  bxwiki: drained, snapshot written, bye
  $ test -f jdir/snapshot/MANIFEST && echo snapshot-sealed
  snapshot-sealed

The truncated log is reset to the bare v2 segment header (12 bytes of
magic, no records):

  $ wc -c < jdir/journal.log | tr -d ' '
  12
  $ head -1 jdir/journal.log
  bxjournal 2

Fault injection and the retrying client: start a server whose accept
and read seams each fail exactly once (times(1,error)), plus a journal
append that fails on its first attempt.  Plain curl would see dropped
connections and a 500; `bxwiki client` backs off and retries until the
request lands.

  $ bxwiki --port 0 --port-file port3 --journal jdir3 --quiet \
  >   --failpoints 'httpd.accept=times(1,error);httpd.read=times(1,error)' \
  >   2> server3.err &
  $ BXPID=$!
  $ for i in $(seq 1 150); do [ -s port3 ] && break; sleep 0.1; done

Liveness and readiness probes:

  $ bxwiki client --port-file port3 --max-sleep 0.2 GET /healthz
  ok
  $ bxwiki client --port-file port3 --max-sleep 0.2 GET /readyz
  ready

The PUT /debug/failpoints admin route (mounted because --failpoints was
given) arms the write-lock seam to fail twice; each injection surfaces
as a 503 the client backs off from, and the third attempt lands:

  $ bxwiki client --port-file port3 --max-sleep 0.2 \
  >   --data 'service.lock.write=times(2,error)' PUT /debug/failpoints
  service.lock.write=times(2,error)
  $ bxwiki client --port-file port3 --max-sleep 0.2 --retries 6 \
  >   --body-file edited.wiki POST /examples:celsius | grep -o 'Saved as version 0.2'
  Saved as version 0.2

The failpoint hit/fired counters made it to /metrics:

  $ bxwiki client --port-file port3 --max-sleep 0.2 GET /metrics > m3.txt
  $ grep -c 'bxwiki_fault_fired_total{site="service.lock.write"} 2' m3.txt
  1

A client that exhausts its retries reports the failure and exits 1:

  $ bxwiki client --port-file port3 --max-sleep 0.05 \
  >   --data 'service.lock.read=error' PUT /debug/failpoints
  service.lock.read=error
  $ bxwiki client --port-file port3 --max-sleep 0.05 --retries 2 \
  >   GET /examples:celsius
  bxwiki client: giving up after 2 attempts (HTTP 503)
  [1]
An empty PUT body clears every rule:

  $ bxwiki client --port-file port3 --max-sleep 0.05 \
  >   --data '' PUT /debug/failpoints | wc -l | tr -d ' '
  1
  $ bxwiki client --port-file port3 --max-sleep 0.05 GET /examples:celsius > /dev/null

  $ kill -TERM $BXPID
  $ wait $BXPID

Replication and failover: a primary compacting aggressively, edited
enough that the early records only survive inside its snapshot.

  $ bxwiki --port 0 --port-file pport --journal pjdir --compact-every 4 \
  >   --quiet 2> prim.err &
  $ PPID=$!
  $ for i in $(seq 1 150); do [ -s pport ] && break; sleep 0.1; done
  $ PPORT=$(cat pport)
  $ curl -sf "http://127.0.0.1:$PPORT/examples:celsius.wiki" -o prim.wiki
  $ for i in 1 2 3 4 5; do
  >   sed "s/temperature[0-9]*/heat$i/g" prim.wiki > edit$i.wiki
  >   curl -sf -X POST --data-binary "@edit$i.wiki" \
  >     "http://127.0.0.1:$PPORT/examples:celsius" > /dev/null
  > done
  $ test -f pjdir/snapshot/MANIFEST && echo compacted
  compacted

A hot-standby replica catches up from seq 1: the compacted prefix
arrives as a snapshot bootstrap, the tail as streamed journal frames.
/readyz answers 503 while it syncs, so the retrying client doubles as
a readiness gate.

  $ bxwiki replica --replicate-from "$PPORT" --port 0 --port-file rport \
  >   --journal rjdir --poll-wait 0.2 --quiet 2> repl.err &
  $ RPID=$!
  $ for i in $(seq 1 150); do [ -s rport ] && break; sleep 0.1; done
  $ RPORT=$(cat rport)
  $ bxwiki client --port-file rport --retries 20 --max-sleep 0.2 GET /readyz
  ready
  $ for i in $(seq 1 100); do
  >   curl -sf "http://127.0.0.1:$RPORT/examples:celsius.wiki" | grep -q heat5 && break
  >   sleep 0.1
  > done
  $ curl -sf "http://127.0.0.1:$RPORT/examples:celsius.wiki" | grep -q heat5 && echo replicated
  replicated

The replica's lag settled to zero, the bootstrap was counted, and its
role is advertised; writes are refused — they belong on the primary.

  $ curl -sf "http://127.0.0.1:$RPORT/metrics" > rmetrics.txt
  $ grep -c 'bxwiki_replication_snapshot_bootstraps_total 1' rmetrics.txt
  1
  $ grep -c 'bxwiki_replication_lag_seconds 0$' rmetrics.txt
  1
  $ grep -c 'bxwiki_replication_role{role="replica"} 1' rmetrics.txt
  1
  $ bxwiki client --port-file rport --retries 2 --max-sleep 0.05 \
  >   --body-file edit5.wiki POST /examples:celsius > /dev/null
  bxwiki client: giving up after 2 attempts (HTTP 503)
  [1]

kill -9 the primary.  Reads fail over to the replica with --fallback;
writes never do — a replayed POST against a replica is how split
brains are made.

  $ kill -9 $PPID 2> /dev/null
  $ wait $PPID 2> /dev/null || true
  $ bxwiki client --port "$PPORT" --retries 2 --max-sleep 0.05 \
  >   --fallback "$RPORT" GET /examples:celsius.wiki 2> /dev/null | grep -q heat5 && echo failed-over
  failed-over
  $ bxwiki client --port "$PPORT" --retries 2 --max-sleep 0.05 \
  >   --fallback "$RPORT" --body-file edit5.wiki POST /examples:celsius
  bxwiki client: giving up after 2 attempts (connection failed or timed out)
  [1]

Promote the survivor: the epoch advances past the dead primary's and
is persisted before the node turns writable.

  $ bxwiki client --port-file rport --max-sleep 0.2 POST /admin/promote
  promoted: epoch 2
  $ cat rjdir/epoch
  epoch 2
  $ sed 's/heat[0-9]*/afterlife/g' prim.wiki > promoted.wiki
  $ bxwiki client --port-file rport --max-sleep 0.2 \
  >   --body-file promoted.wiki POST /examples:celsius | grep -o 'Saved as version 0.7'
  Saved as version 0.7

Revive the deposed primary from its own journal: the first poll
carrying the new epoch fences it, and its stale writes are rejected —
no acknowledgement from the old timeline can contradict the new one.

  $ bxwiki --port 0 --port-file oport --journal pjdir --quiet 2> old.err &
  $ OPID=$!
  $ for i in $(seq 1 150); do [ -s oport ] && break; sleep 0.1; done
  $ OPORT=$(cat oport)
  $ curl -s -o /dev/null -w '%{http_code}\n' \
  >   "http://127.0.0.1:$OPORT/replication/stream?from=1&epoch=2&wait=0"
  409
  $ curl -s -X POST --data-binary @edit1.wiki "http://127.0.0.1:$OPORT/examples:celsius"
  fenced: deposed by epoch 2, writes rejected
  $ curl -s "http://127.0.0.1:$OPORT/readyz"
  not ready: fenced

  $ kill -TERM $OPID $RPID
  $ wait $OPID $RPID

End-to-end integrity: per-shard content digests, the offline scrubber,
and anti-entropy repair.  A sharded primary, edited and sealed on
shutdown (snapshot pages plus their DIGESTS manifest):

  $ bxwiki --port 0 --port-file iport --journal ijdir --shards 2 \
  >   --quiet 2> iprim.err &
  $ IPID=$!
  $ for i in $(seq 1 150); do [ -s iport ] && break; sleep 0.1; done
  $ IPORT=$(cat iport)
  $ curl -sf "http://127.0.0.1:$IPORT/examples:celsius.wiki" -o ic.wiki
  $ sed 's/temperature/thermal/' ic.wiki > ic1.wiki
  $ curl -sf -X POST --data-binary @ic1.wiki \
  >   "http://127.0.0.1:$IPORT/examples:celsius" > /dev/null

The digest endpoint answers one row per shard — O(shards), whatever
the entry count:

  $ curl -sf "http://127.0.0.1:$IPORT/replication/digest" | head -1
  bxdigest 1 1 2
  $ curl -sf "http://127.0.0.1:$IPORT/replication/digest" | wc -l | tr -d ' '
  3

A hot standby bootstraps and converges to byte-identical digests:

  $ bxwiki replica --replicate-from "$IPORT" --port 0 --port-file irport \
  >   --journal irjdir --shards 2 --poll-wait 0.2 --quiet 2> irepl.err &
  $ IRPID=$!
  $ for i in $(seq 1 150); do [ -s irport ] && break; sleep 0.1; done
  $ IRPORT=$(cat irport)
  $ bxwiki client --port-file irport --retries 20 --max-sleep 0.2 GET /readyz
  ready
  $ for i in $(seq 1 100); do
  >   curl -sf "http://127.0.0.1:$IRPORT/replication/digest" > rdigest.txt
  >   curl -sf "http://127.0.0.1:$IPORT/replication/digest" > pdigest.txt
  >   cmp -s rdigest.txt pdigest.txt && break
  >   sleep 0.1
  > done
  $ cmp -s rdigest.txt pdigest.txt && echo digests-match
  digests-match

Stop both.  The sealed store scrubs clean — zero findings is the
false-positive budget:

  $ kill -TERM $IPID $IRPID
  $ wait $IPID $IRPID
  $ bxwiki scrub --journal ijdir --shards 2 | tail -1 | grep -o '0 finding(s)'
  0 finding(s)

Corrupt one byte of the snapshot page holding the edited version.  The
scrubber names the damage and exits nonzero; the hex pair varies with
the byte, so only the verdict is asserted:

  $ PAGE=$(ls ijdir/shard-*/snapshot/examples_celsius_0.2.wiki)
  $ dd if=/dev/zero of="$PAGE" bs=1 count=1 seek=64 conv=notrunc 2> /dev/null
  $ bxwiki scrub --journal ijdir --shards 2 --quiet 2> /dev/null
  [1]
  $ bxwiki scrub --journal ijdir --shards 2 2> /dev/null | grep -c 'crc mismatch'
  1

Reboot the primary over the corrupted store: the version file fails
its checksum, is excluded from the load and quarantined — the entry
reverts to its clean prefix (version 0.1) rather than serving mutated
bytes.

  $ bxwiki --port 0 --port-file iport2 --journal ijdir --shards 2 \
  >   --quiet 2> iprim2.err &
  $ IPID=$!
  $ for i in $(seq 1 150); do [ -s iport2 ] && break; sleep 0.1; done
  $ IPORT=$(cat iport2)
  $ grep -c 'bxwiki: integrity:' iprim2.err
  1
  $ curl -sf "http://127.0.0.1:$IPORT/examples:celsius.wiki" > reverted.wiki
  $ sed -n '5p' reverted.wiki
  0.1
  $ grep -q thermal reverted.wiki || echo clean-prefix
  clean-prefix

The follower still holds the entry, so its shard digest now disagrees.
Anti-entropy detects the mismatch on a caught-up poll and re-bootstraps
only the diverged shard; the digests converge without a full sync.

  $ bxwiki replica --replicate-from "$IPORT" --port 0 --port-file irport2 \
  >   --journal irjdir --shards 2 --poll-wait 0.2 --quiet 2> irepl2.err &
  $ IRPID=$!
  $ for i in $(seq 1 150); do [ -s irport2 ] && break; sleep 0.1; done
  $ IRPORT=$(cat irport2)
  $ for i in $(seq 1 100); do
  >   curl -sf "http://127.0.0.1:$IRPORT/replication/digest" > rdigest2.txt
  >   curl -sf "http://127.0.0.1:$IPORT/replication/digest" > pdigest2.txt
  >   cmp -s rdigest2.txt pdigest2.txt && break
  >   sleep 0.1
  > done
  $ cmp -s rdigest2.txt pdigest2.txt && echo converged
  converged
  $ curl -sf "http://127.0.0.1:$IRPORT/metrics" > irmetrics.txt
  $ grep -c 'bxwiki_replication_shard_resyncs_total 1' irmetrics.txt
  1
  $ grep -c 'bxwiki_replication_snapshot_bootstraps_total 0' irmetrics.txt
  1
  $ curl -sf "http://127.0.0.1:$IRPORT/examples:celsius.wiki" | sed -n '5p'
  0.1

  $ kill -TERM $IPID $IRPID
  $ wait $IPID $IRPID
