(* Extensional equivalence of the zero-copy slice engine (Slens) and the
   copying reference engine (Slens_ref).

   Lenses are generated as description trees that are well typed {e by
   construction}: tokens draw from disjoint alphabets (lowercase words,
   digits, '#', '!'), every composite at nesting level [n] separates its
   children with a level-specific separator character that no lower level
   uses, and union branches are tagged with distinct leading capitals.
   That discharges the POPL'08 side conditions syntactically, so both
   engines always accept the description; the properties then check that
   the two engines compute identical get/put/create functions, satisfy
   the lens laws, and reject ill-typed inputs alike. *)

open Bx_regex
open Bx_strlens
module S = Slens
module R = Slens_ref

(* ------------------------------------------------------------------ *)
(* Lens descriptions *)

type desc =
  | Dword
  | Ddigits
  | Ddel
  | Dconst
  | Dins
  | Dseq of int * desc * desc
  | Dalt of desc * desc
  | Drep of int * desc
  | Drepkey of int * desc
  | Dperm of int * desc * desc
  | Dcomp of desc

let sep_ch = [| ','; ';'; '|' |]
let sep_str n = String.make 1 sep_ch.(n - 1)
let sep_re n = Regex.chr sep_ch.(n - 1)
let letters = Regex.cset (Cset.range 'a' 'z')
let word = Regex.plus letters
let digits = Regex.plus (Regex.cset (Cset.range '0' '9'))

let rec pp_desc fmt = function
  | Dword -> Format.fprintf fmt "word"
  | Ddigits -> Format.fprintf fmt "digits"
  | Ddel -> Format.fprintf fmt "del"
  | Dconst -> Format.fprintf fmt "const"
  | Dins -> Format.fprintf fmt "ins"
  | Dseq (n, a, b) ->
      Format.fprintf fmt "seq%d(%a,%a)" n pp_desc a pp_desc b
  | Dalt (a, b) -> Format.fprintf fmt "alt(%a,%a)" pp_desc a pp_desc b
  | Drep (n, d) -> Format.fprintf fmt "rep%d(%a)" n pp_desc d
  | Drepkey (n, d) -> Format.fprintf fmt "repkey%d(%a)" n pp_desc d
  | Dperm (n, a, b) ->
      Format.fprintf fmt "perm%d(%a,%a)" n pp_desc a pp_desc b
  | Dcomp d -> Format.fprintf fmt "comp(%a)" pp_desc d

(* Mirror builders: the same combinator tree on both engines. *)

let rec build_s : desc -> S.t = function
  | Dword -> S.copy word
  | Ddigits -> S.copy digits
  | Ddel -> S.del word ~default:"x"
  | Dconst -> S.const ~stype:digits ~view:"#" ~default:"0"
  | Dins -> S.ins "!"
  | Dseq (n, a, b) ->
      S.concat_list [ build_s a; S.copy (sep_re n); build_s b ]
  | Dalt (a, b) ->
      S.union
        (S.concat (S.copy (Regex.chr 'A')) (build_s a))
        (S.concat (S.copy (Regex.chr 'B')) (build_s b))
  | Drep (n, d) -> S.star (S.concat (build_s d) (S.copy (sep_re n)))
  | Drepkey (n, d) ->
      S.star_key ~key:Fun.id (S.concat (build_s d) (S.copy (sep_re n)))
  | Dperm (n, a, b) ->
      S.permute ~order:[ 1; 0 ]
        [
          S.concat (build_s a) (S.copy (sep_re n));
          S.concat (build_s b) (S.copy (sep_re n));
        ]
  | Dcomp d ->
      let l = build_s d in
      S.compose l (S.copy l.S.vtype)

let rec build_r : desc -> R.t = function
  | Dword -> R.copy word
  | Ddigits -> R.copy digits
  | Ddel -> R.del word ~default:"x"
  | Dconst -> R.const ~stype:digits ~view:"#" ~default:"0"
  | Dins -> R.ins "!"
  | Dseq (n, a, b) ->
      R.concat_list [ build_r a; R.copy (sep_re n); build_r b ]
  | Dalt (a, b) ->
      R.union
        (R.concat (R.copy (Regex.chr 'A')) (build_r a))
        (R.concat (R.copy (Regex.chr 'B')) (build_r b))
  | Drep (n, d) -> R.star (R.concat (build_r d) (R.copy (sep_re n)))
  | Drepkey (n, d) ->
      R.star_key ~key:Fun.id (R.concat (build_r d) (R.copy (sep_re n)))
  | Dperm (n, a, b) ->
      R.permute ~order:[ 1; 0 ]
        [
          R.concat (build_r a) (R.copy (sep_re n));
          R.concat (build_r b) (R.copy (sep_re n));
        ]
  | Dcomp d ->
      let l = build_r d in
      R.compose l (R.copy l.R.vtype)

(* ------------------------------------------------------------------ *)
(* Generators: a description plus members of its source and view
   languages, derived from the same tree so they are well typed by
   construction. *)

open QCheck2

let gen_word = Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 5))
let gen_digits = Gen.(string_size ~gen:(char_range '0' '9') (1 -- 4))

let desc_gen =
  let open Gen in
  let leaf = oneofl [ Dword; Ddigits; Ddel; Dconst; Dins ] in
  let rec go n =
    if n = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 (fun a b -> Dseq (n, a, b)) (go (n - 1)) (go (n - 1)));
          (2, map2 (fun a b -> Dalt (a, b)) (go (n - 1)) (go (n - 1)));
          (2, map (fun d -> Drep (n, d)) (go (n - 1)));
          (1, map (fun d -> Drepkey (n, d)) (go (n - 1)));
          (1, map2 (fun a b -> Dperm (n, a, b)) (go (n - 1)) (go (n - 1)));
          (1, map (fun d -> Dcomp d) (go (n - 1)));
        ]
  in
  1 -- 3 >>= go

let rec gen_src = function
  | Dword | Ddel -> gen_word
  | Ddigits | Dconst -> gen_digits
  | Dins -> Gen.return ""
  | Dseq (n, a, b) ->
      Gen.map2 (fun x y -> x ^ sep_str n ^ y) (gen_src a) (gen_src b)
  | Dalt (a, b) ->
      Gen.oneof
        [
          Gen.map (fun x -> "A" ^ x) (gen_src a);
          Gen.map (fun x -> "B" ^ x) (gen_src b);
        ]
  | Drep (n, d) | Drepkey (n, d) ->
      Gen.map
        (fun xs -> String.concat "" (List.map (fun x -> x ^ sep_str n) xs))
        (Gen.list_size Gen.(0 -- 4) (gen_src d))
  | Dperm (n, a, b) ->
      Gen.map2
        (fun x y -> x ^ sep_str n ^ y ^ sep_str n)
        (gen_src a) (gen_src b)
  | Dcomp d -> gen_src d

let rec gen_view = function
  | Dword -> gen_word
  | Ddigits -> gen_digits
  | Ddel -> Gen.return ""
  | Dconst -> Gen.return "#"
  | Dins -> Gen.return "!"
  | Dseq (n, a, b) ->
      Gen.map2 (fun x y -> x ^ sep_str n ^ y) (gen_view a) (gen_view b)
  | Dalt (a, b) ->
      Gen.oneof
        [
          Gen.map (fun x -> "A" ^ x) (gen_view a);
          Gen.map (fun x -> "B" ^ x) (gen_view b);
        ]
  | Drep (n, d) | Drepkey (n, d) ->
      Gen.map
        (fun xs -> String.concat "" (List.map (fun x -> x ^ sep_str n) xs))
        (Gen.list_size Gen.(0 -- 4) (gen_view d))
  | Dperm (n, a, b) ->
      (* View order is the permutation: second child first. *)
      Gen.map2
        (fun x y -> y ^ sep_str n ^ x ^ sep_str n)
        (gen_view a) (gen_view b)
  | Dcomp d -> gen_view d

let with_src = Gen.(desc_gen >>= fun d -> pair (return d) (gen_src d))
let with_view = Gen.(desc_gen >>= fun d -> pair (return d) (gen_view d))

let with_view_src =
  Gen.(
    desc_gen >>= fun d -> triple (return d) (gen_view d) (gen_src d))

let print_pair (d, s) = Format.asprintf "%a on %S" pp_desc d s
let print_triple (d, v, s) = Format.asprintf "%a put %S %S" pp_desc d v s

(* ------------------------------------------------------------------ *)
(* Properties *)

let count = 1000

let prop name gen print f =
  QCheck_alcotest.to_alcotest (Test.make ~count ~name ~print gen f)

let equiv_tests =
  [
    prop "get agrees with the copying engine" with_src print_pair
      (fun (d, s) -> (build_s d).S.get s = (build_r d).R.get s);
    prop "create agrees with the copying engine" with_view print_pair
      (fun (d, v) -> (build_s d).S.create v = (build_r d).R.create v);
    prop "put agrees with the copying engine" with_view_src print_triple
      (fun (d, v, s) -> (build_s d).S.put v s = (build_r d).R.put v s);
    prop "GetPut holds on both engines" with_src print_pair (fun (d, s) ->
        let ls = build_s d and lr = build_r d in
        ls.S.put (ls.S.get s) s = s && lr.R.put (lr.R.get s) s = s);
    prop "PutGet holds on both engines" with_view_src print_triple
      (fun (d, v, s) ->
        let ls = build_s d and lr = build_r d in
        ls.S.get (ls.S.put v s) = v && lr.R.get (lr.R.put v s) = v);
    prop "slice engine rejects every ill-typed source" with_src print_pair
      (fun (d, s) ->
        (* '~' belongs to no token alphabet, so appending it leaves every
           generated source language.  The slice engine verifies
           membership at the public boundary and must always raise; the
           copying engine (verbatim PR 2) only notices when a splitter is
           involved, so it is allowed to return — but if it does raise,
           the slice engine must have raised too, which this property
           subsumes. *)
        let bad = s ^ "~" in
        try
          ignore ((build_s d).S.get bad);
          false
        with S.Type_error _ | Split.Split_error _ -> true);
  ]

let () =
  Alcotest.run "bx-strlens-equiv"
    [ ("slice engine vs copying engine", equiv_tests) ]
