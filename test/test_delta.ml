(* Delta propagation: Sdiff the differ, and Slens_delta's put_delta /
   get_delta against full put / get on both engines.

   The lens generator is the well-typed-by-construction description
   tree of test_strlens_equiv; here sources are generated and views
   derived by get (put_delta's precondition is view = get source), and
   edits are produced by diffing the current view against a freshly
   generated member of the view language — so diff, apply and the
   delta tiers are all exercised on the same inputs.  Roots vary over
   every combinator, which forces the fallback tier (opaque roots),
   the slow tier (duplicate star_key keys) and the fast tier (star
   roots with benign edits) without any steering. *)

open Bx_regex
open Bx_strlens
module S = Slens
module R = Slens_ref
module D = Slens_delta

(* ------------------------------------------------------------------ *)
(* Sdiff unit tests *)

let edit_testable =
  Alcotest.testable
    (fun fmt e ->
      List.iter
        (fun { Sdiff.at; drop; insert } ->
          Format.fprintf fmt "@%d -%d +%S " at drop insert)
        e)
    ( = )

let check_diff_apply old new_ () =
  let e = Sdiff.diff old new_ in
  Alcotest.(check string) "apply reproduces target" new_ (Sdiff.apply old e);
  let decoded =
    match Sdiff.decode (Sdiff.encode e) with
    | Ok e -> e
    | Error m -> Alcotest.failf "decode: %s" m
  in
  Alcotest.(check edit_testable) "encode/decode roundtrip" e decoded

let sdiff_unit_tests =
  [
    Alcotest.test_case "identical documents diff to empty" `Quick (fun () ->
        Alcotest.(check edit_testable) "empty" [] (Sdiff.diff "a\nb\n" "a\nb\n"));
    Alcotest.test_case "single line replace" `Quick (fun () ->
        let e = Sdiff.diff "a\nb\nc\n" "a\nX\nc\n" in
        Alcotest.(check edit_testable)
          "one hunk" [ { Sdiff.at = 2; drop = 2; insert = "X\n" } ] e;
        check_diff_apply "a\nb\nc\n" "a\nX\nc\n" ());
    Alcotest.test_case "insert / delete / prepend / append" `Quick (fun () ->
        check_diff_apply "a\nb\n" "a\nX\nb\n" ();
        check_diff_apply "a\nb\nc\n" "a\nc\n" ();
        check_diff_apply "b\n" "a\nb\n" ();
        check_diff_apply "a\n" "a\nb\n" ();
        check_diff_apply "" "a\nb\n" ();
        check_diff_apply "a\nb\n" "" ();
        check_diff_apply "no newline" "no newline at all" ());
    Alcotest.test_case "hull spans the changed bytes" `Quick (fun () ->
        let old = "aa\nbb\ncc\ndd\n" in
        let e = Sdiff.diff old "aa\nXX\nYY\ndd\n" in
        let doc, (a, b_old, b_new) = Sdiff.apply_with_span old e in
        Alcotest.(check string) "apply" "aa\nXX\nYY\ndd\n" doc;
        Alcotest.(check bool) "prefix intact" true (a >= 3 && b_old <= 9);
        Alcotest.(check int) "shift" (b_new - b_old)
          (String.length doc - String.length old + (b_old - b_old)));
    Alcotest.test_case "malformed edits are rejected" `Quick (fun () ->
        let bad () =
          Sdiff.apply "abc" [ { Sdiff.at = 2; drop = 5; insert = "" } ]
        in
        (match bad () with
        | exception Sdiff.Bad_edit _ -> ()
        | _ -> Alcotest.fail "out-of-bounds edit accepted");
        let overlapping =
          [
            { Sdiff.at = 0; drop = 2; insert = "" };
            { Sdiff.at = 1; drop = 1; insert = "" };
          ]
        in
        (match Sdiff.apply "abc" overlapping with
        | exception Sdiff.Bad_edit _ -> ()
        | _ -> Alcotest.fail "overlapping edit accepted");
        match Sdiff.decode "bxedit1\n3 1 1\nx0 1 0\n" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "garbage frame decoded");
  ]

(* ------------------------------------------------------------------ *)
(* QCheck: Sdiff over random line documents *)

open QCheck2

let gen_line = Gen.(string_size ~gen:(char_range 'a' 'e') (0 -- 4))

let gen_doc =
  Gen.(
    map
      (fun ls -> String.concat "" (List.map (fun l -> l ^ "\n") ls))
      (list_size (0 -- 12) gen_line))

let count = 1000

let prop name gen print f =
  QCheck_alcotest.to_alcotest (Test.make ~count ~name ~print gen f)

let sdiff_prop_tests =
  [
    prop "apply (diff a b) = b"
      Gen.(pair gen_doc gen_doc)
      (fun (a, b) -> Printf.sprintf "%S -> %S" a b)
      (fun (a, b) -> String.equal (Sdiff.apply a (Sdiff.diff a b)) b);
    prop "decode (encode e) = e"
      Gen.(pair gen_doc gen_doc)
      (fun (a, b) -> Printf.sprintf "%S -> %S" a b)
      (fun (a, b) ->
        let e = Sdiff.diff a b in
        match Sdiff.decode (Sdiff.encode e) with
        | Ok e' -> e = e'
        | Error _ -> false);
    prop "documents agree outside the hull"
      Gen.(pair gen_doc gen_doc)
      (fun (a, b) -> Printf.sprintf "%S -> %S" a b)
      (fun (a, b) ->
        let e = Sdiff.diff a b in
        let doc, (h0, h1_old, h1_new) = Sdiff.apply_with_span a e in
        String.equal doc b
        && String.sub a 0 h0 = String.sub doc 0 h0
        && String.sub a h1_old (String.length a - h1_old)
           = String.sub doc h1_new (String.length doc - h1_new));
  ]

(* ------------------------------------------------------------------ *)
(* Lens description trees (the test_strlens_equiv generator, with
   sources only — views are derived by get). *)

type desc =
  | Dword
  | Ddigits
  | Ddel
  | Dconst
  | Dins
  | Dseq of int * desc * desc
  | Dalt of desc * desc
  | Drep of int * desc
  | Drepkey of int * desc
  | Drepdiff of int * desc
  | Dperm of int * desc * desc

let sep_ch = [| ','; ';'; '|' |]
let sep_str n = String.make 1 sep_ch.(n - 1)
let sep_re n = Regex.chr sep_ch.(n - 1)
let letters = Regex.cset (Cset.range 'a' 'z')
let word = Regex.plus letters
let digits = Regex.plus (Regex.cset (Cset.range '0' '9'))

let rec pp_desc fmt = function
  | Dword -> Format.fprintf fmt "word"
  | Ddigits -> Format.fprintf fmt "digits"
  | Ddel -> Format.fprintf fmt "del"
  | Dconst -> Format.fprintf fmt "const"
  | Dins -> Format.fprintf fmt "ins"
  | Dseq (n, a, b) -> Format.fprintf fmt "seq%d(%a,%a)" n pp_desc a pp_desc b
  | Dalt (a, b) -> Format.fprintf fmt "alt(%a,%a)" pp_desc a pp_desc b
  | Drep (n, d) -> Format.fprintf fmt "rep%d(%a)" n pp_desc d
  | Drepkey (n, d) -> Format.fprintf fmt "repkey%d(%a)" n pp_desc d
  | Drepdiff (n, d) -> Format.fprintf fmt "repdiff%d(%a)" n pp_desc d
  | Dperm (n, a, b) -> Format.fprintf fmt "perm%d(%a,%a)" n pp_desc a pp_desc b

let rec build_s : desc -> S.t = function
  | Dword -> S.copy word
  | Ddigits -> S.copy digits
  | Ddel -> S.del word ~default:"x"
  | Dconst -> S.const ~stype:digits ~view:"#" ~default:"0"
  | Dins -> S.ins "!"
  | Dseq (n, a, b) ->
      S.concat_list [ build_s a; S.copy (sep_re n); build_s b ]
  | Dalt (a, b) ->
      S.union
        (S.concat (S.copy (Regex.chr 'A')) (build_s a))
        (S.concat (S.copy (Regex.chr 'B')) (build_s b))
  | Drep (n, d) -> S.star (S.concat (build_s d) (S.copy (sep_re n)))
  | Drepkey (n, d) ->
      S.star_key ~key:Fun.id (S.concat (build_s d) (S.copy (sep_re n)))
  | Drepdiff (n, d) ->
      S.star_diff ~key:Fun.id (S.concat (build_s d) (S.copy (sep_re n)))
  | Dperm (n, a, b) ->
      S.permute ~order:[ 1; 0 ]
        [
          S.concat (build_s a) (S.copy (sep_re n));
          S.concat (build_s b) (S.copy (sep_re n));
        ]

let rec build_r : desc -> R.t = function
  | Dword -> R.copy word
  | Ddigits -> R.copy digits
  | Ddel -> R.del word ~default:"x"
  | Dconst -> R.const ~stype:digits ~view:"#" ~default:"0"
  | Dins -> R.ins "!"
  | Dseq (n, a, b) ->
      R.concat_list [ build_r a; R.copy (sep_re n); build_r b ]
  | Dalt (a, b) ->
      R.union
        (R.concat (R.copy (Regex.chr 'A')) (build_r a))
        (R.concat (R.copy (Regex.chr 'B')) (build_r b))
  | Drep (n, d) -> R.star (R.concat (build_r d) (R.copy (sep_re n)))
  | Drepkey (n, d) ->
      R.star_key ~key:Fun.id (R.concat (build_r d) (R.copy (sep_re n)))
  | Drepdiff (n, d) ->
      R.star_diff ~key:Fun.id (R.concat (build_r d) (R.copy (sep_re n)))
  | Dperm (n, a, b) ->
      R.permute ~order:[ 1; 0 ]
        [
          R.concat (build_r a) (R.copy (sep_re n));
          R.concat (build_r b) (R.copy (sep_re n));
        ]

let gen_word = Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 5))
let gen_digits = Gen.(string_size ~gen:(char_range '0' '9') (1 -- 4))

let desc_gen =
  let open Gen in
  let leaf = oneofl [ Dword; Ddigits; Ddel; Dconst; Dins ] in
  let rec go n =
    if n = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          (2, map2 (fun a b -> Dseq (n, a, b)) (go (n - 1)) (go (n - 1)));
          (1, map2 (fun a b -> Dalt (a, b)) (go (n - 1)) (go (n - 1)));
          (3, map (fun d -> Drep (n, d)) (go (n - 1)));
          (3, map (fun d -> Drepkey (n, d)) (go (n - 1)));
          (2, map (fun d -> Drepdiff (n, d)) (go (n - 1)));
          (1, map2 (fun a b -> Dperm (n, a, b)) (go (n - 1)) (go (n - 1)));
        ]
  in
  1 -- 3 >>= go

let rec gen_src = function
  | Dword | Ddel -> gen_word
  | Ddigits | Dconst -> gen_digits
  | Dins -> Gen.return ""
  | Dseq (n, a, b) ->
      Gen.map2 (fun x y -> x ^ sep_str n ^ y) (gen_src a) (gen_src b)
  | Dalt (a, b) ->
      Gen.oneof
        [
          Gen.map (fun x -> "A" ^ x) (gen_src a);
          Gen.map (fun x -> "B" ^ x) (gen_src b);
        ]
  | Drep (n, d) | Drepkey (n, d) | Drepdiff (n, d) ->
      Gen.map
        (fun xs -> String.concat "" (List.map (fun x -> x ^ sep_str n) xs))
        (Gen.list_size Gen.(0 -- 5) (gen_src d))
  | Dperm (n, a, b) ->
      Gen.map2
        (fun x y -> x ^ sep_str n ^ y ^ sep_str n)
        (gen_src a) (gen_src b)

let rec gen_view = function
  | Dword -> gen_word
  | Ddigits -> gen_digits
  | Ddel -> Gen.return ""
  | Dconst -> Gen.return "#"
  | Dins -> Gen.return "!"
  | Dseq (n, a, b) ->
      Gen.map2 (fun x y -> x ^ sep_str n ^ y) (gen_view a) (gen_view b)
  | Dalt (a, b) ->
      Gen.oneof
        [
          Gen.map (fun x -> "A" ^ x) (gen_view a);
          Gen.map (fun x -> "B" ^ x) (gen_view b);
        ]
  | Drep (n, d) | Drepkey (n, d) | Drepdiff (n, d) ->
      Gen.map
        (fun xs -> String.concat "" (List.map (fun x -> x ^ sep_str n) xs))
        (Gen.list_size Gen.(0 -- 5) (gen_view d))
  | Dperm (n, a, b) ->
      Gen.map2
        (fun x y -> y ^ sep_str n ^ x ^ sep_str n)
        (gen_view a) (gen_view b)

(* One delta scenario: a source, plus a sequence of target views to
   step the document through one edit at a time (so the cache is
   exercised warm, across fast, slow and fallback patches). *)
let scenario_gen =
  Gen.(
    desc_gen >>= fun d ->
    gen_src d >>= fun s ->
    list_size (1 -- 3) (gen_view d) >>= fun targets ->
    return (d, s, targets))

let print_scenario (d, s, targets) =
  Format.asprintf "%a src %S through %a" pp_desc d s
    (Format.pp_print_list (fun fmt v -> Format.fprintf fmt "%S" v))
    targets

(* ------------------------------------------------------------------ *)
(* Delta vs full propagation *)

let put_delta_equiv (d, s0, targets) =
  let l = build_s d and lr = build_r d in
  let cache = D.make_cache () in
  let rec go s v = function
    | [] -> true
    | target :: rest ->
        let edit = Sdiff.diff v target in
        let ns, se = D.put_delta l ~cache ~source:s ~view:v edit in
        let full = l.S.put target s in
        let full_ref = lr.R.put target s in
        String.equal ns full
        && String.equal ns full_ref
        && String.equal (Sdiff.apply s se) ns
        && go ns target rest
  in
  let v0 = l.S.get s0 in
  go s0 v0 targets

let get_delta_equiv (d, s0, targets) =
  (* Step the SOURCE through members of the source language: targets
     are re-generated as sources by reusing the view generator only
     when the languages coincide, so instead drive with gen_src-shaped
     targets threaded through the scenario's source list. *)
  ignore targets;
  let l = build_s d and lr = build_r d in
  let cache = D.make_cache () in
  let v0 = l.S.get s0 in
  (* Derive successor sources by full put of generated views — any
     member of the source language reachable by put is a valid source. *)
  let s1 = l.S.put v0 s0 in
  let edit = Sdiff.diff s0 s1 in
  let nv, ve = D.get_delta l ~cache ~source:s0 ~view:v0 edit in
  String.equal nv (l.S.get s1)
  && String.equal nv (lr.R.get s1)
  && String.equal (Sdiff.apply v0 ve) nv

(* get_delta stepped through genuinely different sources. *)
let get_scenario_gen =
  Gen.(
    desc_gen >>= fun d ->
    gen_src d >>= fun s ->
    list_size (1 -- 3) (gen_src d) >>= fun targets ->
    return (d, s, targets))

let get_delta_steps (d, s0, targets) =
  let l = build_s d and lr = build_r d in
  let cache = D.make_cache () in
  let rec go s v = function
    | [] -> true
    | target :: rest ->
        let edit = Sdiff.diff s target in
        let nv, ve = D.get_delta l ~cache ~source:s ~view:v edit in
        String.equal nv (l.S.get target)
        && String.equal nv (lr.R.get target)
        && String.equal (Sdiff.apply v ve) nv
        && go target nv rest
  in
  go s0 (l.S.get s0) targets

let delta_prop_tests =
  [
    prop "put_delta = full put (both engines), stepped through edits"
      scenario_gen print_scenario put_delta_equiv;
    prop "get_delta = full get (both engines), stepped through edits"
      get_scenario_gen print_scenario get_delta_steps;
    prop "get_delta after a put-roundtrip source edit" scenario_gen
      print_scenario get_delta_equiv;
  ]

(* ------------------------------------------------------------------ *)
(* Deterministic delta cases: tier steering and the composers lens.
   Chunks are newline-terminated so the line differ's hull localises to
   a chunk window. *)

let keyed_lens () =
  (* source chunk "<word>, <digits>\n", view chunk "<word>\n" *)
  let chunk =
    S.concat_list
      [
        S.copy word;
        S.del (Regex.seq (Regex.str ", ") digits) ~default:", 0";
        S.copy (Regex.chr '\n');
      ]
  in
  S.star_key ~key:Fun.id chunk

let delta_stats_diff f =
  let before = D.stats () in
  let r = f () in
  let after = D.stats () in
  ( r,
    ( after.D.fast_puts - before.D.fast_puts,
      after.D.slow_puts - before.D.slow_puts,
      after.D.fallback_puts - before.D.fallback_puts ) )

let deterministic_tests =
  [
    Alcotest.test_case "composers single-line edit takes the fast path"
      `Quick (fun () ->
        let l = Bx_catalogue.Composers_string.build_lens () in
        let src = Bx_catalogue.Composers_string.synthetic_source 50 in
        let view = l.S.get src in
        let cache = D.make_cache () in
        let target =
          (* replace one line's nationality *)
          let lines = String.split_on_char '\n' view in
          let lines =
            List.mapi
              (fun i line ->
                if i = 25 then
                  match String.rindex_opt line ',' with
                  | Some c -> String.sub line 0 c ^ ", Edited"
                  | None -> line
                else line)
              lines
          in
          String.concat "\n" lines
        in
        let edit = Sdiff.diff view target in
        let (ns, se), (fast, slow, fb) =
          delta_stats_diff (fun () ->
              D.put_delta l ~cache ~source:src ~view edit)
        in
        Alcotest.(check string) "equals full put" (l.S.put target src) ns;
        Alcotest.(check string) "edit replays" ns (Sdiff.apply src se);
        Alcotest.(check (triple int int int)) "fast path" (1, 0, 0)
          (fast, slow, fb));
    Alcotest.test_case "duplicate keys route to the slow tier" `Quick
      (fun () ->
        let l = keyed_lens () in
        let src = "alpha, 1\nbeta, 2\nalpha, 3\n" in
        let view = l.S.get src in
        Alcotest.(check string) "view shape" "alpha\nbeta\nalpha\n" view;
        let cache = D.make_cache () in
        (* reorder the duplicate-keyed chunks relative to beta: greedy
           first-match must pop the alphas in FIFO order *)
        let tview = "beta\nalpha\nalpha\n" in
        let edit = Sdiff.diff view tview in
        let (ns, se), (fast, slow, fb) =
          delta_stats_diff (fun () ->
              D.put_delta l ~cache ~source:src ~view edit)
        in
        Alcotest.(check string) "equals full put" (l.S.put tview src) ns;
        Alcotest.(check string) "edit replays" ns (Sdiff.apply src se);
        Alcotest.(check (triple int int int)) "slow path" (0, 1, 0)
          (fast, slow, fb));
    Alcotest.test_case "key claiming an outside chunk leaves the fast path"
      `Quick (fun () ->
        let l = keyed_lens () in
        let src = "alpha, 1\nbeta, 2\ngamma, 3\n" in
        let view = l.S.get src in
        let cache = D.make_cache () in
        (* replace the first chunk with the LAST chunk's key: full put
           moves gamma's hidden data forward, which splicing the suffix
           verbatim would get wrong — the guard must detect it. *)
        let tview = "gamma\nbeta\ngamma\n" in
        let edit = Sdiff.diff view tview in
        let (ns, se), (fast, _slow, _fb) =
          delta_stats_diff (fun () ->
              D.put_delta l ~cache ~source:src ~view edit)
        in
        Alcotest.(check string) "equals full put" (l.S.put tview src) ns;
        Alcotest.(check string) "edit replays" ns (Sdiff.apply src se);
        Alcotest.(check int) "not fast" 0 fast);
    Alcotest.test_case "opaque root always falls back" `Quick (fun () ->
        let l =
          S.concat (S.copy word) (S.concat (S.copy (Regex.chr ':')) (S.copy word))
        in
        let src = "ab:cd" in
        let view = l.S.get src in
        let cache = D.make_cache () in
        let edit = Sdiff.diff view "xy:cd" in
        let (ns, _se), (fast, slow, fb) =
          delta_stats_diff (fun () ->
              D.put_delta l ~cache ~source:src ~view edit)
        in
        Alcotest.(check string) "equals full put" (l.S.put "xy:cd" src) ns;
        Alcotest.(check (triple int int int)) "fallback" (0, 0, 1)
          (fast, slow, fb));
    Alcotest.test_case "boundary edits: prepend, append, delete-all" `Quick
      (fun () ->
        let l = keyed_lens () in
        let src = "alpha, 1\nbeta, 2\n" in
        let view = l.S.get src in
        let cache = D.make_cache () in
        let step (s, v) tview =
          let edit = Sdiff.diff v tview in
          let ns, se = D.put_delta l ~cache ~source:s ~view:v edit in
          Alcotest.(check string)
            (Printf.sprintf "put %S" tview)
            (l.S.put tview s) ns;
          Alcotest.(check string) "edit replays" ns (Sdiff.apply s se);
          (ns, tview)
        in
        ignore
          (List.fold_left step (src, view)
             [
               "zeta\nalpha\nbeta\n";
               "zeta\nalpha\nbeta\nomega\n";
               "";
               "fresh\n";
               "fresh\nfresh\n";
             ]));
    Alcotest.test_case "stale cache rebuilds and still agrees" `Quick
      (fun () ->
        let l = keyed_lens () in
        let cache = D.make_cache () in
        let drive src =
          let view = l.S.get src in
          let tview = "other\n" ^ view in
          let edit = Sdiff.diff view tview in
          let ns, _ = D.put_delta l ~cache ~source:src ~view edit in
          Alcotest.(check string) "equals full put" (l.S.put tview src) ns
        in
        drive "alpha, 1\n";
        drive "beta, 2\ngamma, 3\n";
        D.invalidate cache;
        drive "delta, 4\n");
    Alcotest.test_case "get_delta composers source edit is windowed" `Quick
      (fun () ->
        let l = Bx_catalogue.Composers_string.build_lens () in
        let src = Bx_catalogue.Composers_string.synthetic_source 50 in
        let view = l.S.get src in
        let cache = D.make_cache () in
        let target =
          let lines = String.split_on_char '\n' src in
          String.concat "\n"
            (List.mapi (fun i l -> if i = 10 then "Xx, 1111-2222, Ed" else l)
               lines)
        in
        let edit = Sdiff.diff src target in
        let before = (D.stats ()).D.fast_gets in
        let nv, ve = D.get_delta l ~cache ~source:src ~view edit in
        Alcotest.(check string) "equals full get" (l.S.get target) nv;
        Alcotest.(check string) "edit replays" nv (Sdiff.apply view ve);
        Alcotest.(check int) "fast get" (before + 1) (D.stats ()).D.fast_gets);
  ]

(* ------------------------------------------------------------------ *)
(* The /patch endpoints end to end: document store, generations, wire
   frames, journal replay, snapshots and replication — everything
   between an HTTP body and Slens_delta. *)

module Service = Bx_server.Service
module Journal = Bx_server.Journal
module Replication = Bx_server.Replication

let rs = "\x1e"
let composers = Bx_catalogue.Composers_string.lens
let synthetic_source = Bx_catalogue.Composers_string.synthetic_source
let service_lenses = [ ("composers", composers) ]

let service ?(config = Service.default_config) () =
  match
    Service.create ~config ~lenses:service_lenses
      ~seed:Bx_catalogue.Catalogue.seed ()
  with
  | Ok t -> t
  | Error e -> Alcotest.failf "service create: %s" e

let journal_config dir =
  { Service.default_config with journal_dir = Some dir; compact_every = 0 }

let fresh_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let post t path body = Service.handle t ~meth:"POST" ~path ~body
let get t path = Service.handle t ~meth:"GET" ~path ~body:""

let get_q t path query =
  Service.handle_query t ~query ~meth:"GET" ~path ~body:""

let status (r : Bx_repo.Webui.response) = r.Bx_repo.Webui.status
let rbody (r : Bx_repo.Webui.response) = r.Bx_repo.Webui.body

let split_rs s =
  match String.index_opt s '\x1e' with
  | None -> Alcotest.failf "no RS separator in %S" s
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(* Replace the last comma-field of line [i] (the nationality, in both
   composer formats) with [word]. *)
let edit_nat doc i word =
  let lines = String.split_on_char '\n' doc in
  String.concat "\n"
    (List.mapi
       (fun j l ->
         if j <> i || l = "" then l
         else
           match String.rindex_opt l ',' with
           | None -> l
           | Some c -> String.sub l 0 c ^ ", " ^ word)
       lines)

let patch_frame ~docid ~gen edit =
  docid ^ rs ^ string_of_int gen ^ rs ^ Sdiff.encode edit

let create_doc t ?(docid = "d1") ?(lines = 5) () =
  let src = synthetic_source lines in
  let r = post t ("/slens/composers/doc/" ^ docid) src in
  Alcotest.(check int) "create status" 200 (status r);
  Alcotest.(check string) "create gen" "1\n" (rbody r);
  src

let endpoint_tests =
  [
    Alcotest.test_case "doc create, read back both sides, overwrite" `Quick
      (fun () ->
        let t = service () in
        let src = create_doc t () in
        let g, d = split_rs (rbody (get t "/slens/composers/doc/d1")) in
        Alcotest.(check string) "gen" "1" g;
        Alcotest.(check string) "source side" src d;
        let g, d =
          split_rs (rbody (get_q t "/slens/composers/doc/d1" "as=view"))
        in
        Alcotest.(check string) "gen" "1" g;
        Alcotest.(check string) "view side" (composers.S.get src) d;
        let r = post t "/slens/composers/doc/d1" (synthetic_source 3) in
        Alcotest.(check int) "overwrite status" 200 (status r);
        Alcotest.(check string) "overwrite bumps gen" "2\n" (rbody r));
    Alcotest.test_case "patch propagates a view edit through put_delta" `Quick
      (fun () ->
        let t = service () in
        let src = create_doc t () in
        let view = composers.S.get src in
        let view' = edit_nat view 2 "qq" in
        let fast_before = (D.stats ()).D.fast_puts in
        let r =
          post t "/slens/composers/patch"
            (patch_frame ~docid:"d1" ~gen:1 (Sdiff.diff view view'))
        in
        Alcotest.(check int) "patch status" 200 (status r);
        let g, frame = split_rs (rbody r) in
        Alcotest.(check string) "new gen" "2" g;
        let expected_src = composers.S.put view' src in
        (* The response frame is the source-side edit: applying it to
           the old source must land on the server's new source. *)
        (match Sdiff.decode frame with
        | Error m -> Alcotest.failf "response edit frame: %s" m
        | Ok source_edit ->
            Alcotest.(check string)
              "response edit replays" expected_src
              (Sdiff.apply src source_edit));
        let _, d = split_rs (rbody (get t "/slens/composers/doc/d1")) in
        Alcotest.(check string) "stored source" expected_src d;
        let _, v = split_rs (rbody (get_q t "/slens/composers/doc/d1" "as=view")) in
        Alcotest.(check string) "stored view" view' v;
        Alcotest.(check bool)
          "took the fast tier" true
          ((D.stats ()).D.fast_puts > fast_before));
    Alcotest.test_case "patch_source propagates a source edit via get_delta"
      `Quick (fun () ->
        let t = service () in
        let src = create_doc t () in
        let src' = edit_nat src 1 "xy" in
        let r =
          post t "/slens/composers/patch_source"
            (patch_frame ~docid:"d1" ~gen:1 (Sdiff.diff src src'))
        in
        Alcotest.(check int) "patch_source status" 200 (status r);
        let g, frame = split_rs (rbody r) in
        Alcotest.(check string) "new gen" "2" g;
        (match Sdiff.decode frame with
        | Error m -> Alcotest.failf "response edit frame: %s" m
        | Ok view_edit ->
            Alcotest.(check string)
              "view edit replays" (composers.S.get src')
              (Sdiff.apply (composers.S.get src) view_edit));
        let _, d = split_rs (rbody (get t "/slens/composers/doc/d1")) in
        Alcotest.(check string) "stored source" src' d);
    Alcotest.test_case "stale generation is a 409 and changes nothing" `Quick
      (fun () ->
        let t = service () in
        let src = create_doc t () in
        let view = composers.S.get src in
        let view' = edit_nat view 0 "zz" in
        let frame = patch_frame ~docid:"d1" ~gen:7 (Sdiff.diff view view') in
        Alcotest.(check int)
          "status" 409
          (status (post t "/slens/composers/patch" frame));
        let g, d = split_rs (rbody (get t "/slens/composers/doc/d1")) in
        Alcotest.(check string) "gen unchanged" "1" g;
        Alcotest.(check string) "source unchanged" src d);
    Alcotest.test_case "unknown document and lens are 404s" `Quick (fun () ->
        let t = service () in
        let _ = create_doc t () in
        Alcotest.(check int)
          "patch unknown doc" 404
          (status
             (post t "/slens/composers/patch"
                (patch_frame ~docid:"nope" ~gen:1 [])));
        Alcotest.(check int)
          "get unknown doc" 404
          (status (get t "/slens/composers/doc/nope"));
        Alcotest.(check int)
          "create under unknown lens" 404
          (status (post t "/slens/nolens/doc/d1" "x\n")));
    Alcotest.test_case "malformed frames are 400s, bad edits 422s" `Quick
      (fun () ->
        let t = service () in
        let _ = create_doc t () in
        Alcotest.(check int)
          "no RS" 400
          (status (post t "/slens/composers/patch" "garbage"));
        Alcotest.(check int)
          "unparseable gen" 400
          (status
             (post t "/slens/composers/patch"
                ("d1" ^ rs ^ "one" ^ rs ^ "bxedit1\n")));
        Alcotest.(check int)
          "undecodable edit" 422
          (status
             (post t "/slens/composers/patch"
                ("d1" ^ rs ^ "1" ^ rs ^ "not an edit frame")));
        Alcotest.(check int)
          "edit past end of document" 422
          (status
             (post t "/slens/composers/patch"
                (patch_frame ~docid:"d1" ~gen:1
                   [ { Sdiff.at = 1_000_000; drop = 2; insert = "x\n" } ])));
        (* All refused: the document is still at gen 1. *)
        let g, _ = split_rs (rbody (get t "/slens/composers/doc/d1")) in
        Alcotest.(check string) "gen unchanged" "1" g);
    Alcotest.test_case "replicas refuse document writes with 503" `Quick
      (fun () ->
        let config = { Service.default_config with replica = true } in
        let t = service ~config () in
        Alcotest.(check int)
          "create" 503
          (status (post t "/slens/composers/doc/d1" "a, 1-2, b\n"));
        Alcotest.(check int)
          "patch" 503
          (status
             (post t "/slens/composers/patch"
                (patch_frame ~docid:"d1" ~gen:1 []))));
    Alcotest.test_case "journal replay restores documents and generations"
      `Quick (fun () ->
        let dir = fresh_dir "bxdelta_journal" in
        let config = journal_config dir in
        let t = service ~config () in
        let src = create_doc t () in
        let view = composers.S.get src in
        let view' = edit_nat view 1 "aa" in
        let r =
          post t "/slens/composers/patch"
            (patch_frame ~docid:"d1" ~gen:1 (Sdiff.diff view view'))
        in
        Alcotest.(check int) "patch" 200 (status r);
        let view'' = edit_nat view' 3 "bb" in
        let r =
          post t "/slens/composers/patch"
            (patch_frame ~docid:"d1" ~gen:2 (Sdiff.diff view' view''))
        in
        Alcotest.(check int) "second patch" 200 (status r);
        let expected = rbody (get t "/slens/composers/doc/d1") in
        Service.close t;
        let t2 = service ~config () in
        Alcotest.(check string)
          "replayed document" expected
          (rbody (get t2 "/slens/composers/doc/d1"));
        let g, _ = split_rs expected in
        Alcotest.(check string) "replayed gen" "3" g;
        Service.close t2);
    Alcotest.test_case "compaction snapshots documents (DOCS.bxdocs)" `Quick
      (fun () ->
        let dir = fresh_dir "bxdelta_compact" in
        (* Compact after every record: by the time we close, the log is
           empty and the document can only come back via the snapshot
           file. *)
        let config =
          { Service.default_config with
            journal_dir = Some dir;
            compact_every = 1;
          }
        in
        let t = service ~config () in
        let src = create_doc t () in
        let view = composers.S.get src in
        let view' = edit_nat view 2 "cc" in
        let r =
          post t "/slens/composers/patch"
            (patch_frame ~docid:"d1" ~gen:1 (Sdiff.diff view view'))
        in
        Alcotest.(check int) "patch" 200 (status r);
        let expected = rbody (get t "/slens/composers/doc/d1") in
        Service.close t;
        let found = ref false in
        let rec scan d =
          Array.iter
            (fun f ->
              let p = Filename.concat d f in
              if Sys.is_directory p then scan p
              else if f = "DOCS.bxdocs" then found := true)
            (Sys.readdir d)
        in
        scan dir;
        Alcotest.(check bool) "snapshot contains DOCS.bxdocs" true !found;
        let t2 = service ~config () in
        Alcotest.(check string)
          "document restored from snapshot" expected
          (rbody (get t2 "/slens/composers/doc/d1"));
        Service.close t2);
    Alcotest.test_case "followers apply shipped edit records" `Quick (fun () ->
        let dir = fresh_dir "bxdelta_repl" in
        let config =
          { (journal_config dir) with Service.replica = true }
        in
        let t = service ~config () in
        let src = synthetic_source 5 in
        let view = composers.S.get src in
        let view' = edit_nat view 2 "dd" in
        let records =
          [
            { Journal.seq = 1; path = "/slens/composers/doc/d1"; body = src };
            {
              Journal.seq = 2;
              path = "/slens/composers/patch";
              body = patch_frame ~docid:"d1" ~gen:1 (Sdiff.diff view view');
            };
          ]
        in
        (match (Service.replication_sink t).Replication.apply records with
        | Ok () -> ()
        | Error (`Fail e) -> Alcotest.failf "sink apply: %s" e
        | Error (`Gap (expected, got)) ->
            Alcotest.failf "sink apply: gap (expected %d, got %d)" expected got);
        (* Reads are allowed on a replica: the edit-sized record moved
           the document exactly as the full put would have. *)
        let g, d = split_rs (rbody (get t "/slens/composers/doc/d1")) in
        Alcotest.(check string) "gen after apply" "2" g;
        Alcotest.(check string)
          "source after apply" (composers.S.put view' src) d;
        Service.close t);
  ]

let () =
  Alcotest.run "bx-delta"
    [
      ("sdiff", sdiff_unit_tests);
      ("sdiff properties", sdiff_prop_tests);
      ("delta vs full propagation", delta_prop_tests);
      ("delta tiers", deterministic_tests);
      ("patch endpoints", endpoint_tests);
    ]
