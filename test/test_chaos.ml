(* The network chaos layer and the degradation machinery it exercises:
   the toxic-spec grammar (QCheck round-trip), proxy transparency (a
   toxic-free proxy must be invisible, byte for byte, to both raw
   streams and HTTP keep-alive traffic), end-to-end deadline
   propagation (header parse, pre-lock shedding, stale fallback, ops
   exemption, long-poll clamping), slowloris hardening, brownout (AIMD
   admission + the degraded serve-stale lane), sticky ENOSPC read-only
   degradation — and the jepsen-lite drill: a primary/replica pair
   under a seeded toxic schedule of partitions, latency storms and
   mid-frame resets, asserting that no acknowledged write is lost and
   the pair reconverges once the network heals. *)

open Bx_server
module Fault = Bx_fault.Fault
module Netchaos = Bx_fault.Netchaos
module CS = Bx_catalogue.Composers_string

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let fresh_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let seed = Bx_catalogue.Catalogue.seed

let service ?(config = Service.default_config) ?lenses () =
  match Service.create ~config ?lenses ~seed () with
  | Ok t -> t
  | Error e -> Alcotest.failf "service create: %s" e

let journal_config dir =
  { Service.default_config with journal_dir = Some dir; compact_every = 0 }

let replica_config dir =
  { (journal_config dir) with Service.replica = true; stream_wait = 0.2 }

let get t path = Service.handle t ~meth:"GET" ~path ~body:""
let post t path body = Service.handle t ~meth:"POST" ~path ~body
let metrics_page t = (get t "/metrics").Bx_repo.Webui.body

let header name (r : Bx_repo.Webui.response) =
  let name = String.lowercase_ascii name in
  List.find_map
    (fun (k, v) -> if String.lowercase_ascii k = name then Some v else None)
    r.Bx_repo.Webui.headers

let isolated f () =
  Fault.clear ();
  Netchaos.clear_rules ();
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Netchaos.clear_rules ())
    f

let wait_for ?(timeout = 10.0) f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.fail "wait_for: timeout"
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let serve_thread ?(workers = 2) t =
  let th =
    Thread.create
      (fun () ->
        match Service.serve t ~port:0 ~workers ~quiet:true () with
        | Ok () -> ()
        | Error e -> Printf.eprintf "serve: %s\n%!" e)
      ()
  in
  wait_for (fun () -> Service.port t <> None);
  (th, match Service.port t with Some p -> p | None -> assert false)

(* The celsius entry page doubles as a write target whose revision is
   readable back out of the rendered wiki text (same trick as the
   replication suite). *)
let page_path = "/examples:celsius"
let rev_re = Str.regexp "temperature[0-9]*"
let page_body t = (get t (page_path ^ ".wiki")).Bx_repo.Webui.body

let page_rev t =
  let body = page_body t in
  ignore (Str.search_forward rev_re body 0);
  let m = Str.matched_string body in
  if m = "temperature" then 0
  else int_of_string (String.sub m 11 (String.length m - 11))

let edited_body base i =
  Str.global_replace rev_re ("temperature" ^ string_of_int i) base

(* ------------------------------------------------------------------ *)
(* Raw socket plumbing *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     Unix.close fd;
     raise e);
  fd

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let drain fd =
  let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        Buffer.contents buf
  in
  go ()

(* One full request/response conversation: ship [payload], half-close,
   read to EOF.  Works against the echo server and against bxwiki's
   HTTP loop alike, which is exactly what makes direct-vs-proxied
   byte comparison meaningful. *)
let exchange port payload =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      write_all fd payload;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      drain fd)

let status_of raw =
  match String.index_opt raw ' ' with
  | Some i -> ( try int_of_string (String.sub raw (i + 1) 3) with _ -> -1)
  | None -> -1

let with_echo_server f =
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen srv 16;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let stop = Atomic.make false in
  let echo fd =
    let chunk = Bytes.create 4096 in
    (try
       let rec go () =
         let n = Unix.read fd chunk 0 4096 in
         if n > 0 then begin
           let rec wr off =
             if off < n then wr (off + Unix.write fd chunk off (n - off))
           in
           wr 0;
           go ()
         end
       in
       go ()
     with _ -> ());
    try Unix.close fd with _ -> ()
  in
  let acceptor =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.select [ srv ] [] [] 0.1 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept srv with
              | exception _ -> ()
              | fd, _ -> ignore (Thread.create echo fd))
        done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join acceptor;
      try Unix.close srv with _ -> ())
    (fun () -> f port)

(* ------------------------------------------------------------------ *)
(* 1. The toxic-spec grammar *)

let gen_toxic =
  let open QCheck2.Gen in
  (* Integral values only: the renderer prints %g, which round-trips
     exactly for integers but not for arbitrary floats. *)
  let ms = map float_of_int (int_range 0 5000) in
  oneof
    [
      map2 (fun m j -> Netchaos.Latency (m, j)) ms
        (map float_of_int (int_range 0 500));
      map (fun k -> Netchaos.Bandwidth k) (int_range 1 100_000);
      map (fun n -> Netchaos.Reset n) (int_range 0 1_000_000);
      return Netchaos.Blackhole;
      map (fun m -> Netchaos.Slow_close m) ms;
      map (fun n -> Netchaos.Truncate n) (int_range 0 1_000_000);
    ]

let gen_rules =
  QCheck2.Gen.(
    list_size (int_range 0 5)
      (pair (oneofl [ Netchaos.Up; Netchaos.Down; Netchaos.Both ]) gen_toxic))

let spec_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"toxic rules round-trip through the spec grammar"
    gen_rules (fun rules ->
      Netchaos.parse_rules (Netchaos.render_rules rules) = Ok rules)

let spec_tests =
  [
    tc "the spec grammar parses directions, chains and arguments" (fun () ->
        check bool "chain with per-toxic directions" true
          (Netchaos.parse_rules "up:latency(50,20)+down:reset(1024)+blackhole"
          = Ok
              [
                (Netchaos.Up, Netchaos.Latency (50., 20.));
                (Netchaos.Down, Netchaos.Reset 1024);
                (Netchaos.Both, Netchaos.Blackhole);
              ]);
        check bool "latency without jitter" true
          (Netchaos.parse_rules "latency(5)"
          = Ok [ (Netchaos.Both, Netchaos.Latency (5., 0.)) ]);
        check bool "empty rules clear" true (Netchaos.parse_rules "" = Ok []);
        check bool "multi-proxy spec" true
          (Netchaos.parse_spec "a=latency(5);b=up:truncate(9)"
          = Ok
              [
                ("a", [ (Netchaos.Both, Netchaos.Latency (5., 0.)) ]);
                ("b", [ (Netchaos.Up, Netchaos.Truncate 9) ]);
              ]));
    tc "the spec grammar rejects nonsense" (fun () ->
        let bad s = check bool s true (Result.is_error (Netchaos.parse_rules s)) in
        bad "jellyfish(3)";
        bad "latency(-5)";
        bad "bandwidth(0)";
        bad "reset(many)";
        check bool "nameless proxy" true
          (Result.is_error (Netchaos.parse_spec "=latency(5)")));
    tc "configure installs rules a later proxy adopts"
      (isolated (fun () ->
           (match Netchaos.configure "adopted=latency(1)" with
           | Ok () -> ()
           | Error e -> Alcotest.failf "configure: %s" e);
           check bool "described" true
             (contains ~needle:"adopted=latency(1)" (Netchaos.describe ()));
           with_echo_server (fun eport ->
               let p =
                 Netchaos.create ~name:"adopted" ~upstream_port:eport ()
               in
               Fun.protect
                 ~finally:(fun () -> Netchaos.close p)
                 (fun () ->
                   check bool "proxy picked the rules up" true
                     (Netchaos.toxics p
                     = [ (Netchaos.Both, Netchaos.Latency (1., 0.)) ])))));
  ]

(* ------------------------------------------------------------------ *)
(* 2. Proxy transparency *)

(* One echo server + toxic-free proxy pair shared by every QCheck
   sample; the process tears the threads down at exit. *)
let echo_fixture =
  lazy
    (let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     Unix.setsockopt srv Unix.SO_REUSEADDR true;
     Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
     Unix.listen srv 16;
     let port =
       match Unix.getsockname srv with
       | Unix.ADDR_INET (_, p) -> p
       | _ -> assert false
     in
     ignore
       (Thread.create
          (fun () ->
            while true do
              match Unix.accept srv with
              | exception _ -> Thread.delay 0.01
              | fd, _ ->
                  ignore
                    (Thread.create
                       (fun () ->
                         let chunk = Bytes.create 4096 in
                         (try
                            let rec go () =
                              let n = Unix.read fd chunk 0 4096 in
                              if n > 0 then begin
                                let rec wr off =
                                  if off < n then
                                    wr (off + Unix.write fd chunk off (n - off))
                                in
                                wr 0;
                                go ()
                              end
                            in
                            go ()
                          with _ -> ());
                         try Unix.close fd with _ -> ())
                       ())
            done)
          ());
     let proxy = Netchaos.create ~name:"qcheck-echo" ~upstream_port:port () in
     (port, Netchaos.port proxy))

let echo_transparency =
  QCheck2.Test.make ~count:25
    ~name:"a toxic-free proxy is byte-transparent to random streams"
    QCheck2.Gen.(string_size ~gen:char (int_range 0 4096))
    (fun payload ->
      let eport, pport = Lazy.force echo_fixture in
      let direct = exchange eport payload in
      let proxied = exchange pport payload in
      direct = payload && proxied = payload)

let transparency_tests =
  [
    QCheck_alcotest.to_alcotest echo_transparency;
    tc "a toxic-free proxy is byte-transparent to HTTP keep-alive"
      (isolated (fun () ->
           let t = service ~lenses:[ ("composers", CS.lens) ] () in
           let th, port = serve_thread t in
           let proxy = Netchaos.create ~name:"http" ~upstream_port:port () in
           Fun.protect
             ~finally:(fun () ->
               Netchaos.close proxy;
               Service.shutdown t;
               Thread.join th)
             (fun () ->
               (* Two pipelined GETs on one connection, then a batch
                  put through the string-lens plane.  Responses carry
                  no clocks, so the full byte streams must agree. *)
               let keepalive =
                 "GET /examples:celsius HTTP/1.1\r\nHost: x\r\n\r\n"
                 ^ "GET /examples:celsius.wiki HTTP/1.1\r\n\
                    Host: x\r\nConnection: close\r\n\r\n"
               in
               let rs = "\x1e" and us = "\x1f" in
               let batch =
                 String.concat rs
                   (List.map
                      (fun n -> CS.synthetic_view n ^ us ^ CS.synthetic_source n)
                      [ 1; 2; 3 ])
               in
               let put_batch =
                 Printf.sprintf
                   "POST /slens/composers/put_batch HTTP/1.1\r\nHost: x\r\n\
                    Content-Length: %d\r\nConnection: close\r\n\r\n%s"
                   (String.length batch) batch
               in
               List.iter
                 (fun (label, payload) ->
                   let direct = exchange port payload in
                   let proxied = exchange (Netchaos.port proxy) payload in
                   check bool (label ^ ": got a response") true
                     (status_of direct = 200);
                   check string (label ^ ": byte-identical") direct proxied)
                 [ ("keep-alive", keepalive); ("put_batch", put_batch) ])));
  ]

(* ------------------------------------------------------------------ *)
(* 3. Deadline propagation *)

let deadline_tests =
  [
    tc "X-Bxwiki-Deadline parses to an absolute deadline" (fun () ->
        let parse raw =
          match Httpd.read_request (Httpd.reader_of_string raw) with
          | Ok req -> req.Httpd.deadline
          | Error _ -> Alcotest.fail "request did not parse"
        in
        (match
           parse "GET / HTTP/1.1\r\nX-Bxwiki-Deadline: 500\r\n\r\n"
         with
        | Some d ->
            let budget = d -. Unix.gettimeofday () in
            check bool "≈ 500ms out" true (budget > 0.2 && budget < 0.8)
        | None -> Alcotest.fail "deadline not parsed");
        check bool "malformed budgets are ignored" true
          (parse "GET / HTTP/1.1\r\nX-Bxwiki-Deadline: soon\r\n\r\n" = None);
        match parse "GET / HTTP/1.1\r\nX-Bxwiki-Deadline: 999999999999\r\n\r\n" with
        | Some d ->
            check bool "absurd budgets are capped" true
              (d -. Unix.gettimeofday () <= 3600.5)
        | None -> Alcotest.fail "capped deadline not parsed");
    tc "an exhausted deadline sheds writes with 504 before the lock" (fun () ->
        let t = service () in
        let m = Service.metrics t in
        let before = Metrics.shed_by_reason m "deadline_propagated" in
        let body = edited_body (page_body t) 1 in
        let r =
          Service.handle_query ~deadline:(Unix.gettimeofday () -. 1.) t
            ~query:"" ~meth:"POST" ~path:page_path ~body
        in
        check int "504" 504 r.Bx_repo.Webui.status;
        check bool "says so" true (contains ~needle:"deadline" r.Bx_repo.Webui.body);
        check int "counted" (before + 1)
          (Metrics.shed_by_reason m "deadline_propagated");
        check int "the write never applied" 0 (page_rev t));
    tc "expired GETs fall back to the stale cache under brownout" (fun () ->
        let t = service () in
        check int "warm" 200 (get t page_path).Bx_repo.Webui.status;
        let past = Unix.gettimeofday () -. 1. in
        let r =
          Service.handle_query ~deadline:past t ~query:"" ~meth:"GET"
            ~path:page_path ~body:""
        in
        check int "stale 200" 200 r.Bx_repo.Webui.status;
        check (Alcotest.option Alcotest.string) "labelled with its lag"
          (Some "0")
          (header "X-Bxwiki-Stale" r);
        let served, _ = Metrics.stale_counts (Service.metrics t) in
        check bool "counted" true (served >= 1);
        let cold =
          Service.handle_query ~deadline:past t ~query:"" ~meth:"GET"
            ~path:(page_path ^ ".wiki") ~body:""
        in
        check int "a cold path still sheds" 504 cold.Bx_repo.Webui.status);
    tc "operational routes never shed on a deadline" (fun () ->
        let t = service () in
        let past = Unix.gettimeofday () -. 1. in
        List.iter
          (fun path ->
            let r =
              Service.handle_query ~deadline:past t ~query:"" ~meth:"GET"
                ~path ~body:""
            in
            check bool (path ^ " answered") true
              (r.Bx_repo.Webui.status <> 504))
          [ "/metrics"; "/healthz"; "/readyz" ]);
    tc "the deadline clamps the replication long-poll" (fun () ->
        let dir = fresh_dir "bxchaos-stream" in
        let t =
          service ~config:{ (journal_config dir) with Service.stream_wait = 5.0 } ()
        in
        Fun.protect
          ~finally:(fun () -> Service.close t)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            let r =
              Service.handle_query ~deadline:(t0 +. 0.3) t
                ~query:"from=1&epoch=0&wait=5" ~meth:"GET"
                ~path:"/replication/stream" ~body:""
            in
            let elapsed = Unix.gettimeofday () -. t0 in
            check bool "empty poll returned on the budget, not the hold" true
              (elapsed < 2.0);
            check bool "still a success" true (r.Bx_repo.Webui.status < 500)));
  ]

(* ------------------------------------------------------------------ *)
(* 4. Slowloris *)

let slowloris_tests =
  [
    tc "trickled headers are shed on the wall-clock read budget"
      (isolated (fun () ->
           let t =
             service
               ~config:{ Service.default_config with read_timeout = 0.6 }
               ()
           in
           let th, port = serve_thread t in
           Fun.protect
             ~finally:(fun () ->
               Service.shutdown t;
               Thread.join th)
             (fun () ->
               let fd = connect port in
               Fun.protect
                 ~finally:(fun () -> try Unix.close fd with _ -> ())
                 (fun () ->
                   let req = "GET /examples:celsius HTTP/1.1\r\nHost: x\r\n\r\n" in
                   (* One byte every 80ms defeats any per-recv timeout;
                      only a budget across the whole request catches it. *)
                   (try
                      String.iter
                        (fun c ->
                          if
                            Metrics.shed_by_reason (Service.metrics t)
                              "deadline"
                            = 0
                          then begin
                            write_all fd (String.make 1 c);
                            Thread.delay 0.08
                          end)
                        req
                    with Unix.Unix_error _ -> ());
                   wait_for ~timeout:5.0 (fun () ->
                       Metrics.shed_by_reason (Service.metrics t) "deadline"
                       >= 1)))));
  ]

(* ------------------------------------------------------------------ *)
(* 5. Brownout: AIMD admission + the degraded serve-stale lane *)

let brownout_tests =
  [
    tc "overflow GETs are served stale by the degraded lane"
      (isolated (fun () ->
           let config =
             {
               Service.default_config with
               queue_capacity = 2;
               min_concurrency = 1;
             }
           in
           let t = service ~config () in
           let th, port = serve_thread ~workers:1 t in
           Fun.protect
             ~finally:(fun () ->
               Fault.clear ();
               Service.shutdown t;
               Thread.join th)
             (fun () ->
               check int "warm the cache" 200 (get t page_path).Bx_repo.Webui.status;
               (* Wedge the only worker and fill the whole queue with
                  uncacheable render work. *)
               Fault.set "service.lock.read" (Fault.Delay 3.0);
               let wedge i =
                 let fd = connect port in
                 write_all fd
                   (Printf.sprintf
                      "GET /examples:celsius.wiki?w=%d HTTP/1.1\r\nHost: x\r\n\r\n"
                      i);
                 fd
               in
               let w1 = wedge 1 in
               Thread.delay 0.25;
               let w2 = wedge 2 in
               let w3 = wedge 3 in
               Thread.delay 0.25;
               let raw =
                 let fd = connect port in
                 Fun.protect
                   ~finally:(fun () -> try Unix.close fd with _ -> ())
                   (fun () ->
                     write_all fd
                       "GET /examples:celsius HTTP/1.1\r\nHost: x\r\n\
                        Connection: close\r\n\r\n";
                     drain fd)
               in
               List.iter
                 (fun fd -> try Unix.close fd with _ -> ())
                 [ w1; w2; w3 ];
               check int "stale 200 from the degraded lane" 200 (status_of raw);
               check bool "marked stale" true
                 (contains ~needle:"X-Bxwiki-Stale:" raw);
               check bool "AIMD halved the admission limit" true
                 (Service.concurrency_limit t < config.Service.queue_capacity);
               let served, _ = Metrics.stale_counts (Service.metrics t) in
               check bool "stale counter moved" true (served >= 1);
               check bool "limit gauge exported" true
                 (contains ~needle:"bxwiki_concurrency_limit" (metrics_page t)))));
  ]

(* ------------------------------------------------------------------ *)
(* 6. ENOSPC: sticky read-only degradation *)

let disk_full_tests =
  [
    tc "ENOSPC latches the node read-only until an operator intervenes"
      (isolated (fun () ->
           let dir = fresh_dir "bxchaos-enospc" in
           let t = service ~config:(journal_config dir) () in
           Fun.protect
             ~finally:(fun () -> Service.close t)
             (fun () ->
               let base = page_body t in
               check int "healthy write" 200
                 (post t page_path (edited_body base 1)).Bx_repo.Webui.status;
               Fault.set "journal.append.pre_write" (Fault.Errno Unix.ENOSPC);
               let r = post t page_path (edited_body base 2) in
               check int "the failed append is reported" 500
                 r.Bx_repo.Webui.status;
               check bool "disk-full gauge up" true
                 (contains ~needle:"bxwiki_journal_disk_full 1" (metrics_page t));
               check bool "readiness names the cause" true
                 (List.mem "journal_disk_full" (Service.readiness t));
               let refused = post t page_path (edited_body base 3) in
               check int "writes now refused outright" 503
                 refused.Bx_repo.Webui.status;
               check bool "told read-only" true
                 (contains ~needle:"read-only" refused.Bx_repo.Webui.body);
               Fault.clear ();
               (* The latch is sticky: space "coming back" (the
                  failpoint clearing) must not silently re-enable
                  writes behind the operator's back. *)
               check int "still read-only after the errno clears" 503
                 (post t page_path (edited_body base 4)).Bx_repo.Webui.status;
               check int "reads keep flowing" 200
                 (get t page_path).Bx_repo.Webui.status)));
  ]

(* ------------------------------------------------------------------ *)
(* 7. The jepsen-lite drill *)

let drill () =
  let pdir = fresh_dir "bxchaos-drill-p" and rdir = fresh_dir "bxchaos-drill-r" in
  let lenses = [ ("composers", CS.lens) ] in
  let pconfig =
    { (journal_config pdir) with Service.read_timeout = 1.0; stream_wait = 0.3 }
  in
  let primary =
    match Service.create ~config:pconfig ~lenses ~seed () with
    | Ok t -> t
    | Error e -> Alcotest.failf "primary: %s" e
  in
  let pth, pport = serve_thread ~workers:4 primary in
  let up_proxy = Netchaos.create ~name:"upstream" ~seed:11 ~upstream_port:pport () in
  let cl_proxy = Netchaos.create ~name:"clients" ~seed:12 ~upstream_port:pport () in
  let replica =
    match Service.create ~config:(replica_config rdir) ~lenses ~seed () with
    | Ok t -> t
    | Error e -> Alcotest.failf "replica: %s" e
  in
  let follower =
    Thread.create
      (fun () ->
        Service.follow replica ~host:"" ~port:(Netchaos.port up_proxy)
          ~wait:0.2 ~min_sleep:0.02 ~max_sleep:0.2 ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Service.shutdown replica with _ -> ());
      (try Thread.join follower with _ -> ());
      (try Service.shutdown primary with _ -> ());
      (try Thread.join pth with _ -> ());
      (try Service.close replica with _ -> ());
      (try Netchaos.close up_proxy with _ -> ());
      try Netchaos.close cl_proxy with _ -> ())
    (fun () ->
      let clport = Netchaos.port cl_proxy in
      let post_via_proxy path body =
        match
          Replication.request ~host:"" ~port:clport ~timeout:2.0 ~meth:"POST"
            ~path ~body ()
        with
        | Ok (200, _) -> true
        | Ok _ | Error _ -> false
      in
      let stop_writers = Atomic.make false in
      let acked_page = Atomic.make 0 and acked_doc = Atomic.make 0 in
      (* Each writer advances to edit i+1 only once edit i is acked, so
         at any instant the applied prefix exceeds the acked prefix by
         at most the single in-flight edit — the invariant the final
         revision check leans on. *)
      let writer path body_of acked =
        Thread.create
          (fun () ->
            let i = ref 0 in
            while not (Atomic.get stop_writers) do
              incr i;
              let body = body_of !i in
              let rec attempt () =
                if Atomic.get stop_writers then ()
                else if post_via_proxy path body then Atomic.set acked !i
                else begin
                  Thread.delay 0.08;
                  attempt ()
                end
              in
              attempt ()
            done)
          ()
      in
      let wp =
        writer page_path (fun i -> edited_body (page_body primary) i) acked_page
      in
      let wd =
        writer "/slens/composers/doc/drill"
          (fun i -> CS.synthetic_source (1 + (i mod 4)))
          acked_doc
      in
      (* The seeded schedule: three cycles of latency storm, mid-frame
         resets on both links, then a full partition of the replication
         link — healed each time.  Same seed, same drill. *)
      let rng = Random.State.make [| 0xB10C5 |] in
      for _cycle = 1 to 3 do
        Netchaos.set_toxics up_proxy
          [ (Netchaos.Both, Netchaos.Latency (60., 40.)) ];
        Netchaos.set_toxics cl_proxy
          [ (Netchaos.Both, Netchaos.Latency (20., 15.)) ];
        Thread.delay (0.2 +. Random.State.float rng 0.2);
        Netchaos.set_toxics up_proxy
          [ (Netchaos.Down, Netchaos.Reset (256 + Random.State.int rng 1024)) ];
        Netchaos.set_toxics cl_proxy
          [ (Netchaos.Both, Netchaos.Reset (128 + Random.State.int rng 512)) ];
        Thread.delay (0.15 +. Random.State.float rng 0.15);
        Netchaos.partition up_proxy;
        Thread.delay (0.3 +. Random.State.float rng 0.3);
        Netchaos.heal up_proxy;
        Netchaos.heal cl_proxy;
        Thread.delay (0.15 +. Random.State.float rng 0.1)
      done;
      Netchaos.heal up_proxy;
      Netchaos.heal cl_proxy;
      Atomic.set stop_writers true;
      Thread.join wp;
      Thread.join wd;
      let ap = Atomic.get acked_page and ad = Atomic.get acked_doc in
      check bool "page writes survived the chaos" true (ap >= 3);
      check bool "doc writes survived the chaos" true (ad >= 3);
      let conns, _, _ = Netchaos.stats up_proxy in
      check bool "the follower reconnected through the chaos" true (conns >= 2);
      (* Anti-entropy + the stream catch the replica back up once the
         network heals; content digests are the convergence witness. *)
      wait_for ~timeout:30.0 (fun () ->
          Service.shard_digests primary = Service.shard_digests replica);
      wait_for ~timeout:10.0 (fun () -> page_rev primary = page_rev replica);
      let prev = page_rev primary in
      check bool "no acked page write lost" true (prev >= ap);
      check int "replica converged to the primary's revision" prev
        (page_rev replica);
      let doc t = get t "/slens/composers/doc/drill" in
      check int "primary holds the drill doc" 200 (doc primary).Bx_repo.Webui.status;
      check string "replica holds the identical doc"
        (doc primary).Bx_repo.Webui.body (doc replica).Bx_repo.Webui.body;
      let _, findings = Service.scrub_once primary in
      check int "lens laws hold after the drill" 0 (List.length findings))

let drill_tests = [ tc "jepsen-lite: partitions, storms and resets" (isolated drill) ]

let () =
  Alcotest.run "bx chaos"
    [
      ("spec", spec_tests @ [ QCheck_alcotest.to_alcotest spec_roundtrip ]);
      ("transparency", transparency_tests);
      ("deadline", deadline_tests);
      ("slowloris", slowloris_tests);
      ("brownout", brownout_tests);
      ("disk-full", disk_full_tests);
      ("drill", drill_tests);
    ]
