(* End-to-end integrity: the CRC32 and DIGESTS manifest codecs, the
   order-insensitive per-shard digest algebra (live incremental
   maintenance vs. full recomputation, and across close/reopen), the
   quarantine's flag-once / serve-under-Warning / 410 semantics, a
   clean-store scrub with zero false positives, and the QCheck
   single-bit-flip torture: flip one bit anywhere in a segment log, a
   snapshot page, DOCS.bxdocs or a MANIFEST, then boot and scrub — the
   store must recover a clean prefix or quarantine the damage, never
   serve corrupted bytes, and count each distinct finding exactly
   once. *)

open Bx_server
module Registry = Bx_repo.Registry
module Identifier = Bx_repo.Identifier
module Q = Integrity.Quarantine

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let fresh_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let seed = Bx_catalogue.Catalogue.seed

let service_lenses = [ ("composers", Bx_catalogue.Composers_string.lens) ]

let service ?(config = Service.default_config) () =
  match Service.create ~config ~lenses:service_lenses ~seed () with
  | Ok t -> t
  | Error e -> Alcotest.failf "service create: %s" e

let journal_config ?(shards = 1) dir =
  {
    Service.default_config with
    journal_dir = Some dir;
    shards;
    compact_every = 0;
  }

let get t path = Service.handle t ~meth:"GET" ~path ~body:""
let post t path body = Service.handle t ~meth:"POST" ~path ~body
let ok_exn what = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" what e

(* A page edit that survives the wiki round trip: inject a sentence
   into the Description section of the fetched source. *)
let inject page sentence =
  let marker = "== Description ==\n" in
  match Str.search_forward (Str.regexp_string marker) page 0 with
  | exception Not_found -> page ^ "\n" ^ sentence ^ "\n"
  | i ->
      let at = i + String.length marker in
      String.sub page 0 at ^ sentence ^ "\n"
      ^ String.sub page at (String.length page - at)

let wiki_paths t =
  Service.with_registry t (fun reg ->
      List.map (fun id -> "/" ^ Identifier.wiki_path id) (Registry.ids reg))

(* ------------------------------------------------------------------ *)
(* Codecs. *)

let codec_tests =
  [
    tc "crc32 matches the IEEE check vector" (fun () ->
        check Alcotest.int "123456789" 0xCBF43926 (Integrity.crc32 "123456789");
        check Alcotest.int "empty" 0 (Integrity.crc32 "");
        let s = "xx123456789yy" in
        check Alcotest.int "crc32_sub agrees with the copy" 0xCBF43926
          (Integrity.crc32_sub s 2 9));
    tc "DIGESTS manifest round trips and names every damage mode" (fun () ->
        let files =
          [ ("b.wiki", "bravo"); ("a.wiki", "alpha"); ("DOCS.bxdocs", "d") ]
        in
        let text = Integrity.Digests.render files in
        let manifest = ok_exn "parse" (Integrity.Digests.parse text) in
        check Alcotest.int "covers the three files" 3 (List.length manifest);
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "clean payload verifies" []
          (Integrity.Digests.verify_files ~manifest files);
        let flipped = ("a.wiki", "alphA") :: List.remove_assoc "a.wiki" files in
        (match Integrity.Digests.verify_files ~manifest flipped with
        | [ (file, why) ] ->
            check Alcotest.string "mismatch names the file" "a.wiki" file;
            check Alcotest.bool "mismatch named" true
              (contains ~needle:"mismatch" why)
        | rows -> Alcotest.failf "expected one mismatch, got %d" (List.length rows));
        (match
           Integrity.Digests.verify_files ~manifest
             (List.remove_assoc "a.wiki" files)
         with
        | [ ("a.wiki", why) ] ->
            check Alcotest.bool "missing named" true
              (contains ~needle:"missing" why)
        | rows -> Alcotest.failf "expected one missing, got %d" (List.length rows));
        match
          Integrity.Digests.verify_files ~manifest (("extra.wiki", "?") :: files)
        with
        | [ ("extra.wiki", _) ] -> ()
        | rows -> Alcotest.failf "expected one unlisted, got %d" (List.length rows));
    tc "MANIFEST and the manifest itself are not covered" (fun () ->
        check Alcotest.bool "MANIFEST" false (Integrity.Digests.covered "MANIFEST");
        check Alcotest.bool "DIGESTS" false
          (Integrity.Digests.covered Integrity.Digests.name);
        check Alcotest.bool "pages are" true (Integrity.Digests.covered "a.wiki"));
    tc "wire digests round trip" (fun () ->
        let rows = [ (0, 0x1a235566); (1, 0); (2, 0xffffffff) ] in
        let body = Integrity.render_digests ~epoch:7 rows in
        let epoch, rows' = ok_exn "parse" (Integrity.parse_digests body) in
        check Alcotest.int "epoch" 7 epoch;
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "rows" rows rows';
        (match Integrity.parse_digests "bxdigest 2 0 1\n0 00000000\n" with
        | Error e ->
            check Alcotest.bool "header named" true (contains ~needle:"header" e)
        | Ok _ -> Alcotest.fail "future version accepted");
        match Integrity.parse_digests "not a digest" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "garbage accepted");
  ]

(* ------------------------------------------------------------------ *)
(* Digest algebra: the incrementally-maintained shard digests must
   always equal what a full walk computes, and what a fresh boot from
   the same journal recomputes. *)

let digest_tests =
  [
    tc "live digests equal a full recomputation" (fun () ->
        let t = service ~config:{ Service.default_config with shards = 3 } () in
        let paths = wiki_paths t in
        List.iteri
          (fun i path ->
            if i mod 2 = 0 then begin
              let page = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
              check Alcotest.int "edit" 200
                (post t path (inject page (Printf.sprintf "Digest probe %d." i)))
                  .Bx_repo.Webui.status
            end)
          paths;
        let live = Service.shard_digests t in
        check Alcotest.int "one row per shard" 3 (List.length live);
        Service.with_registry t (fun reg ->
            List.iter
              (fun (k, d) ->
                check Alcotest.int
                  (Printf.sprintf "shard %d" k)
                  (Integrity.shard_digest_of reg k)
                  d)
              live);
        Service.close t);
    tc "digests survive close and reopen, documents included" (fun () ->
        let dir = fresh_dir "bxdigest" in
        let t = service ~config:(journal_config ~shards:2 dir) () in
        let path = List.hd (wiki_paths t) in
        let page = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
        check Alcotest.int "edit" 200
          (post t path (inject page "Reopen digest probe.")).Bx_repo.Webui.status;
        check Alcotest.int "doc create" 200
          (post t "/slens/composers/doc/d1"
             (Bx_catalogue.Composers_string.synthetic_source 3))
            .Bx_repo.Webui.status;
        let live = Service.shard_digests t in
        Service.close t;
        let t' = service ~config:(journal_config ~shards:2 dir) () in
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "recomputed digests match the incrementally-maintained ones" live
          (Service.shard_digests t');
        Service.close t');
  ]

(* ------------------------------------------------------------------ *)
(* Quarantine semantics. *)

let quarantine_tests =
  [
    tc "flag counts once, clear forgets, counts split by kind" (fun () ->
        let q = Q.create () in
        check Alcotest.bool "first flag is fresh" true
          (Q.flag q (Q.Entry "e") ~reason:"r1");
        check Alcotest.bool "second flag is not" false
          (Q.flag q (Q.Entry "e") ~reason:"r2");
        check (Alcotest.option Alcotest.string) "first reason kept" (Some "r1")
          (Q.find q (Q.Entry "e"));
        ignore (Q.flag q (Q.Doc ("composers", "d")) ~reason:"rd");
        ignore (Q.flag q (Q.File "f.wiki") ~reason:"rf");
        let e, d, f = Q.counts q in
        check Alcotest.int "entries" 1 e;
        check Alcotest.int "docs" 1 d;
        check Alcotest.int "files" 1 f;
        Q.clear q (Q.Entry "e");
        check (Alcotest.option Alcotest.string) "cleared" None
          (Q.find q (Q.Entry "e"));
        check Alcotest.int "size" 2 (Q.size q));
    tc "a quarantined entry serves with a Warning header" (fun () ->
        let t = service () in
        let path = List.hd (wiki_paths t) in
        let id =
          Service.with_registry t (fun reg ->
              Identifier.to_string (List.hd (Registry.ids reg)))
        in
        let clean = get t path in
        check Alcotest.int "clean 200" 200 clean.Bx_repo.Webui.status;
        check Alcotest.bool "no warning when healthy" false
          (List.mem_assoc "Warning" clean.Bx_repo.Webui.headers);
        ignore
          (Q.flag (Service.quarantine t) (Q.Entry id) ~reason:"law violation");
        let r = get t path in
        check Alcotest.int "still 200" 200 r.Bx_repo.Webui.status;
        (match List.assoc_opt "Warning" r.Bx_repo.Webui.headers with
        | Some w ->
            check Alcotest.bool "299 quarantined" true
              (contains ~needle:"299" w && contains ~needle:"quarantined" w)
        | None -> Alcotest.fail "no Warning header on quarantined entry");
        Service.close t);
    tc "a quarantined document answers 410" (fun () ->
        let t = service () in
        check Alcotest.int "doc create" 200
          (post t "/slens/composers/doc/d1"
             (Bx_catalogue.Composers_string.synthetic_source 2))
            .Bx_repo.Webui.status;
        ignore
          (Q.flag (Service.quarantine t)
             (Q.Doc ("composers", "d1"))
             ~reason:"view mismatch");
        let r = get t "/slens/composers/doc/d1" in
        check Alcotest.int "410" 410 r.Bx_repo.Webui.status;
        check Alcotest.bool "reason served" true
          (contains ~needle:"quarantined" r.Bx_repo.Webui.body);
        Service.close t);
  ]

(* ------------------------------------------------------------------ *)
(* Scrub: a clean store yields zero findings — the false-positive
   budget is exactly zero. *)

let scrub_tests =
  [
    tc "scrubbing a clean store finds nothing" (fun () ->
        let dir = fresh_dir "bxscrubclean" in
        let t = service ~config:(journal_config ~shards:2 dir) () in
        let path = List.hd (wiki_paths t) in
        let page = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
        check Alcotest.int "edit" 200
          (post t path (inject page "Scrub probe.")).Bx_repo.Webui.status;
        check Alcotest.int "doc create" 200
          (post t "/slens/composers/doc/d1"
             (Bx_catalogue.Composers_string.synthetic_source 2))
            .Bx_repo.Webui.status;
        ignore (ok_exn "checkpoint" (Service.checkpoint t));
        let items, findings = Service.scrub_once t in
        check Alcotest.bool "walked the store" true (items > 0);
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "no findings" [] findings;
        check Alcotest.int "nothing quarantined" 0 (Q.size (Service.quarantine t));
        let passes, scrubbed, corruptions =
          Metrics.scrub_counts (Service.metrics t)
        in
        check Alcotest.int "one pass" 1 passes;
        check Alcotest.int "items counted" items scrubbed;
        check Alcotest.int "zero false positives" 0 corruptions;
        Service.close t);
    tc "an injected entry-law failure is quarantined, then acquitted"
      (fun () ->
        (* A law that rejects one title: the scrubber must flag exactly
           that entry, keep serving it under Warning, and clear the flag
           on the next pass once the law passes again. *)
        let poison = ref "" in
        let law (tpl : Bx_repo.Template.t) =
          if tpl.Bx_repo.Template.title = !poison then Error "poisoned title"
          else Ok ()
        in
        let config = { Service.default_config with entry_law = Some law } in
        let t = service ~config () in
        let id, title =
          Service.with_registry t (fun reg ->
              let id = List.hd (Registry.ids reg) in
              let tpl =
                match Registry.latest reg id with
                | Ok tpl -> tpl
                | Error e ->
                    Alcotest.failf "latest: %s" (Registry.error_message e)
              in
              (Identifier.to_string id, tpl.Bx_repo.Template.title))
        in
        poison := title;
        let _, findings = Service.scrub_once t in
        check Alcotest.bool "the poisoned entry is found" true
          (List.exists (fun (k, _) -> contains ~needle:id k) findings);
        check Alcotest.bool "quarantined" true
          (Option.is_some (Q.find (Service.quarantine t) (Q.Entry id)));
        poison := "";
        let _, findings' = Service.scrub_once t in
        check Alcotest.int "healthy pass acquits" 0 (List.length findings');
        check (Alcotest.option Alcotest.string) "flag cleared" None
          (Q.find (Service.quarantine t) (Q.Entry id));
        Service.close t);
  ]

(* ------------------------------------------------------------------ *)
(* The single-bit-flip torture.  One trial: build a small sharded
   store with a checkpointed snapshot, a post-checkpoint edit and a
   lens document; record every body the server has legitimately held;
   flip one bit in one storage file; boot and scrub.  The store must
   either refuse to boot, or serve only bodies it legitimately held
   (a clean prefix), with the damage detected — and each distinct
   finding counted exactly once. *)

let flip_bit file bit =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n |> Bytes.of_string in
  close_in ic;
  let bit = bit mod (n * 8) in
  let byte = bit / 8 in
  Bytes.set bytes byte
    (Char.chr (Char.code (Bytes.get bytes byte) lxor (1 lsl (bit mod 8))));
  let oc = open_out_bin file in
  output_bytes oc bytes;
  close_out oc;
  byte

(* The ISSUE's torture targets: segment logs, snapshot pages,
   DOCS.bxdocs and MANIFEST — not DIGESTS (flipping the manifest of
   checksums is the snapshot-page case seen from the other side, and
   quarantines the manifest itself). *)
let torture_targets dir shards =
  List.concat_map
    (fun k ->
      let seg = Filename.concat dir (Printf.sprintf "shard-%03d" k) in
      let snap = Filename.concat seg "snapshot" in
      let cold =
        Sys.readdir snap |> Array.to_list
        |> List.filter (fun f ->
               f = "MANIFEST" || f = "DOCS.bxdocs"
               || Filename.check_suffix f ".wiki")
        |> List.map (Filename.concat snap)
      in
      let log = Filename.concat seg "journal.log" in
      if Sys.file_exists log then log :: cold else cold)
    (List.init shards Fun.id)

let torture_trial (file_choice, bit_choice) =
  let dir = fresh_dir "bxflip" in
  let config = journal_config ~shards:2 dir in
  let t = service ~config () in
  (* Every body the store has legitimately held, per page. *)
  let known = Hashtbl.create 32 in
  let snap_bodies t =
    List.iter
      (fun path ->
        let body = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
        let prior = Option.value ~default:[] (Hashtbl.find_opt known path) in
        if not (List.mem body prior) then Hashtbl.replace known path (body :: prior))
      (wiki_paths t)
  in
  snap_bodies t;
  let path = List.hd (wiki_paths t) in
  let page = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
  assert (200 = (post t path (inject page "Torture v1.")).Bx_repo.Webui.status);
  let doc_source = Bx_catalogue.Composers_string.synthetic_source 3 in
  assert (200 = (post t "/slens/composers/doc/d1" doc_source).Bx_repo.Webui.status);
  snap_bodies t;
  (match Service.checkpoint t with
  | Ok _ -> ()
  | Error e -> failwith ("checkpoint: " ^ e));
  let page' = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
  assert (200 = (post t path (inject page' "Torture v2.")).Bx_repo.Webui.status);
  snap_bodies t;
  Service.close t;
  let targets = torture_targets dir 2 in
  assert (targets <> []);
  let file = List.nth targets (file_choice mod List.length targets) in
  ignore (flip_bit file bit_choice);
  match Service.create ~config ~lenses:service_lenses ~seed () with
  | Error _ -> true (* refusing to boot serves nothing corrupted *)
  | Ok t -> (
      Fun.protect
        ~finally:(fun () -> Service.close t)
        (fun () ->
          (* Never serve corrupted bytes: every 200 is a body the store
             legitimately held; anything else vanished (the clean
             prefix) — both fine, silently serving mutated bytes is
             not. *)
          List.iter
            (fun p ->
              let r = get t (p ^ ".wiki") in
              match r.Bx_repo.Webui.status with
              | 200 ->
                  let ok =
                    match Hashtbl.find_opt known p with
                    | Some bodies -> List.mem r.Bx_repo.Webui.body bodies
                    | None -> false
                  in
                  if not ok then
                    QCheck2.Test.fail_reportf
                      "%s: served a body the store never held (flipped %s)" p
                      file
              | 404 -> ()
              | s -> QCheck2.Test.fail_reportf "%s: unexpected status %d" p s)
            (wiki_paths t);
          (let r = get t "/slens/composers/doc/d1" in
           match r.Bx_repo.Webui.status with
           | 200 ->
               if not (contains ~needle:doc_source r.Bx_repo.Webui.body) then
                 QCheck2.Test.fail_reportf
                   "doc d1: served mutated source (flipped %s)" file
           | 404 | 410 -> ()
           | s -> QCheck2.Test.fail_reportf "doc d1: unexpected status %d" s);
          let _ = Service.scrub_once t in
          let _, _, after_one = Metrics.scrub_counts (Service.metrics t) in
          let _ = Service.scrub_once t in
          let _, _, after_two = Metrics.scrub_counts (Service.metrics t) in
          if after_one <> after_two then
            QCheck2.Test.fail_reportf
              "re-scrubbing recounted corruption: %d then %d (flipped %s)"
              after_one after_two file;
          (* Each distinct finding is counted exactly once, whether boot
             or the scrubber flagged it. *)
          if after_two <> Q.size (Service.quarantine t) then
            QCheck2.Test.fail_reportf
              "corruption counter %d disagrees with quarantine %d (flipped %s)"
              after_two
              (Q.size (Service.quarantine t))
              file;
          (* The flip must not go entirely unnoticed: quarantine, a
             journal checksum reject, or a truncated torn tail. *)
          let torn, crc = Metrics.journal_recovery_counts (Service.metrics t) in
          if Q.size (Service.quarantine t) = 0 && torn = 0 && crc = 0 then
            QCheck2.Test.fail_reportf "flip of %s went undetected" file;
          true))

let torture_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:20 ~name:"single bit flip: clean prefix or quarantine"
         ~print:(fun (f, b) -> Printf.sprintf "(file %d, bit %d)" f b)
         QCheck2.Gen.(
           pair (0 -- 1_000) (0 -- 10_000_000))
         torture_trial);
  ]

let () =
  Alcotest.run "integrity"
    [
      ("codec", codec_tests);
      ("digest", digest_tests);
      ("quarantine", quarantine_tests);
      ("scrub", scrub_tests);
      ("torture", torture_tests);
    ]
