(* The sharded registry: extensional N-shard ≡ 1-shard equivalence
   (QCheck over random workflow interleavings), index-vs-scan search
   equivalence against a naive oracle, pagination, per-shard response
   cache invalidation, the segmented Shardlog (stamp, migration,
   per-shard and global checkpoints), and fork-based kill -9 torture at
   the per-shard journal seams — the same acked-prefix invariant as the
   single-segment torture, now across segments sharing one global
   sequence space. *)

open Bx_server
module Fault = Bx_fault.Fault
module Registry = Bx_repo.Registry
module Template = Bx_repo.Template
module Curation = Bx_repo.Curation

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let fresh_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let isolated f () =
  Fault.clear ();
  Fun.protect ~finally:Fault.clear f

let seed = Bx_catalogue.Catalogue.seed

let service ?(config = Service.default_config) () =
  match Service.create ~config ~seed () with
  | Ok t -> t
  | Error e -> Alcotest.failf "service create: %s" e

let journal_config ?(shards = 1) dir =
  {
    Service.default_config with
    journal_dir = Some dir;
    shards;
    compact_every = 0;
  }

let get t path = Service.handle t ~meth:"GET" ~path ~body:""
let post t path body = Service.handle t ~meth:"POST" ~path ~body
let ok_exn what = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------------ *)
(* The extensional view of a registry: everything observable through
   the public API, shard layout excluded.  Two registries that agree
   here are interchangeable behind the service. *)

let observe reg =
  ( Registry.ids reg,
    List.sort compare (Registry.export reg),
    List.map
      (fun id ->
        ( Bx_repo.Identifier.to_string id,
          Registry.versions reg id,
          Registry.endorsements reg id ))
      (Registry.ids reg) )

let member = Curation.account "alice"
let reviewer = Curation.account ~role:Curation.Reviewer "rex"
let curator = Curation.account ~role:Curation.Curator "cora"

let titled i =
  {
    Bx_catalogue.Composers.template with
    Template.title = Printf.sprintf "Shard Prop %02d" i;
    authors =
      [ Bx_repo.Contributor.make ~affiliation:"QCheck"
          (Printf.sprintf "Author %d" (i mod 3)) ];
  }

let ident i =
  match Bx_repo.Identifier.of_title (titled i).Template.title with
  | Ok id -> id
  | Error e -> Alcotest.failf "identifier: %s" e

(* One workflow step, applied identically to both registries.  Results
   (including errors — a rejected op must be rejected in both) are part
   of the equivalence. *)
type op = Submit of int | Revise of int | Endorse of int | Approve of int | Comment of int

let apply_op reg op =
  match op with
  | Submit i -> (
      match Registry.submit reg ~as_:member (titled i) with
      | Ok id -> "submitted " ^ Bx_repo.Identifier.to_string id
      | Error e -> "rejected: " ^ Registry.error_message e)
  | Revise i -> (
      let id = ident i in
      match Registry.latest reg id with
      | Error e -> "no entry: " ^ Registry.error_message e
      | Ok latest -> (
          let edited =
            { latest with Template.discussion = latest.Template.discussion ^ " Revised." }
          in
          match Registry.revise reg ~as_:curator id edited with
          | Ok v -> "revised to " ^ Bx_repo.Version.to_string v
          | Error e -> "rejected: " ^ Registry.error_message e))
  | Endorse i -> (
      match Registry.endorse reg ~as_:reviewer (ident i) with
      | Ok () -> "endorsed"
      | Error e -> "rejected: " ^ Registry.error_message e)
  | Approve i -> (
      match Registry.approve reg ~as_:curator (ident i) with
      | Ok v -> "approved at " ^ Bx_repo.Version.to_string v
      | Error e -> "rejected: " ^ Registry.error_message e)
  | Comment i -> (
      match Registry.comment reg ~as_:member (ident i) ~text:"noted" with
      | Ok () -> "commented"
      | Error e -> "rejected: " ^ Registry.error_message e)

let op_gen =
  QCheck2.Gen.(
    map
      (fun (c, i) ->
        match c with
        | 0 | 1 | 2 -> Submit i
        | 3 -> Revise i
        | 4 -> Endorse i
        | 5 -> Approve i
        | _ -> Comment i)
      (pair (0 -- 6) (0 -- 11)))

let equivalence_test =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60
       ~name:"N-shard registry is extensionally a 1-shard registry"
       QCheck2.Gen.(list_size (1 -- 40) op_gen)
       (fun ops ->
         let r1 = Registry.create () in
         let r7 = Registry.create ~shards:7 () in
         List.for_all
           (fun op -> apply_op r1 op = apply_op r7 op)
           ops
         && observe r1 = observe r7))

(* Search through the incremental indexes against a naive oracle that
   re-derives each criterion from the latest template. *)
let naive_search reg q =
  let norm = String.lowercase_ascii in
  List.filter
    (fun id ->
      let t =
        match Registry.latest reg id with
        | Ok t -> t
        | Error e -> Alcotest.failf "latest: %s" (Registry.error_message e)
      in
      (match q.Registry.q_class with
      | None -> true
      | Some c -> List.mem c t.Template.classes)
      && (match q.Registry.q_property with
         | None -> true
         | Some p -> List.mem p t.Template.properties)
      && (match q.Registry.q_author with
         | None -> true
         | Some a ->
             List.exists
               (fun c -> norm c.Bx_repo.Contributor.person_name = norm a)
               t.Template.authors)
      && (match q.Registry.q_tag with
         | None -> true
         | Some tag ->
             List.exists
               (fun (v : Template.variant) -> norm v.variant_name = norm tag)
               t.Template.variants)
      &&
      match q.Registry.q_state with
      | None -> true
      | Some s -> (
          match Registry.versions reg id with
          | Ok versions
            when List.exists
                   (fun v -> not (Bx_repo.Version.is_provisional v))
                   versions ->
              s = Registry.Published
          | _ -> (
              match Registry.endorsements reg id with
              | Ok (_ :: _) -> s = Registry.Endorsed
              | _ -> s = Registry.Provisional)))
    (Registry.ids reg)

let search_query_gen =
  QCheck2.Gen.(
    map
      (fun (cls, author, tag, state) ->
        Registry.query
          ?cls:(if cls then Some Template.Precise else None)
          ?author:(Option.map (Printf.sprintf "Author %d") author)
          ?tag:(Option.map (Printf.sprintf "v%d-keyed") tag)
          ?state:
            (match state with
            | 0 -> Some Registry.Provisional
            | 1 -> Some Registry.Endorsed
            | 2 -> Some Registry.Published
            | _ -> None)
          ())
      (quad bool (opt (0 -- 2)) (opt (0 -- 1)) (0 -- 5)))

let indexed_search_test =
  (* One registry, grown once, probed with random criteria combinations:
     the posting-list intersection must agree with the naive scan. *)
  let reg = Registry.create ~shards:5 () in
  let () =
    List.iter (fun op -> ignore (apply_op reg op))
      (List.concat_map
         (fun i -> [ Submit i; Endorse i ])
         [ 0; 1; 2; 3; 4; 5; 6; 7 ])
  in
  let () =
    ignore (apply_op reg (Approve 2));
    ignore (apply_op reg (Approve 5))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:120
       ~name:"indexed search agrees with the naive scan" search_query_gen
       (fun q -> Registry.search reg q = naive_search reg q))

(* ------------------------------------------------------------------ *)
(* Registry unit behaviour: shard routing, pagination, export/overlay *)

let registry_tests =
  [
    tc "shard routing is stable and partitions the catalogue" (fun () ->
        let reg = Bx_load.Corpus.seed_registry ~shards:8 ~entries:40 ~seed:3 () in
        check Alcotest.int "shard count" 8 (Registry.shard_count reg);
        let all = Registry.ids reg in
        List.iter
          (fun id ->
            let k = Registry.shard_of_id reg id in
            check Alcotest.bool "in range" true (k >= 0 && k < 8);
            check Alcotest.bool "listed in its shard" true
              (List.mem id (Registry.shard_ids reg k)))
          all;
        let total =
          List.init 8 (fun k -> List.length (Registry.shard_ids reg k))
          |> List.fold_left ( + ) 0
        in
        check Alcotest.int "shards partition the ids" (List.length all) total);
    tc "export is the concatenation of per-shard exports, reordered" (fun () ->
        let reg = Bx_load.Corpus.seed_registry ~shards:6 ~entries:25 ~seed:5 () in
        let whole = List.sort compare (Registry.export reg) in
        let sharded =
          List.concat (List.init 6 (Registry.export_shard reg))
          |> List.sort compare
        in
        check Alcotest.bool "same page multiset" true (whole = sharded));
    tc "import re-shards a dump without changing its meaning" (fun () ->
        let reg = Bx_load.Corpus.seed_registry ~shards:4 ~entries:25 ~seed:5 () in
        let back = ok_exn "import" (Registry.import ~shards:9 (Registry.export reg)) in
        check Alcotest.int "shard count" 9 (Registry.shard_count back);
        check Alcotest.bool "same ids" true (Registry.ids reg = Registry.ids back);
        check Alcotest.bool "same pages" true
          (List.sort compare (Registry.export reg)
          = List.sort compare (Registry.export back)));
    tc "ids_page slices submission order in O(limit) windows" (fun () ->
        let reg = Bx_load.Corpus.seed_registry ~shards:4 ~entries:30 ~seed:2 () in
        let n = Registry.size reg in
        let paged =
          List.concat_map
            (fun page -> Registry.ids_page reg ~offset:(page * 7) ~limit:7)
            (List.init ((n + 6) / 7) Fun.id)
        in
        check Alcotest.int "pages cover everything" n (List.length paged);
        check Alcotest.bool "no duplicates" true
          (List.length (List.sort_uniq compare paged) = n);
        check
          Alcotest.(list string)
          "beyond the end is empty" []
          (List.map Bx_repo.Identifier.to_string
             (Registry.ids_page reg ~offset:(n + 50) ~limit:7)));
    tc "overlay replaces wholesale and appends the rest" (fun () ->
        let reg = seed () in
        let donor = Bx_load.Corpus.seed_registry ~shards:3 ~entries:5 ~seed:9 () in
        ok_exn "overlay" (Registry.overlay reg (Registry.export donor));
        check Alcotest.bool "donor ids present" true
          (List.for_all
             (fun id -> List.mem id (Registry.ids reg))
             (Registry.ids donor));
        check Alcotest.bool "pages agree with the donor's" true
          (List.for_all
             (fun (p, b) -> List.assoc_opt p (Registry.export reg) = Some b)
             (Registry.export donor)));
  ]

(* ------------------------------------------------------------------ *)
(* The service over a sharded registry: pagination and search routes,
   per-shard cache generations, durability across restart, migration *)

(* Two catalogue entries that live in different shards of a 4-shard
   registry — the cache-invalidation test needs a pair whose writes
   must not interfere. *)
let cross_shard_pair t =
  Service.with_registry t (fun reg ->
      let ids = Registry.ids reg in
      let k0 = Registry.shard_of_id reg (List.hd ids) in
      let other =
        List.find (fun id -> Registry.shard_of_id reg id <> k0) ids
      in
      ( "/" ^ Bx_repo.Identifier.wiki_path (List.hd ids),
        "/" ^ Bx_repo.Identifier.wiki_path other ))

(* Splice probe text into the Overview section: raw text appended to a
   page is discarded by the parser, but the overview paragraph
   round-trips. *)
let inject body probe =
  let needle = "++ Overview\n\n" in
  let spliced =
    Str.replace_first (Str.regexp_string needle) (needle ^ probe ^ " ") body
  in
  if spliced = body then Alcotest.failf "page has no Overview section";
  spliced

let service_tests =
  [
    tc "paginated index serves stable windows at any shard count" (fun () ->
        let sharded =
          service ~config:{ Service.default_config with shards = 4 } ()
        in
        let flat = service () in
        let page n t =
          let r =
            Service.handle_query t
              ~query:(Printf.sprintf "page=%d&per_page=4" n)
              ~meth:"GET" ~path:"/" ~body:""
          in
          check Alcotest.int "page status" 200 r.Bx_repo.Webui.status;
          r.Bx_repo.Webui.body
        in
        check Alcotest.bool "same first page" true (page 1 sharded = page 1 flat);
        check Alcotest.bool "same second page" true (page 2 sharded = page 2 flat);
        check Alcotest.bool "pages differ" true (page 1 sharded <> page 2 sharded);
        check Alcotest.bool "nav present" true
          (contains ~needle:"per_page=4" (page 1 sharded)));
    tc "the search route answers from the indexes and rejects typos" (fun () ->
        let t = service ~config:{ Service.default_config with shards = 4 } () in
        let r =
          Service.handle_query t ~query:"class=precise" ~meth:"GET"
            ~path:"/search" ~body:""
        in
        check Alcotest.int "search 200" 200 r.Bx_repo.Webui.status;
        check Alcotest.bool "finds entries" true
          (contains ~needle:"examples:" r.Bx_repo.Webui.body);
        let bad =
          Service.handle_query t ~query:"class=nonsense" ~meth:"GET"
            ~path:"/search" ~body:""
        in
        check Alcotest.int "unknown class is a 400" 400 bad.Bx_repo.Webui.status);
    tc "a write invalidates only its own shard's cached pages"
      (fun () ->
        let t = service ~config:{ Service.default_config with shards = 4 } () in
        let path_a, path_b = cross_shard_pair t in
        let hits () = fst (Metrics.cache_counts (Service.metrics t)) in
        check Alcotest.int "A renders" 200 (get t path_a).Bx_repo.Webui.status;
        check Alcotest.int "A caches" 200 (get t path_a).Bx_repo.Webui.status;
        let h0 = hits () in
        check Alcotest.int "A hit" 200 (get t path_a).Bx_repo.Webui.status;
        check Alcotest.int "cache served A" (h0 + 1) (hits ());
        (* An edit in B's shard must not evict A. *)
        let page_b = (get t (path_b ^ ".wiki")).Bx_repo.Webui.body in
        check Alcotest.int "B edit" 200 (post t path_b page_b).Bx_repo.Webui.status;
        check Alcotest.int "A still cached" 200 (get t path_a).Bx_repo.Webui.status;
        check Alcotest.int "cache served A across B's write" (h0 + 2) (hits ());
        (* An edit in A's own shard must. *)
        let page_a = (get t (path_a ^ ".wiki")).Bx_repo.Webui.body in
        check Alcotest.int "A edit" 200 (post t path_a page_a).Bx_repo.Webui.status;
        check Alcotest.int "A re-renders" 200 (get t path_a).Bx_repo.Webui.status;
        check Alcotest.int "A's write evicted A" (h0 + 2) (hits ());
        check Alcotest.int "generation counts all writes" 2 (Service.generation t));
    tc "sharded edits survive close and reopen" (fun () ->
        let dir = fresh_dir "bxshard" in
        let t = service ~config:(journal_config ~shards:3 dir) () in
        let path, _ = cross_shard_pair t in
        let page = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
        let edited = inject page "Shard durability probe." in
        check Alcotest.int "edit" 200 (post t path edited).Bx_repo.Webui.status;
        Service.close t;
        let t' = service ~config:(journal_config ~shards:3 dir) () in
        let applied, failed = Service.replay_stats t' in
        check Alcotest.int "replayed the edit" 1 applied;
        check Alcotest.int "no failures" 0 failed;
        check Alcotest.bool "edit visible" true
          (contains ~needle:"Shard durability probe."
             (get t' (path ^ ".wiki")).Bx_repo.Webui.body);
        Service.close t');
    tc "a legacy journal directory is migrated in place" (fun () ->
        let dir = fresh_dir "bxmigrate" in
        let t = service ~config:(journal_config dir) () in
        let path =
          Service.with_registry t (fun reg ->
              "/" ^ Bx_repo.Identifier.wiki_path (List.hd (Registry.ids reg)))
        in
        let page = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
        let edited = inject page "Pre-migration edit." in
        check Alcotest.int "legacy edit" 200 (post t path edited).Bx_repo.Webui.status;
        Service.close t;
        check Alcotest.bool "legacy log present" true
          (Sys.file_exists (Filename.concat dir "journal.log"));
        let t' = service ~config:(journal_config ~shards:4 dir) () in
        check Alcotest.bool "edit survived migration" true
          (contains ~needle:"Pre-migration edit."
             (get t' (path ^ ".wiki")).Bx_repo.Webui.body);
        Service.close t';
        check Alcotest.bool "SHARDS stamp written" true
          (Sys.file_exists (Filename.concat dir "SHARDS"));
        check Alcotest.bool "legacy log absorbed" true
          (not (Sys.file_exists (Filename.concat dir "journal.log")));
        (* Reopening with the stamped count works; any other count is a
           configuration error, not a silent re-shard. *)
        let t'' = service ~config:(journal_config ~shards:4 dir) () in
        check Alcotest.bool "reopen with matching count" true
          (contains ~needle:"Pre-migration edit."
             (get t'' (path ^ ".wiki")).Bx_repo.Webui.body);
        Service.close t'';
        (match
           Service.create ~config:(journal_config ~shards:2 dir) ~seed ()
         with
        | Ok t -> Service.close t; Alcotest.fail "mismatched count accepted"
        | Error e ->
            check Alcotest.bool "error names the remedy" true
              (contains ~needle:"--shards" e)));
    tc "checkpoint seals every segment and reopen needs no seed" (fun () ->
        let dir = fresh_dir "bxckall" in
        let t = service ~config:(journal_config ~shards:3 dir) () in
        let path, _ = cross_shard_pair t in
        let page = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
        check Alcotest.int "edit" 200
          (post t path (inject page "Sealed.")).Bx_repo.Webui.status;
        let files = ok_exn "checkpoint" (Service.checkpoint t) in
        check Alcotest.bool "wrote files across segments" true (files > 0);
        List.iter
          (fun k ->
            let seg = Filename.concat dir (Printf.sprintf "shard-%03d" k) in
            check Alcotest.bool
              (Printf.sprintf "segment %d sealed" k)
              true
              (Sys.file_exists (Filename.concat seg "snapshot/MANIFEST")))
          [ 0; 1; 2 ];
        Service.close t;
        let t' = service ~config:(journal_config ~shards:3 dir) () in
        let applied, _ = Service.replay_stats t' in
        check Alcotest.int "nothing to replay after checkpoint" 0 applied;
        check Alcotest.bool "state restored from segment snapshots" true
          (contains ~needle:"Sealed."
             (get t' (path ^ ".wiki")).Bx_repo.Webui.body);
        Service.close t');
    tc "per-shard compaction truncates one segment, not the catalogue"
      (fun () ->
        let dir = fresh_dir "bxcompact" in
        let config =
          { (journal_config ~shards:4 dir) with Service.compact_every = 2 }
        in
        let t = service ~config () in
        let path, other = cross_shard_pair t in
        let page = (get t (path ^ ".wiki")).Bx_repo.Webui.body in
        check Alcotest.int "edit 1" 200 (post t path page).Bx_repo.Webui.status;
        check Alcotest.int "edit 2" 200 (post t path page).Bx_repo.Webui.status;
        let k, k_other =
          Service.with_registry t (fun reg ->
              let of_path p =
                match Bx_repo.Webui.page_identifier p with
                | Some id -> Registry.shard_of_id reg id
                | None -> Alcotest.failf "no identifier in %s" p
              in
              (of_path path, of_path other))
        in
        let seg n = Filename.concat dir (Printf.sprintf "shard-%03d" n) in
        check Alcotest.bool "written shard compacted" true
          (Sys.file_exists (Filename.concat (seg k) "snapshot/MANIFEST"));
        check Alcotest.bool "idle shard untouched" false
          (Sys.file_exists (Filename.concat (seg k_other) "snapshot/MANIFEST"));
        Service.close t);
  ]

(* ------------------------------------------------------------------ *)
(* Torture: kill -9 at the per-shard journal seams.  The invariant is
   inherited from the single-segment suite — every acked edit survives
   recovery, plus at most the one in-flight edit — but the appends now
   land in distinct segments drawing from one global sequence counter,
   and recovery must merge the segments back into the acked order. *)

let shard_page_paths t n =
  (* n catalogue entries spread over at least two shards. *)
  Service.with_registry t (fun reg ->
      Registry.ids reg
      |> List.filteri (fun i _ -> i < n)
      |> List.map (fun id -> "/" ^ Bx_repo.Identifier.wiki_path id))

let torture_child ~dir ~ack_fd ~site ~crash_at =
  try
    let t = service ~config:(journal_config ~shards:3 dir) () in
    let paths = shard_page_paths t 4 in
    let pages =
      List.map (fun p -> (p, (get t (p ^ ".wiki")).Bx_repo.Webui.body)) paths
    in
    for i = 1 to 12 do
      if i = crash_at then Fault.set site Fault.Crash;
      let path, page = List.nth pages (i mod List.length pages) in
      let body = inject page (Printf.sprintf "Torture edit %d." i) in
      let resp = post t path body in
      if resp.Bx_repo.Webui.status = 200 then
        ignore (Unix.write ack_fd (Bytes.make 1 'a') 0 1)
    done;
    Unix._exit 2
  with _ -> Unix._exit 3

let run_torture ~site ~crash_at =
  let dir = fresh_dir "bxshardcrash" in
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      torture_child ~dir ~ack_fd:w ~site ~crash_at
  | pid ->
      Unix.close w;
      let acked = ref 0 in
      let buf = Bytes.create 64 in
      let rec drain () =
        match Unix.read r buf 0 64 with
        | 0 -> ()
        | n ->
            acked := !acked + n;
            drain ()
      in
      drain ();
      Unix.close r;
      let _, status = Unix.waitpid [] pid in
      check
        (Alcotest.testable
           (fun ppf -> function
             | Unix.WEXITED n -> Fmt.pf ppf "exit %d" n
             | Unix.WSIGNALED n -> Fmt.pf ppf "signal %d" n
             | Unix.WSTOPPED n -> Fmt.pf ppf "stopped %d" n)
           ( = ))
        "child died via the crash failpoint" (Unix.WEXITED 137) status;
      (dir, !acked)

let seam_case site =
  tc ("crash at " ^ site ^ " across segments loses at most the in-flight edit")
    (isolated (fun () ->
         let dir, acked = run_torture ~site ~crash_at:5 in
         Fault.clear ();
         let t = service ~config:(journal_config ~shards:3 dir) () in
         let applied, failed = Service.replay_stats t in
         check Alcotest.int "no failed replays" 0 failed;
         check Alcotest.bool
           (Printf.sprintf "recovered %d of %d acked (+<=1)" applied acked)
           true
           (applied = acked || applied = acked + 1);
         Service.close t))

let torture_tests =
  List.map seam_case
    [
      "journal.append.pre_write";
      "journal.append.pre_fsync";
      "journal.append.post_fsync";
    ]

let () =
  Alcotest.run "bx shard"
    [
      ("registry shards", registry_tests);
      ("equivalence", [ equivalence_test; indexed_search_test ]);
      ("sharded service", service_tests);
      ("shard torture", torture_tests);
    ]
