(* Journal-shipping replication: the wire protocol codecs, the journal
   primitives behind them (tail, reset, epoch file, snapshot install),
   the primary's stream/snapshot endpoints, the replica's apply path
   (read-only role, cache invalidation, retried prefixes, gap
   detection), promotion with epoch fencing, lag-aware readiness —
   and kill -9 failover torture at every replication seam: crash the
   primary mid-stream and promote the replica, crash the follower
   mid-apply and recover it, crash promotion itself and re-promote.
   The invariant throughout is the paper's durability story extended
   across two processes: the promoted state is the acked prefix, give
   or take at most one in-flight edit. *)

open Bx_server
module Fault = Bx_fault.Fault

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let fresh_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let seed = Bx_catalogue.Catalogue.seed

let service ?(config = Service.default_config) ?lenses () =
  match Service.create ~config ?lenses ~seed () with
  | Ok t -> t
  | Error e -> Alcotest.failf "service create: %s" e

let journal_config dir =
  { Service.default_config with journal_dir = Some dir; compact_every = 0 }

let replica_config dir =
  { (journal_config dir) with Service.replica = true; stream_wait = 0.2 }

let get t path = Service.handle t ~meth:"GET" ~path ~body:""
let post t path body = Service.handle t ~meth:"POST" ~path ~body

let stream t query =
  Service.handle_query t ~query ~meth:"GET" ~path:"/replication/stream"
    ~body:""

let metrics_page t = (get t "/metrics").Bx_repo.Webui.body

let isolated f () =
  Fault.clear ();
  Fun.protect ~finally:Fault.clear f

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let wait_for ?(timeout = 10.0) f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

(* The edit counter embedded in the celsius page text, as in
   test_fault: "temperature<k>" after the k-th edit. *)
let page_path = "/examples:celsius"
let rev_re = Str.regexp "temperature[0-9]*"

let page_body t = (get t (page_path ^ ".wiki")).Bx_repo.Webui.body

let page_rev t =
  let body = page_body t in
  ignore (Str.search_forward rev_re body 0);
  let m = Str.matched_string body in
  let digits = String.sub m 11 (String.length m - 11) in
  if digits = "" then 0 else int_of_string digits

let edited_body base i =
  Str.global_replace rev_re ("temperature" ^ string_of_int i) base

(* A fabricated stream record for the i-th edit of the page. *)
let record base ~seq i =
  { Journal.seq; path = page_path; body = edited_body base i }

let sink t = Service.replication_sink t

(* Flatten the typed apply error into the string these tests assert
   against (a gap keeps its historic "stream gap" spelling). *)
let apply t records =
  Result.map_error
    (function
      | `Fail m -> m
      | `Gap (expected, got) ->
          Printf.sprintf "stream gap: expected seq %d, got %d" expected got)
    ((sink t).Replication.apply records)

(* ------------------------------------------------------------------ *)
(* Protocol codecs *)

let sample_records =
  [
    { Journal.seq = 4; path = "/a"; body = "one" };
    { Journal.seq = 5; path = "/b"; body = "two\nlines\n" };
  ]

let records_testable =
  Alcotest.testable
    (fun ppf { Journal.seq; path; body } -> Fmt.pf ppf "%d:%s:%S" seq path body)
    ( = )

let protocol_tests =
  [
    tc "stream body round-trips, including empty batches" (fun () ->
        let body =
          Replication.stream_body ~epoch:3 ~next_seq:6 ~records:sample_records
        in
        (match Replication.parse_stream_body body with
        | Ok (Replication.Records { epoch; next_seq; records }) ->
            check Alcotest.int "epoch" 3 epoch;
            check Alcotest.int "next_seq" 6 next_seq;
            check (Alcotest.list records_testable) "records" sample_records
              records
        | Ok _ -> Alcotest.fail "expected Records"
        | Error e -> Alcotest.failf "parse: %s" e);
        match
          Replication.parse_stream_body
            (Replication.stream_body ~epoch:1 ~next_seq:9 ~records:[])
        with
        | Ok (Replication.Records { records = []; next_seq = 9; _ }) -> ()
        | _ -> Alcotest.fail "empty batch should round-trip");
    tc "reset body round-trips" (fun () ->
        match
          Replication.parse_stream_body
            (Replication.reset_body ~epoch:2 ~floor:17)
        with
        | Ok (Replication.Bootstrap { epoch = 2; floor = 17 }) -> ()
        | Ok _ -> Alcotest.fail "expected Bootstrap"
        | Error e -> Alcotest.failf "parse: %s" e);
    tc "snapshot body round-trips the file set" (fun () ->
        let files = [ ("MANIFEST-not", "seq 4\n"); ("page.wiki", "body") ] in
        match
          Replication.parse_snapshot_body
            (Replication.snapshot_body ~epoch:5 ~seq:4 ~files)
        with
        | Ok (5, 4, got) ->
            check
              Alcotest.(list (pair string string))
              "files" files got
        | Ok _ -> Alcotest.fail "header mismatch"
        | Error e -> Alcotest.failf "parse: %s" e);
    tc "a flipped byte in a frame is rejected by its CRC" (fun () ->
        let body =
          Replication.stream_body ~epoch:1 ~next_seq:6 ~records:sample_records
        in
        let corrupt = Bytes.of_string body in
        Bytes.set corrupt (Bytes.length corrupt - 1) '\xff';
        match Replication.parse_stream_body (Bytes.to_string corrupt) with
        | Error e ->
            check Alcotest.bool "names the checksum" true
              (contains ~needle:"checksum" e)
        | Ok _ -> Alcotest.fail "corrupt frame accepted");
    tc "count mismatches and garbage headers are rejected" (fun () ->
        let one =
          Replication.stream_body ~epoch:1 ~next_seq:5
            ~records:[ List.hd sample_records ]
        in
        let lying = Str.replace_first (Str.regexp " 1\n") " 2\n" one in
        (match Replication.parse_stream_body lying with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "count lie accepted");
        List.iter
          (fun bad ->
            match Replication.parse_stream_body bad with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" bad)
          [ ""; "no newline"; "bxrepl 9 1 1 0\n"; "bxrepl 1 x 1 0\n" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Journal primitives the protocol rides on *)

let with_log dir f =
  match Journal.open_ ~dir ~next_seq:1 with
  | Error e -> Alcotest.failf "journal open: %s" e
  | Ok j -> Fun.protect ~finally:(fun () -> Journal.close j) (fun () -> f j)

let append_exn j ~path ~body = ok_exn "append" (Journal.append j ~path ~body)

let journal_tests =
  [
    tc "tail returns the suffix from a sequence number" (fun () ->
        let dir = fresh_dir "bxtail" in
        with_log dir (fun j ->
            ignore (append_exn j ~path:"/a" ~body:"one");
            ignore (append_exn j ~path:"/b" ~body:"two");
            ignore (append_exn j ~path:"/c" ~body:"three"));
        let seqs from =
          List.map
            (fun r -> r.Journal.seq)
            (ok_exn "tail" (Journal.tail ~dir ~from))
        in
        check Alcotest.(list int) "from 1" [ 1; 2; 3 ] (seqs 1);
        check Alcotest.(list int) "from 2" [ 2; 3 ] (seqs 2);
        check Alcotest.(list int) "past the end" [] (seqs 9));
    tc "decode_frames reads encodes back and flags truncation" (fun () ->
        let data =
          String.concat ""
            (List.map
               (fun { Journal.seq; path; body } ->
                 Journal.encode ~seq ~path ~body)
               sample_records)
        in
        check
          (Alcotest.list records_testable)
          "round-trip" sample_records
          (ok_exn "decode" (Journal.decode_frames data ~off:0));
        match
          Journal.decode_frames
            (String.sub data 0 (String.length data - 3))
            ~off:0
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "truncated frames accepted");
    tc "reset empties the log and restarts numbering" (fun () ->
        let dir = fresh_dir "bxreset" in
        with_log dir (fun j ->
            ignore (append_exn j ~path:"/a" ~body:"one");
            ok_exn "reset" (Journal.reset j ~next_seq:5);
            check Alcotest.int "next_seq" 5 (Journal.next_seq j);
            check Alcotest.int "empty" 0 (Journal.record_count j);
            check Alcotest.int "seq resumes at 5" 5
              (append_exn j ~path:"/b" ~body:"two"));
        check Alcotest.(list int) "only the post-reset record" [ 5 ]
          (List.map
             (fun r -> r.Journal.seq)
             (ok_exn "tail" (Journal.tail ~dir ~from:1))));
    tc "the epoch file persists and defaults to zero" (fun () ->
        let dir = fresh_dir "bxepoch" in
        check Alcotest.int "unborn" 0 (Journal.read_epoch ~dir);
        ok_exn "write" (Journal.write_epoch ~dir 7);
        check Alcotest.int "written" 7 (Journal.read_epoch ~dir);
        ok_exn "overwrite" (Journal.write_epoch ~dir 8);
        check Alcotest.int "overwritten" 8 (Journal.read_epoch ~dir));
    tc "install_snapshot refuses hostile file names" (fun () ->
        let dir = fresh_dir "bxinstall" in
        with_log dir (fun j ->
            List.iter
              (fun name ->
                match
                  Journal.install_snapshot j ~seq:3 ~files:[ (name, "x") ]
                with
                | Error _ -> ()
                | Ok () -> Alcotest.failf "accepted %S" name)
              [ "MANIFEST"; "../evil"; "a/b"; ".hidden"; "" ]));
  ]

(* ------------------------------------------------------------------ *)
(* The primary: stream and snapshot endpoints through handle_query *)

let edit t i =
  let body = edited_body (page_body t) i in
  check Alcotest.int
    (Printf.sprintf "edit %d" i)
    200
    (post t page_path body).Bx_repo.Webui.status

let primary_tests =
  [
    tc "the stream serves journal frames and honours the batch cap"
      (isolated (fun () ->
           let dir = fresh_dir "bxstream" in
           let config =
             { (journal_config dir) with Service.stream_max_records = 1 }
           in
           let t = service ~config () in
           check Alcotest.int "boot epoch" 1 (Service.epoch t);
           check Alcotest.int "epoch persisted at boot" 1
             (Journal.read_epoch ~dir);
           edit t 1;
           edit t 2;
           let r = stream t "from=1&epoch=0&wait=0" in
           check Alcotest.int "status" 200 r.Bx_repo.Webui.status;
           (match Replication.parse_stream_body r.Bx_repo.Webui.body with
           | Ok (Replication.Records { epoch; next_seq; records }) ->
               check Alcotest.int "epoch" 1 epoch;
               check Alcotest.int "next_seq" 3 next_seq;
               (* stream_max_records = 1: one record now, poll again for
                  the rest. *)
               check Alcotest.(list int) "capped batch" [ 1 ]
                 (List.map (fun r -> r.Journal.seq) records)
           | Ok _ -> Alcotest.fail "expected Records"
           | Error e -> Alcotest.failf "parse: %s" e);
           (match
              Replication.parse_stream_body
                (stream t "from=3&epoch=0&wait=0").Bx_repo.Webui.body
            with
           | Ok (Replication.Records { records = []; _ }) -> ()
           | _ -> Alcotest.fail "caught-up poll should be empty");
           check Alcotest.int "a poll acks everything below it" 3
             (Service.last_stream_poll t);
           check Alcotest.int "bad from is a 400" 400
             (stream t "from=x&wait=0").Bx_repo.Webui.status;
           check Alcotest.bool "streamed records counted" true
             (contains ~needle:"bxwiki_replication_streamed_records_total 1"
                (metrics_page t));
           Service.close t));
    tc "streaming requires a journal" (fun () ->
        let t = service () in
        check Alcotest.int "404" 404 (stream t "from=1").Bx_repo.Webui.status);
    tc "the snapshot endpoint appears once a snapshot exists"
      (isolated (fun () ->
           let dir = fresh_dir "bxsnapep" in
           let t = service ~config:(journal_config dir) () in
           let snap () =
             Service.handle t ~meth:"GET" ~path:"/replication/snapshot"
               ~body:""
           in
           check Alcotest.int "no snapshot yet" 404 (snap ()).Bx_repo.Webui.status;
           edit t 1;
           ignore (ok_exn "checkpoint" (Service.checkpoint t));
           let r = snap () in
           check Alcotest.int "200" 200 r.Bx_repo.Webui.status;
           (match Replication.parse_snapshot_body r.Bx_repo.Webui.body with
           | Ok (epoch, seq, files) ->
               check Alcotest.int "epoch" 1 epoch;
               check Alcotest.int "seq = snapshot floor" seq
                 (Journal.snapshot_seq ~dir);
               check Alcotest.bool "has files" true (files <> []);
               check Alcotest.bool "MANIFEST travels out of band" false
                 (List.mem_assoc "MANIFEST" files)
           | Error e -> Alcotest.failf "parse: %s" e);
           Service.close t));
    tc "a poll with a newer epoch fences the primary"
      (isolated (fun () ->
           let dir = fresh_dir "bxfence" in
           let t = service ~config:(journal_config dir) () in
           edit t 1;
           let r = stream t "from=2&epoch=5&wait=0" in
           check Alcotest.int "409" 409 r.Bx_repo.Webui.status;
           check Alcotest.bool "names the epochs" true
             (contains ~needle:"deposed: epoch 5 supersedes ours (1)"
                r.Bx_repo.Webui.body);
           check Alcotest.bool "fenced" true (Service.fenced t);
           let w = post t page_path (edited_body (page_body t) 2) in
           check Alcotest.int "writes rejected" 503 w.Bx_repo.Webui.status;
           check Alcotest.bool "says fenced" true
             (contains ~needle:"fenced: deposed by epoch 5"
                w.Bx_repo.Webui.body);
           let ready = get t "/readyz" in
           check Alcotest.int "not ready" 503 ready.Bx_repo.Webui.status;
           check Alcotest.bool "reason" true
             (contains ~needle:"fenced" ready.Bx_repo.Webui.body);
           check Alcotest.bool "gauge" true
             (contains ~needle:"bxwiki_replication_fenced 1" (metrics_page t));
           Service.close t));
  ]

(* ------------------------------------------------------------------ *)
(* The replica: read-only role, the apply path, promotion *)

let replica_tests =
  [
    tc "a replica serves reads, refuses writes, still runs lenses"
      (fun () ->
        let config = { Service.default_config with replica = true } in
        let lenses = [ ("composers", Bx_catalogue.Composers_string.lens) ] in
        let t = service ~config ~lenses () in
        check Alcotest.int "GET" 200 (get t page_path).Bx_repo.Webui.status;
        let w = post t page_path (page_body t) in
        check Alcotest.int "POST" 503 w.Bx_repo.Webui.status;
        check Alcotest.bool "explains" true
          (contains ~needle:"read-only replica" w.Bx_repo.Webui.body);
        (* Lens execution touches no registry state and keeps working. *)
        check Alcotest.int "lens POST" 200
          (post t "/slens/composers/get"
             (Bx_catalogue.Composers_string.synthetic_source 0))
            .Bx_repo.Webui.status);
    tc "apply journals, applies and invalidates the response cache"
      (isolated (fun () ->
           let dir = fresh_dir "bxapply" in
           let t = service ~config:(replica_config dir) () in
           let base = page_body t in
           (* Warm the cache, then apply a streamed record: the next read
              must see the new revision, not the cached page. *)
           ignore (get t page_path);
           ignore (get t page_path);
           let gen0 = Service.generation t in
           ok_exn "apply" (apply t [ record base ~seq:1 1 ]);
           check Alcotest.int "generation bumped per record" (gen0 + 1)
             (Service.generation t);
           check Alcotest.int "page advanced" 1 (page_rev t);
           check Alcotest.(list int) "record journaled locally" [ 1 ]
             (List.map
                (fun r -> r.Journal.seq)
                (ok_exn "tail" (Journal.tail ~dir ~from:1)));
           (* A retried prefix (the upstream resent what we hold) is
              skipped without reapplying... *)
           ok_exn "retry" (apply t [ record base ~seq:1 1 ]);
           check Alcotest.int "no double apply" (gen0 + 1)
             (Service.generation t);
           ok_exn "overlap"
             (apply t [ record base ~seq:1 1; record base ~seq:2 2 ]);
           check Alcotest.int "suffix applied" 2 (page_rev t);
           (* ...but a gap means our cursor and the stream disagree. *)
           (match apply t [ record base ~seq:9 9 ] with
           | Error e ->
               check Alcotest.bool "gap named" true
                 (contains ~needle:"stream gap" e)
           | Ok () -> Alcotest.fail "gap accepted");
           check Alcotest.bool "applied records counted" true
             (contains ~needle:"bxwiki_replication_applied_records_total 2"
                (metrics_page t));
           Service.close t));
    tc "promotion gates on sync, persists the epoch, survives restart"
      (isolated (fun () ->
           let dir = fresh_dir "bxpromote" in
           let t = service ~config:(replica_config dir) () in
           (match Service.promote t with
           | Error e ->
               check Alcotest.bool "refused before first sync" true
                 (contains ~needle:"never synced" e)
           | Ok _ -> Alcotest.fail "promoted a virgin replica");
           (sink t).Replication.note_progress ~behind:0;
           check Alcotest.int "promoted" 1 (ok_exn "promote" (Service.promote t));
           check Alcotest.bool "now primary" false (Service.is_replica t);
           check Alcotest.int "epoch persisted" 1 (Journal.read_epoch ~dir);
           edit t 1;
           (match Service.promote t with
           | Error "already primary" -> ()
           | _ -> Alcotest.fail "double promote");
           check Alcotest.int "route says conflict" 409
             (post t "/admin/promote" "").Bx_repo.Webui.status;
           Service.close t;
           (* A restarted replica that has held an epoch may be promoted
              straight away — it was a primary's successor once. *)
           let t = service ~config:(replica_config dir) () in
           check Alcotest.int "epoch recovered" 1 (Service.epoch t);
           check Alcotest.int "re-promoted" 2
             (ok_exn "promote" (Service.promote t));
           Service.close t));
    tc "lag grows from the last sync and drives readiness"
      (isolated (fun () ->
           let dir = fresh_dir "bxlag" in
           let config =
             { (replica_config dir) with Service.replica_lag_threshold = 0.05 }
           in
           let t = service ~config () in
           check Alcotest.bool "not ready before first sync" false
             (Service.ready t);
           check Alcotest.bool "names the sync" true
             (List.mem "replica_syncing" (Service.readiness t));
           (sink t).Replication.note_progress ~behind:0;
           check Alcotest.bool "synced" true (Service.replication_synced t);
           check Alcotest.bool "caught up = no lag" true
             (Service.replication_lag t = 0.);
           check Alcotest.bool "ready" true (Service.ready t);
           (* Records queueing upstream: lag runs from the last moment we
              were current, and past the threshold we stop advertising. *)
           (sink t).Replication.note_progress ~behind:3;
           Thread.delay 0.1;
           check Alcotest.int "behind" 3 (Service.replication_behind t);
           check Alcotest.bool "lagging" true
             (Service.replication_lag t > 0.05);
           check Alcotest.bool "names the lag" true
             (List.mem "replication_lag" (Service.readiness t));
           (sink t).Replication.note_progress ~behind:0;
           check Alcotest.bool "recovers" true (Service.ready t);
           Service.close t));
  ]

(* ------------------------------------------------------------------ *)
(* kill -9 failover torture.

   Shape A — crash the PRIMARY at a seam and promote the replica.  The
   forked child runs the full primary (socket server + journal) and
   edits in-process, acking each accepted edit over a pipe; before the
   next edit it waits until the replica's poll cursor covers the last
   one, so the parent-side replica is known current to within one edit.
   When the armed seam fires the child dies as if kill -9'd.  The
   parent promotes its replica and checks the promoted state is the
   acked prefix give or take the one in-flight edit — then revives the
   dead primary's directory and proves the new epoch fences it.

   Shape B — crash the FOLLOWER mid-stream (frame read or apply), then
   recover its journal directory and catch back up against the still-
   running primary.

   Shape C — crash PROMOTION itself: the ordering (persist epoch, then
   flip writable) must leave either nothing or only an advanced epoch
   behind. *)

let exit_status =
  Alcotest.testable
    (fun ppf -> function
      | Unix.WEXITED n -> Fmt.pf ppf "exit %d" n
      | Unix.WSIGNALED n -> Fmt.pf ppf "signal %d" n
      | Unix.WSTOPPED n -> Fmt.pf ppf "stopped %d" n)
    ( = )

let read_port_line fd =
  let ic = Unix.in_channel_of_descr fd in
  match int_of_string_opt (String.trim (input_line ic)) with
  | Some p -> p
  | None -> Alcotest.fail "child sent no port"

let write_port_line fd port =
  let line = string_of_int port ^ "\n" in
  ignore (Unix.write_substring fd line 0 (String.length line))

let serve_thread t =
  Thread.create
    (fun () ->
      match Service.serve t ~port:0 ~workers:2 ~quiet:true () with
      | Ok () -> ()
      | Error e -> Printf.eprintf "serve: %s\n%!" e)
    ()

(* In the forked child: no alcotest, no shared stdout; exits are the
   whole protocol (137 = the crash failpoint fired). *)
let primary_child ~dir ~site ~crash_at ~port_fd ~ack_fd =
  try
    let t =
      service ~config:{ (journal_config dir) with Service.stream_wait = 0.2 } ()
    in
    let _srv = serve_thread t in
    if not (wait_for (fun () -> Service.port t <> None)) then Unix._exit 4;
    write_port_line port_fd (Option.get (Service.port t));
    let current = ref (page_body t) in
    for i = 1 to 8 do
      if i = crash_at then Fault.set site Fault.Crash;
      let body = edited_body !current i in
      if (post t page_path body).Bx_repo.Webui.status = 200 then begin
        current := body;
        ignore (Unix.write ack_fd (Bytes.make 1 'a') 0 1)
      end;
      (* Do not race ahead of the replica: a poll at from = i+1 means
         everything through i is applied downstream. *)
      ignore (wait_for (fun () -> Service.last_stream_poll t >= i + 1))
    done;
    Unix._exit 2
  with _ -> Unix._exit 3

let drain_acks fd =
  let buf = Bytes.create 64 in
  let rec go n =
    match Unix.read fd buf 0 64 with 0 -> n | k -> go (n + k)
  in
  let n = go 0 in
  Unix.close fd;
  n

let primary_crash_case site =
  tc ("primary killed at " ^ site ^ ": promote within one edit of the acks")
    (isolated (fun () ->
         let pdir = fresh_dir "bxfo_p" and rdir = fresh_dir "bxfo_r" in
         let port_r, port_w = Unix.pipe () and ack_r, ack_w = Unix.pipe () in
         match Unix.fork () with
         | 0 ->
             Unix.close port_r;
             Unix.close ack_r;
             primary_child ~dir:pdir ~site ~crash_at:4 ~port_fd:port_w
               ~ack_fd:ack_w
         | pid ->
             Unix.close port_w;
             Unix.close ack_w;
             let port = read_port_line port_r in
             let repl = service ~config:(replica_config rdir) () in
             let follower =
               Thread.create
                 (fun () ->
                   Service.follow repl ~host:"" ~port ~wait:0.2
                     ~min_sleep:0.02 ~max_sleep:0.1 ())
                 ()
             in
             let acked = drain_acks ack_r in
             let _, status = Unix.waitpid [] pid in
             check exit_status "child died via the crash failpoint"
               (Unix.WEXITED 137) status;
             Fault.clear ();
             (* The primary is gone; flip the survivor writable. *)
             let epoch = ok_exn "promote" (Service.promote repl) in
             Thread.join follower;
             check Alcotest.bool "epoch advanced past the primary's" true
               (epoch >= 2);
             let rev = page_rev repl in
             check Alcotest.bool
               (Printf.sprintf "promoted rev %d within 1 of %d acked" rev
                  acked)
               true
               (rev >= acked - 1 && rev <= acked + 1);
             (* The promoted node takes writes... *)
             check Alcotest.int "write lands" 200
               (post repl page_path (edited_body (page_body repl) 77))
                 .Bx_repo.Webui.status;
             (* ...and the deposed primary, revived from its own journal,
                is fenced by the first poll carrying the new epoch: its
                stale acks can never contradict the promoted history. *)
             let old = service ~config:(journal_config pdir) () in
             check Alcotest.int "revival replays its journal" 409
               (stream old
                  (Printf.sprintf "from=1&epoch=%d&wait=0" epoch))
                 .Bx_repo.Webui.status;
             let w = post old page_path (edited_body (page_body old) 88) in
             check Alcotest.int "deposed writes rejected" 503
               w.Bx_repo.Webui.status;
             check Alcotest.bool "fenced" true
               (contains ~needle:"fenced" w.Bx_repo.Webui.body);
             Service.close old;
             Service.close repl))

(* The primary also runs in a forked child here: Unix.fork is illegal
   once any domain has been spawned in the process (OCaml 5), and
   Service.serve spawns worker domains — so every server involved in a
   fork-based test lives in its own child, and the test-runner process
   stays domain-free until the socket tests at the very end. *)
let storm_primary_child ~dir ~port_fd =
  try
    let t =
      service ~config:{ (journal_config dir) with Service.stream_wait = 0.2 } ()
    in
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Service.shutdown t));
    let srv = serve_thread t in
    if not (wait_for (fun () -> Service.port t <> None)) then Unix._exit 4;
    write_port_line port_fd (Option.get (Service.port t));
    Thread.join srv;
    Unix._exit 0
  with _ -> Unix._exit 3

let follower_child ~dir ~site ~port_fd =
  try
    let port = read_port_line port_fd in
    let t = service ~config:(replica_config dir) () in
    Fault.set site (Fault.One_in (4, Fault.Crash));
    Service.follow t ~host:"" ~port ~wait:0.2 ~min_sleep:0.02 ~max_sleep:0.1
      ();
    Unix._exit 2
  with _ -> Unix._exit 3

let http ~port ~meth ~path ~body =
  match Replication.request ~host:"" ~port ~meth ~path ~body () with
  | Ok (status, resp) -> (status, resp)
  | Error e -> Alcotest.failf "%s %s: %s" meth path e

let follower_crash_case site =
  tc ("follower killed at " ^ site ^ ": recover the journal and catch up")
    (isolated (fun () ->
         let pdir = fresh_dir "bxfc_p" and rdir = fresh_dir "bxfc_r" in
         let pport_r, pport_w = Unix.pipe () in
         let prim_pid =
           match Unix.fork () with
           | 0 ->
               Unix.close pport_r;
               storm_primary_child ~dir:pdir ~port_fd:pport_w
           | pid ->
               Unix.close pport_w;
               pid
         in
         let port = read_port_line pport_r in
         let fport_r, fport_w = Unix.pipe () in
         match Unix.fork () with
         | 0 ->
             Unix.close fport_w;
             follower_child ~dir:rdir ~site ~port_fd:fport_r
         | pid ->
             Unix.close fport_r;
             write_port_line fport_w port;
             Unix.close fport_w;
             (* A write storm over the wire until the armed seam kills
                the follower. *)
             let status, body =
               http ~port ~meth:"GET" ~path:(page_path ^ ".wiki") ~body:""
             in
             check Alcotest.int "page fetch" 200 status;
             let current = ref body in
             let rec storm i =
               match Unix.waitpid [ Unix.WNOHANG ] pid with
               | 0, _ when i <= 200 ->
                   let body = edited_body !current i in
                   let status, _ =
                     http ~port ~meth:"POST" ~path:page_path ~body
                   in
                   check Alcotest.int "storm edit" 200 status;
                   current := body;
                   Thread.delay 0.15;
                   storm (i + 1)
               | 0, _ ->
                   Unix.kill pid Sys.sigkill;
                   ignore (Unix.waitpid [] pid);
                   Alcotest.fail "seam never fired"
               | _, status -> (status, i - 1)
             in
             let status, edits = storm 1 in
             check exit_status "child died via the crash failpoint"
               (Unix.WEXITED 137) status;
             Fault.clear ();
             (* The dead follower's directory is a crash-consistent
                prefix; reopening it replays cleanly and the survivor
                catches back up from wherever it stopped. *)
             let repl = service ~config:(replica_config rdir) () in
             let _, failed = Service.replay_stats repl in
             check Alcotest.int "no failed replays" 0 failed;
             check Alcotest.bool "recovered a prefix" true
               (page_rev repl <= edits);
             let s = sink repl in
             let rec catch_up tries =
               if tries = 0 then Alcotest.fail "never caught up"
               else
                 match Replication.poll_once ~host:"" ~port ~wait:0.2 s with
                 | Ok 0 when page_rev repl = edits -> ()
                 | _ -> catch_up (tries - 1)
             in
             catch_up 50;
             check Alcotest.int "caught up to the storm" edits (page_rev repl);
             check Alcotest.bool "synced" true (Service.replication_synced repl);
             Service.close repl;
             Unix.kill prim_pid Sys.sigterm;
             let _, pstatus = Unix.waitpid [] prim_pid in
             check exit_status "primary drained cleanly" (Unix.WEXITED 0)
               pstatus))

let promote_crash_case =
  tc "promotion killed at repl.promote: nothing lost, re-promote works"
    (isolated (fun () ->
         let dir = fresh_dir "bxpc" in
         match Unix.fork () with
         | 0 -> (
             try
               let t = service ~config:(replica_config dir) () in
               let base = page_body t in
               (match apply t [ record base ~seq:1 1 ] with
               | Ok () -> ()
               | Error _ -> Unix._exit 4);
               (sink t).Replication.note_progress ~behind:0;
               Fault.set "repl.promote" Fault.Crash;
               ignore (Service.promote t);
               Unix._exit 2
             with _ -> Unix._exit 3)
         | pid ->
             let _, status = Unix.waitpid [] pid in
             check exit_status "child died via the crash failpoint"
               (Unix.WEXITED 137) status;
             Fault.clear ();
             let t = service ~config:(replica_config dir) () in
             let _, failed = Service.replay_stats t in
             check Alcotest.int "no failed replays" 0 failed;
             check Alcotest.int "the applied record survived" 1 (page_rev t);
             check Alcotest.bool "still a replica" true (Service.is_replica t);
             (* The crash fired before the epoch was persisted, so the
                node is exactly as if promotion was never attempted; a
                re-promotion after re-syncing completes the failover. *)
             (sink t).Replication.note_progress ~behind:0;
             let e = ok_exn "re-promote" (Service.promote t) in
             check Alcotest.bool "epoch monotone" true (e >= 1);
             check Alcotest.int "writes land" 200
               (post t page_path (edited_body (page_body t) 2))
                 .Bx_repo.Webui.status;
             Service.close t))

let torture_tests =
  List.map primary_crash_case
    [
      "repl.stream.write";
      "journal.append.pre_write";
      "journal.append.pre_fsync";
      "journal.append.post_fsync";
    ]
  @ [ promote_crash_case ]
  @ List.map follower_crash_case [ "repl.frame.read"; "repl.apply" ]

(* ------------------------------------------------------------------ *)
(* Over real sockets: poll_once catch-up, snapshot bootstrap across a
   compaction, and the live follow loop ending in promotion. *)

let with_primary ?(config_of = fun dir -> journal_config dir) f =
  let pdir = fresh_dir "bxsock_p" in
  let t =
    service ~config:{ (config_of pdir) with Service.stream_wait = 0.2 } ()
  in
  let srv = serve_thread t in
  check Alcotest.bool "server up" true
    (wait_for (fun () -> Service.port t <> None));
  Fun.protect
    ~finally:(fun () ->
      Service.shutdown t;
      Thread.join srv)
    (fun () -> f t (Option.get (Service.port t)))

let socket_tests =
  [
    tc "poll_once catches a fresh replica up and follows new edits"
      (isolated (fun () ->
           with_primary (fun prim port ->
               edit prim 1;
               edit prim 2;
               edit prim 3;
               let rdir = fresh_dir "bxsock_r" in
               let repl = service ~config:(replica_config rdir) () in
               let s = sink repl in
               check Alcotest.int "caught up in one poll" 0
                 (ok_exn "poll" (Replication.poll_once ~host:"" ~port ~wait:0.2 s));
               check Alcotest.int "state streamed" 3 (page_rev repl);
               check Alcotest.int "epoch observed" 1 (Service.epoch repl);
               check Alcotest.bool "replica ready" true (Service.ready repl);
               edit prim 4;
               check Alcotest.int "incremental poll" 0
                 (ok_exn "poll" (Replication.poll_once ~host:"" ~port ~wait:0.2 s));
               check Alcotest.int "tail applied" 4 (page_rev repl);
               check Alcotest.bool "primary counted the stream" true
                 (contains
                    ~needle:"bxwiki_replication_streamed_records_total 4"
                    (metrics_page prim));
               Service.close repl)));
    tc "catch-up across a compaction bootstraps from the snapshot"
      (isolated (fun () ->
           with_primary
             ~config_of:(fun dir ->
               { (journal_config dir) with Service.compact_every = 2 })
             (fun prim port ->
               for i = 1 to 5 do
                 edit prim i
               done;
               (* Edits 1-4 were compacted into the snapshot; a replica
                  starting from seq 1 cannot be served from the log. *)
               let rdir = fresh_dir "bxsock_b" in
               let repl = service ~config:(replica_config rdir) () in
               let s = sink repl in
               ignore
                 (ok_exn "bootstrap poll"
                    (Replication.poll_once ~host:"" ~port ~wait:0.2 s));
               check Alcotest.int "snapshot installed" 4 (page_rev repl);
               check Alcotest.int "tail poll" 0
                 (ok_exn "poll" (Replication.poll_once ~host:"" ~port ~wait:0.2 s));
               check Alcotest.int "fully caught up" 5 (page_rev repl);
               check Alcotest.bool "bootstrap counted" true
                 (contains
                    ~needle:"bxwiki_replication_snapshot_bootstraps_total 1"
                    (metrics_page repl));
               check Alcotest.bool "lag settled to zero" true
                 (Service.replication_lag repl = 0.);
               check Alcotest.bool "ready" true (Service.ready repl);
               Service.close repl)));
    tc "the follow loop keeps a hot standby; promotion fences the wire"
      (isolated (fun () ->
           with_primary (fun prim port ->
               let rdir = fresh_dir "bxsock_f" in
               let repl = service ~config:(replica_config rdir) () in
               let follower =
                 Thread.create
                   (fun () ->
                     Service.follow repl ~host:"" ~port ~wait:0.2
                       ~min_sleep:0.02 ~max_sleep:0.1 ())
                   ()
               in
               check Alcotest.bool "replica syncs" true
                 (wait_for (fun () -> Service.replication_synced repl));
               edit prim 1;
               edit prim 2;
               check Alcotest.bool "edits replicate" true
                 (wait_for (fun () -> page_rev repl = 2));
               let epoch = ok_exn "promote" (Service.promote repl) in
               (* Promotion stops the follower on its own. *)
               Thread.join follower;
               check Alcotest.int "epoch bumped past the primary's" 2 epoch;
               (* A poll carrying the new epoch reaches the old primary
                  over the wire and fences it. *)
               (match
                  Replication.request ~host:"" ~port ~meth:"GET"
                    ~path:
                      (Printf.sprintf "/replication/stream?from=3&epoch=%d&wait=0"
                         epoch)
                    ~body:"" ()
                with
               | Ok (409, _) -> ()
               | Ok (st, _) -> Alcotest.failf "expected 409, got %d" st
               | Error e -> Alcotest.failf "request: %s" e);
               check Alcotest.bool "old primary fenced" true
                 (Service.fenced prim);
               check Alcotest.int "its writes now bounce" 503
                 (post prim page_path (edited_body (page_body prim) 9))
                   .Bx_repo.Webui.status;
               check Alcotest.int "the promoted node's land" 200
                 (post repl page_path (edited_body (page_body repl) 3))
                   .Bx_repo.Webui.status;
               Service.close repl)));
  ]

let () =
  Alcotest.run "bx_replication"
    [
      ("protocol", protocol_tests);
      ("journal", journal_tests);
      ("primary", primary_tests);
      ("replica", replica_tests);
      ("failover torture", torture_tests);
      ("sockets", socket_tests);
    ]
