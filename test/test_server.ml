(* The server subsystem (bx_server): the hardened HTTP parser, the
   write-ahead journal's durability story, the concurrent service, the
   metrics exposition, and the atomic Store snapshots they rely on. *)

open Bx_server

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let fresh_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let seed = Bx_catalogue.Catalogue.seed

let service ?(config = Service.default_config) () =
  match Service.create ~config ~seed () with
  | Ok t -> t
  | Error e -> Alcotest.failf "service create: %s" e

let journal_config dir =
  (* Automatic compaction off so the tests control exactly what is in
     the log versus the snapshot. *)
  { Service.default_config with journal_dir = Some dir; compact_every = 0 }

let get t path = Service.handle t ~meth:"GET" ~path ~body:""
let post t path body = Service.handle t ~meth:"POST" ~path ~body

let edit_page t path ~replace:(needle, replacement) =
  let page = get t (path ^ ".wiki") in
  check Alcotest.int ("GET " ^ path) 200 page.Bx_repo.Webui.status;
  let body =
    Str.global_replace (Str.regexp_string needle) replacement
      page.Bx_repo.Webui.body
  in
  let saved = post t path body in
  check Alcotest.int ("POST " ^ path) 200 saved.Bx_repo.Webui.status

let sorted_export t =
  Service.with_registry t (fun reg ->
      List.sort compare (Bx_repo.Registry.export reg))

(* ------------------------------------------------------------------ *)
(* Httpd: the hardened parser (Content-Length regression tests) *)

let parse ?max_body s = Httpd.read_request ?max_body (Httpd.reader_of_string s)

let bad_status = function
  | Error (`Bad e) -> Some e.Httpd.status
  | _ -> None

let httpd_tests =
  [
    tc "plain GET parses, keep-alive by default" (fun () ->
        match parse "GET /examples:composers HTTP/1.1\r\nHost: x\r\n\r\n" with
        | Ok r ->
            check Alcotest.string "meth" "GET" r.Httpd.meth;
            check Alcotest.string "path" "/examples:composers" r.Httpd.path;
            check Alcotest.bool "keep-alive" true r.Httpd.keep_alive
        | _ -> Alcotest.fail "expected Ok");
    tc "query string is stripped" (fun () ->
        match parse "GET /a?b=c HTTP/1.1\r\n\r\n" with
        | Ok r -> check Alcotest.string "path" "/a" r.Httpd.path
        | _ -> Alcotest.fail "expected Ok");
    tc "POST body is read to Content-Length exactly" (fun () ->
        match
          parse "POST /p HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloTRAILING"
        with
        | Ok r -> check Alcotest.string "body" "hello" r.Httpd.body
        | _ -> Alcotest.fail "expected Ok");
    (* The seed server fed any parsed value straight to
       really_input_string; negative and absurd lengths must be wire
       errors now. *)
    tc "negative Content-Length is a 400" (fun () ->
        check
          Alcotest.(option int)
          "status" (Some 400)
          (bad_status (parse "POST /p HTTP/1.1\r\nContent-Length: -5\r\n\r\n")));
    tc "unparseable Content-Length is a 400" (fun () ->
        check
          Alcotest.(option int)
          "status" (Some 400)
          (bad_status (parse "POST /p HTTP/1.1\r\nContent-Length: ten\r\n\r\n"));
        (* overflows int_of_string too *)
        check
          Alcotest.(option int)
          "status" (Some 400)
          (bad_status
             (parse
                "POST /p HTTP/1.1\r\nContent-Length: \
                 99999999999999999999999\r\n\r\n")));
    tc "absurd Content-Length is a 413" (fun () ->
        check
          Alcotest.(option int)
          "status" (Some 413)
          (bad_status
             (parse "POST /p HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"));
        check
          Alcotest.(option int)
          "status" (Some 413)
          (bad_status
             (parse ~max_body:10
                "POST /p HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello hello")));
    tc "truncated body is a 400, not a hang" (fun () ->
        check
          Alcotest.(option int)
          "status" (Some 400)
          (bad_status (parse "POST /p HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")));
    tc "Connection: close and HTTP/1.0 disable keep-alive" (fun () ->
        (match parse "GET / HTTP/1.1\r\nConnection: close\r\n\r\n" with
        | Ok r -> check Alcotest.bool "close" false r.Httpd.keep_alive
        | _ -> Alcotest.fail "expected Ok");
        match parse "GET / HTTP/1.0\r\n\r\n" with
        | Ok r -> check Alcotest.bool "1.0" false r.Httpd.keep_alive
        | _ -> Alcotest.fail "expected Ok");
    tc "malformed request line is a 400" (fun () ->
        check
          Alcotest.(option int)
          "status" (Some 400)
          (bad_status (parse "NONSENSE\r\n\r\n")));
    tc "empty stream is Eof (normal keep-alive end)" (fun () ->
        match parse "" with
        | Error `Eof -> ()
        | _ -> Alcotest.fail "expected Eof");
  ]

(* ------------------------------------------------------------------ *)
(* Journal: append/replay round trip, torn tails, checkpoints *)

let journal_tests =
  [
    tc "replay rebuilds a byte-identical registry export" (fun () ->
        let dir = fresh_dir "bxj-roundtrip" in
        let t = service ~config:(journal_config dir) () in
        edit_page t "/examples:celsius"
          ~replace:("temperature", "TEMPERATURE");
        edit_page t "/examples:composers" ~replace:("Composers", "COMPOSERS");
        edit_page t "/examples:celsius" ~replace:("Fahrenheit", "FAHRENHEIT");
        let before = sorted_export t in
        Service.close t;
        let t' = service ~config:(journal_config dir) () in
        check Alcotest.(pair int int) "replay stats" (3, 0)
          (Service.replay_stats t');
        check
          Alcotest.(list (pair string string))
          "byte-identical export" before (sorted_export t');
        Service.close t');
    tc "checkpoint empties the log and replay does not double-apply"
      (fun () ->
        let dir = fresh_dir "bxj-checkpoint" in
        let t = service ~config:(journal_config dir) () in
        edit_page t "/examples:celsius" ~replace:("temperature", "T1");
        (match Service.checkpoint t with
        | Ok files -> check Alcotest.bool "files written" true (files > 0)
        | Error e -> Alcotest.failf "checkpoint: %s" e);
        edit_page t "/examples:celsius" ~replace:("thermometer", "T2");
        let before = sorted_export t in
        Service.close t;
        let t' = service ~config:(journal_config dir) () in
        (* Only the post-checkpoint edit replays; the first lives in the
           snapshot (its sequence number is at or below the MANIFEST's). *)
        check Alcotest.(pair int int) "replay stats" (1, 0)
          (Service.replay_stats t');
        check
          Alcotest.(list (pair string string))
          "byte-identical export" before (sorted_export t');
        Service.close t');
    tc "a torn tail (kill -9 mid-append) is truncated, not fatal" (fun () ->
        let dir = fresh_dir "bxj-torn" in
        let t = service ~config:(journal_config dir) () in
        edit_page t "/examples:celsius" ~replace:("temperature", "KEPT");
        let before = sorted_export t in
        Service.close t;
        (* Simulate the partial record a crash mid-write leaves. *)
        let oc =
          open_out_gen [ Open_append ] 0o644 (Journal.log_file dir)
        in
        output_string oc "bxj1 2 17 40000 deadbeef";
        close_out oc;
        let t' = service ~config:(journal_config dir) () in
        check Alcotest.(pair int int) "only intact records replay" (1, 0)
          (Service.replay_stats t');
        check
          Alcotest.(list (pair string string))
          "state is the last intact state" before (sorted_export t');
        (* The torn bytes were truncated away: appending still works. *)
        edit_page t' "/examples:celsius" ~replace:("KEPT", "KEPT-AGAIN");
        let after = sorted_export t' in
        Service.close t';
        let t'' = service ~config:(journal_config dir) () in
        check Alcotest.(pair int int) "both edits replay" (2, 0)
          (Service.replay_stats t'');
        check
          Alcotest.(list (pair string string))
          "export after torn-tail recovery" after (sorted_export t'');
        Service.close t'');
    tc "record encoding survives newlines and wiki markup in bodies"
      (fun () ->
        let dir = fresh_dir "bxj-encoding" in
        (match Journal.open_ ~dir ~next_seq:1 with
        | Error e -> Alcotest.failf "open: %s" e
        | Ok j ->
            let body = "+ Title\n\n++ Overview\n\nbxj1 9 9 9 fake\nline\n" in
            (match Journal.append j ~path:"/p" ~body with
            | Ok seq -> check Alcotest.int "seq" 1 seq
            | Error e -> Alcotest.failf "append: %s" e);
            Journal.close j);
        match Journal.read ~dir with
        | Ok { entries = [ r ]; torn = false; _ } ->
            check Alcotest.string "path" "/p" r.Journal.path;
            check Alcotest.bool "body intact" true
              (contains ~needle:"bxj1 9 9 9 fake" r.Journal.body)
        | Ok _ -> Alcotest.fail "expected exactly one intact record"
        | Error e -> Alcotest.failf "read: %s" e);
  ]

(* ------------------------------------------------------------------ *)
(* Service: the 8-writer / 32-reader storm *)

let storm_tests =
  [
    tc "40 threads through the service: no drops, no corruption" (fun () ->
        let dir = fresh_dir "bxj-storm" in
        let t = service ~config:(journal_config dir) () in
        let ids = Service.with_registry t Bx_repo.Registry.ids in
        let paths =
          List.filteri (fun i _ -> i < 8) ids
          |> List.map (fun id -> "/" ^ Bx_repo.Identifier.wiki_path id)
        in
        check Alcotest.int "eight victim entries" 8 (List.length paths);
        let writes_each = 5 and reads_each = 20 in
        let failures = Atomic.make 0 in
        let note_failure () = Atomic.incr failures in
        let writer path =
          Thread.create
            (fun () ->
              for _ = 1 to writes_each do
                let page = get t (path ^ ".wiki") in
                if page.Bx_repo.Webui.status <> 200 then note_failure ()
                else
                  let saved = post t path page.Bx_repo.Webui.body in
                  if saved.Bx_repo.Webui.status <> 200 then note_failure ()
              done)
            ()
        in
        let reader i =
          Thread.create
            (fun () ->
              let path = List.nth paths (i mod 8) in
              for j = 1 to reads_each do
                let p =
                  match j mod 3 with
                  | 0 -> "/"
                  | 1 -> path
                  | _ -> path ^ ".json"
                in
                let r = get t p in
                if r.Bx_repo.Webui.status <> 200 then note_failure ()
                else if
                  String.length r.Bx_repo.Webui.body = 0
                  (* a torn read would surface as an empty or truncated
                     render *)
                then note_failure ()
              done)
            ()
        in
        let writers = List.map writer paths in
        let readers = List.init 32 reader in
        List.iter Thread.join (writers @ readers);
        check Alcotest.int "no failed requests" 0 (Atomic.get failures);
        (* Every write landed: each victim entry gained exactly
           writes_each versions (writes to one entry serialise under the
           write lock, each bumping the latest version). *)
        Service.with_registry t (fun reg ->
            List.iteri
              (fun i id ->
                if i < 8 then
                  match Bx_repo.Registry.versions reg id with
                  | Ok versions ->
                      check Alcotest.int
                        ("versions of " ^ Bx_repo.Identifier.to_string id)
                        (1 + writes_each) (List.length versions)
                  | Error e ->
                      Alcotest.failf "versions: %s"
                        (Bx_repo.Registry.error_message e))
              ids);
        (* The metrics agree with what we issued: every GET and POST was
           observed exactly once. *)
        let issued =
          (8 * writes_each * 2) (* writer GET + POST *)
          + (32 * reads_each)
        in
        check Alcotest.int "metrics request count" issued
          (Metrics.requests_total (Service.metrics t));
        check Alcotest.int "no errors" 0
          (Metrics.errors_total (Service.metrics t));
        (* And the whole storm is durable. *)
        let before = sorted_export t in
        Service.close t;
        let t' = service ~config:(journal_config dir) () in
        check Alcotest.(pair int int) "all 40 writes replay" (40, 0)
          (Service.replay_stats t');
        check
          Alcotest.(list (pair string string))
          "storm is durable" before (sorted_export t');
        Service.close t');
  ]

(* ------------------------------------------------------------------ *)
(* Metrics and the response cache *)

let metrics_tests =
  [
    tc "/metrics exposes counters, histograms and cache stats" (fun () ->
        let t = service () in
        ignore (get t "/");
        ignore (get t "/examples:composers");
        ignore (get t "/examples:composers");
        ignore (get t "/nonesuch");
        let m = get t "/metrics" in
        check Alcotest.int "metrics is 200" 200 m.Bx_repo.Webui.status;
        check Alcotest.string "content type"
          "text/plain; version=0.0.4; charset=utf-8"
          m.Bx_repo.Webui.content_type;
        let body = m.Bx_repo.Webui.body in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true (contains ~needle body))
          [
            "# TYPE bxwiki_requests_total counter";
            "bxwiki_requests_total{route=\"index\",method=\"GET\",status=\"200\"} 1";
            "bxwiki_requests_total{route=\"entry\",method=\"GET\",status=\"200\"} 2";
            "bxwiki_requests_total{route=\"entry\",method=\"GET\",status=\"404\"} 1";
            "bxwiki_http_errors_total{route=\"entry\",reason=\"status_404\"} 1";
            "# TYPE bxwiki_request_duration_seconds histogram";
            "bxwiki_request_duration_seconds_bucket{route=\"entry\",le=\"+Inf\"} 3";
            "bxwiki_request_duration_seconds_count{route=\"index\"} 1";
            "bxwiki_cache_hits_total 1";
          ]);
    tc "the response cache hits on repeat, invalidates on write" (fun () ->
        let t = service () in
        ignore (get t "/examples:celsius");
        ignore (get t "/examples:celsius");
        let hits, misses = Metrics.cache_counts (Service.metrics t) in
        check Alcotest.int "one hit" 1 hits;
        check Alcotest.int "one miss" 1 misses;
        let gen_before = Service.generation t in
        edit_page t "/examples:celsius" ~replace:("temperature", "heat");
        check Alcotest.bool "write bumps generation" true
          (Service.generation t > gen_before);
        let r = get t "/examples:celsius" in
        (* Served fresh (a miss), and the fresh render shows the edit. *)
        check Alcotest.bool "fresh render after write" true
          (contains ~needle:"heat" r.Bx_repo.Webui.body));
    tc "405 for unsupported methods, counted as an error" (fun () ->
        let t = service () in
        let r = Service.handle t ~meth:"DELETE" ~path:"/" ~body:"" in
        check Alcotest.int "405" 405 r.Bx_repo.Webui.status;
        check Alcotest.int "error counted" 1
          (Metrics.errors_total (Service.metrics t)));
  ]

(* ------------------------------------------------------------------ *)
(* Store: atomic snapshots *)

let store_tests =
  [
    tc "save leaves no temp files behind" (fun () ->
        let dir = fresh_dir "bxstore-atomic" in
        (match Bx_repo.Store.save ~dir (seed ()) with
        | Ok n -> check Alcotest.bool "files written" true (n > 0)
        | Error e -> Alcotest.failf "save: %s" e);
        let leftovers =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".tmp")
        in
        check Alcotest.(list string) "no .tmp leftovers" [] leftovers);
    tc "a failing write surfaces the path in the error" (fun () ->
        let dir = fresh_dir "bxstore-fail" in
        (* Occupy one of the target file names with a directory: the
           rename over it must fail, and the error must say where. *)
        let victim = Bx_repo.Store.page_filename "examples:celsius/0.1" in
        Unix.mkdir (Filename.concat dir victim) 0o755;
        match Bx_repo.Store.save ~dir (seed ()) with
        | Ok _ -> Alcotest.fail "expected save to fail"
        | Error e ->
            check Alcotest.bool
              (Printf.sprintf "error %S names %s" e victim)
              true
              (contains ~needle:victim e));
  ]

(* ------------------------------------------------------------------ *)
(* The lens service: POST /slens/<name>/<op> *)

let lens_tests =
  let module CS = Bx_catalogue.Composers_string in
  let rs = "\x1e" and us = "\x1f" in
  let lens_service () =
    match
      Service.create
        ~lenses:[ ("composers", CS.lens) ]
        ~seed ()
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  [
    tc "get and put run the lens over the body" (fun () ->
        let t = lens_service () in
        let src = CS.synthetic_source 3 in
        let r = post t "/slens/composers/get" src in
        check Alcotest.int "get status" 200 r.Bx_repo.Webui.status;
        check Alcotest.string "get body" (CS.lens.Bx_strlens.Slens.get src)
          r.Bx_repo.Webui.body;
        let view = CS.synthetic_view 3 in
        let r = post t "/slens/composers/put" (view ^ rs ^ src) in
        check Alcotest.int "put status" 200 r.Bx_repo.Webui.status;
        check Alcotest.string "put body"
          (CS.lens.Bx_strlens.Slens.put view src)
          r.Bx_repo.Webui.body);
    tc "batch ops fan over RS-separated documents" (fun () ->
        let t = lens_service () in
        let docs = List.init 4 (fun i -> CS.synthetic_source (i + 1)) in
        let r =
          post t "/slens/composers/get_batch" (String.concat rs docs)
        in
        check Alcotest.int "get_batch status" 200 r.Bx_repo.Webui.status;
        check Alcotest.string "get_batch body"
          (String.concat rs (List.map CS.lens.Bx_strlens.Slens.get docs))
          r.Bx_repo.Webui.body;
        let pairs =
          List.init 3 (fun i ->
              (CS.synthetic_view (i + 1), CS.synthetic_source (i + 1)))
        in
        let body =
          String.concat rs (List.map (fun (v, s) -> v ^ us ^ s) pairs)
        in
        let r = post t "/slens/composers/put_batch" body in
        check Alcotest.int "put_batch status" 200 r.Bx_repo.Webui.status;
        check Alcotest.string "put_batch body"
          (String.concat rs
             (List.map
                (fun (v, s) -> CS.lens.Bx_strlens.Slens.put v s)
                pairs))
          r.Bx_repo.Webui.body);
    tc "unknown lenses, ops and malformed bodies are client errors"
      (fun () ->
        let t = lens_service () in
        let r = post t "/slens/nonesuch/get" "" in
        check Alcotest.int "unknown lens" 404 r.Bx_repo.Webui.status;
        let r = post t "/slens/composers/frobnicate" "" in
        check Alcotest.int "unknown op" 404 r.Bx_repo.Webui.status;
        let r = post t "/slens/composers/put" "no separator here" in
        check Alcotest.int "malformed put" 400 r.Bx_repo.Webui.status);
    tc "ill-typed documents are 422, not 500" (fun () ->
        let t = lens_service () in
        let r = post t "/slens/composers/get" "not a composers file at all" in
        check Alcotest.int "422" 422 r.Bx_repo.Webui.status;
        check Alcotest.bool "message mentions the type" true
          (String.length r.Bx_repo.Webui.body > 0));
    tc "lens traffic and engine counters reach /metrics" (fun () ->
        let t = lens_service () in
        let src = CS.synthetic_source 2 in
        ignore (post t "/slens/composers/get" src);
        ignore (post t "/slens/composers/get" src);
        let m = get t "/metrics" in
        let body = m.Bx_repo.Webui.body in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true (contains ~needle body))
          [
            "# TYPE bxwiki_lens_requests_total counter";
            "bxwiki_lens_requests_total{lens=\"composers\",op=\"get\"} 2";
            "bxwiki_lens_documents_total{lens=\"composers\",op=\"get\"} 2";
            "bxwiki_slens_bytes_processed_total";
            "bxwiki_slens_splits_total";
            "bxwiki_slens_ctx_reuse_total";
            "bxwiki_slens_ctx_fresh_total";
            "bxwiki_requests_total{route=\"slens\",method=\"POST\",status=\"200\"} 2";
          ]);
  ]

let () =
  Alcotest.run "bx_server"
    [
      ("httpd", httpd_tests);
      ("journal", journal_tests);
      ("storm", storm_tests);
      ("metrics", metrics_tests);
      ("store", store_tests);
      ("lens-service", lens_tests);
    ]
