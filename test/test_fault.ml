(* The robustness story: the failpoint subsystem itself, the CRC-framed
   v2 journal (torn tails, bit flips, v1 migration), crash-recovery
   torture at every journal failpoint seam (fork + simulated kill -9 +
   restart), QCheck random corruption of the log tail, and the service's
   overload behaviour — health/readiness probes, the failpoint admin
   route, and load shedding with 503 + Retry-After. *)

open Bx_server
module Fault = Bx_fault.Fault

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let hl = String.length hay and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let fresh_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let seed = Bx_catalogue.Catalogue.seed

let service ?(config = Service.default_config) () =
  match Service.create ~config ~seed () with
  | Ok t -> t
  | Error e -> Alcotest.failf "service create: %s" e

let journal_config dir =
  { Service.default_config with journal_dir = Some dir; compact_every = 0 }

let get t path = Service.handle t ~meth:"GET" ~path ~body:""
let post t path body = Service.handle t ~meth:"POST" ~path ~body

(* Every test leaves the failpoint table clean — the whole binary shares
   one table, and a leaked rule would poison unrelated tests. *)
let isolated f () =
  Fault.clear ();
  Fun.protect ~finally:Fault.clear f

(* ------------------------------------------------------------------ *)
(* The failpoint subsystem *)

let roundtrip spec =
  match Fault.configure spec with
  | Ok () -> Fault.describe ()
  | Error e -> Alcotest.failf "configure %S: %s" spec e

let fault_tests =
  [
    tc "disabled is the default; point is a no-op"
      (isolated (fun () ->
           check Alcotest.bool "enabled" false (Fault.enabled ());
           Fault.point "nowhere.in.particular"));
    tc "action grammar parses and canonicalises"
      (isolated (fun () ->
           check Alcotest.string "spec"
             "a=crash\nb=delay(25)\nc=error\nd=error(disk full)\n\
              e=one_in(3,error)\nf=times(2,delay(5))"
             (roundtrip
                "a=crash; b=delay(25);c=error;d=error(disk full);\
                 e=one_in(3,error); f=times(2,delay(5))");
           check Alcotest.bool "armed" true (Fault.enabled ());
           check Alcotest.string "empty spec clears" "" (roundtrip "  ");
           check Alcotest.bool "disarmed" false (Fault.enabled ())));
    tc "malformed specs are rejected and leave rules untouched"
      (isolated (fun () ->
           ignore (roundtrip "keep=error");
           List.iter
             (fun bad ->
               match Fault.configure bad with
               | Ok () -> Alcotest.failf "accepted %S" bad
               | Error _ -> ())
             [ "nonsense"; "=error"; "a=explode"; "a=one_in(0,error)";
               "a=delay(x)"; "a=times(2)" ];
           check Alcotest.string "previous rules intact" "keep=error"
             (Fault.describe ())));
    tc "error raises Injected with the site name"
      (isolated (fun () ->
           Fault.set "s" (Fault.Error "boom");
           (match Fault.point "s" with
           | () -> Alcotest.fail "expected Injected"
           | exception Fault.Injected m ->
               check Alcotest.string "message" "s: boom" m);
           Fault.point "someone.else" (* other sites unaffected *)));
    tc "one_in fires deterministically on every nth hit"
      (isolated (fun () ->
           Fault.set "s" (Fault.One_in (3, Fault.Error "injected"));
           let fired = ref 0 in
           for _ = 1 to 9 do
             try Fault.point "s" with Fault.Injected _ -> incr fired
           done;
           check Alcotest.int "fired 3 of 9" 3 !fired;
           check
             Alcotest.(list (triple string int int))
             "stats" [ ("s", 9, 3) ] (Fault.stats ())));
    tc "times fires n times then heals — the retry-demo shape"
      (isolated (fun () ->
           Fault.set "s" (Fault.Times (2, Fault.Error "injected"));
           let outcomes =
             List.init 5 (fun _ ->
                 match Fault.point "s" with
                 | () -> "ok"
                 | exception Fault.Injected _ -> "fail")
           in
           check
             Alcotest.(list string)
             "first two fail" [ "fail"; "fail"; "ok"; "ok"; "ok" ] outcomes));
    tc "delay sleeps roughly the configured time"
      (isolated (fun () ->
           Fault.set "s" (Fault.Delay 0.05);
           let t0 = Unix.gettimeofday () in
           Fault.point "s";
           check Alcotest.bool "slept >= 40ms" true
             (Unix.gettimeofday () -. t0 >= 0.04)));
    tc "set Off removes a single site"
      (isolated (fun () ->
           Fault.set "a" (Fault.Error "injected");
           Fault.set "b" (Fault.Error "injected");
           Fault.set "a" Fault.Off;
           check Alcotest.string "only b" "b=error" (Fault.describe ());
           Fault.point "a"));
  ]

(* ------------------------------------------------------------------ *)
(* Journal v2 framing, recovery and v1 migration *)

let with_log dir f =
  match Journal.open_ ~dir ~next_seq:1 with
  | Error e -> Alcotest.failf "journal open: %s" e
  | Ok j -> Fun.protect ~finally:(fun () -> Journal.close j) (fun () -> f j)

let append_exn j ~path ~body =
  match Journal.append j ~path ~body with
  | Ok seq -> seq
  | Error e -> Alcotest.failf "append: %s" e

let read_exn dir =
  match Journal.read ~dir with
  | Ok r -> r
  | Error e -> Alcotest.failf "read: %s" e

let log_size dir = (Unix.stat (Journal.log_file dir)).Unix.st_size

let entry = Alcotest.testable
    (fun ppf { Journal.seq; path; body } ->
      Fmt.pf ppf "%d:%s:%S" seq path body)
    ( = )

let clobber_byte file pos byte =
  let fd = Unix.openfile file [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 byte) 0 1);
  Unix.close fd

let journal_tests =
  [
    tc "crc32 matches the IEEE check value" (fun () ->
        check Alcotest.int "empty" 0 (Journal.crc32 "");
        check Alcotest.int "123456789" 0xCBF43926 (Journal.crc32 "123456789"));
    tc "fresh log carries the v2 magic and round-trips records" (fun () ->
        let dir = fresh_dir "bxj2" in
        with_log dir (fun j ->
            check Alcotest.int "seq 1" 1 (append_exn j ~path:"/a" ~body:"one");
            check Alcotest.int "seq 2" 2
              (append_exn j ~path:"/b" ~body:"two\nlines"));
        let r = read_exn dir in
        check Alcotest.int "version" 2 r.Journal.version;
        check Alcotest.bool "not torn" false r.Journal.torn;
        check Alcotest.int "no crc errors" 0 r.Journal.crc_errors;
        check (Alcotest.list entry) "entries"
          [
            { Journal.seq = 1; path = "/a"; body = "one" };
            { Journal.seq = 2; path = "/b"; body = "two\nlines" };
          ]
          r.Journal.entries);
    tc "a torn tail is reported, then truncated away by open_" (fun () ->
        let dir = fresh_dir "bxtorn" in
        with_log dir (fun j -> ignore (append_exn j ~path:"/a" ~body:"one"));
        let intact = log_size dir in
        (* Half a record: a plausible length prefix and nothing else —
           what a kill -9 mid-write leaves behind. *)
        let fd =
          Unix.openfile (Journal.log_file dir) [ Unix.O_WRONLY; Unix.O_APPEND ] 0
        in
        ignore (Unix.write_substring fd "\x00\x00\x00\x30partial" 0 11);
        Unix.close fd;
        let r = read_exn dir in
        check Alcotest.bool "torn" true r.Journal.torn;
        check Alcotest.int "crc errors" 0 r.Journal.crc_errors;
        check Alcotest.int "one intact entry" 1 (List.length r.Journal.entries);
        check Alcotest.int "valid prefix" intact r.Journal.valid_bytes;
        with_log dir (fun _ -> ());
        check Alcotest.int "open_ truncated the tail" intact (log_size dir);
        check Alcotest.bool "clean after truncation" false
          (read_exn dir).Journal.torn);
    tc "a bit flip inside a record is a crc error, not silent garbage"
      (fun () ->
        let dir = fresh_dir "bxflip" in
        with_log dir (fun j ->
            ignore (append_exn j ~path:"/a" ~body:"one");
            ignore (append_exn j ~path:"/b" ~body:"two"));
        let size = log_size dir in
        (* Flip a byte in the last record's payload. *)
        clobber_byte (Journal.log_file dir) (size - 1) '\xff';
        let r = read_exn dir in
        check Alcotest.int "crc errors" 1 r.Journal.crc_errors;
        check (Alcotest.list entry) "prefix survives"
          [ { Journal.seq = 1; path = "/a"; body = "one" } ]
          r.Journal.entries;
        (* open_ truncates the corrupt record and appending resumes. *)
        with_log dir (fun j ->
            ignore (append_exn j ~path:"/c" ~body:"three"));
        let r = read_exn dir in
        check Alcotest.int "healed" 0 r.Journal.crc_errors;
        check
          Alcotest.(list string)
          "paths" [ "/a"; "/c" ]
          (List.map (fun e -> e.Journal.path) r.Journal.entries));
    tc "a v1 log is read and migrated to v2 in place" (fun () ->
        let dir = fresh_dir "bxv1" in
        let oc = open_out_bin (Journal.log_file dir) in
        output_string oc (Journal.encode_v1 ~seq:1 ~path:"/a" ~body:"one");
        output_string oc (Journal.encode_v1 ~seq:2 ~path:"/b" ~body:"two");
        close_out oc;
        check Alcotest.int "reads as v1" 1 (read_exn dir).Journal.version;
        with_log dir (fun j ->
            (* open_ migrated before appending, so this append is v2. *)
            ignore (append_exn j ~path:"/c" ~body:"three"));
        let r = read_exn dir in
        check Alcotest.int "now v2" 2 r.Journal.version;
        check
          Alcotest.(list string)
          "all three records" [ "/a"; "/b"; "/c" ]
          (List.map (fun e -> e.Journal.path) r.Journal.entries);
        let ic = open_in_bin (Journal.log_file dir) in
        let head = really_input_string ic (String.length Journal.magic) in
        close_in ic;
        check Alcotest.string "magic on disk" Journal.magic head);
    tc "an empty log file is adopted as a fresh v2 segment" (fun () ->
        (* A crash can leave journal.log created but zero bytes long —
           before even the magic was written.  That is a fresh log, not
           a corrupt one. *)
        let dir = fresh_dir "bxempty" in
        close_out (open_out_bin (Journal.log_file dir));
        check Alcotest.int "zero bytes" 0 (log_size dir);
        let r = read_exn dir in
        check Alcotest.int "reads as v2" 2 r.Journal.version;
        check Alcotest.bool "not torn" false r.Journal.torn;
        with_log dir (fun j -> ignore (append_exn j ~path:"/a" ~body:"one"));
        let r = read_exn dir in
        check Alcotest.int "header stamped, record landed" 1
          (List.length r.Journal.entries);
        let ic = open_in_bin (Journal.log_file dir) in
        let head = really_input_string ic (String.length Journal.magic) in
        close_in ic;
        check Alcotest.string "magic on disk" Journal.magic head);
    tc "a v1 log ending exactly on a record boundary migrates whole"
      (fun () ->
        let dir = fresh_dir "bxv1edge" in
        let oc = open_out_bin (Journal.log_file dir) in
        output_string oc (Journal.encode_v1 ~seq:1 ~path:"/a" ~body:"one");
        close_out oc;
        let r = read_exn dir in
        check Alcotest.int "v1" 1 r.Journal.version;
        check Alcotest.bool "clean boundary is not torn" false r.Journal.torn;
        (* Open purely for the side effect: migrate, append nothing. *)
        with_log dir (fun _ -> ());
        let r = read_exn dir in
        check Alcotest.int "v2 after open" 2 r.Journal.version;
        check (Alcotest.list entry) "the record survived intact"
          [ { Journal.seq = 1; path = "/a"; body = "one" } ]
          r.Journal.entries);
    tc "reopening a migrated log is idempotent" (fun () ->
        let dir = fresh_dir "bxv1twice" in
        let oc = open_out_bin (Journal.log_file dir) in
        output_string oc (Journal.encode_v1 ~seq:1 ~path:"/a" ~body:"one");
        output_string oc (Journal.encode_v1 ~seq:2 ~path:"/b" ~body:"two");
        close_out oc;
        with_log dir (fun _ -> ());
        let migrated = log_size dir in
        (* The second open must neither re-migrate nor truncate. *)
        with_log dir (fun _ -> ());
        check Alcotest.int "size unchanged" migrated (log_size dir);
        let r = read_exn dir in
        check Alcotest.int "still v2" 2 r.Journal.version;
        check
          Alcotest.(list string)
          "both records, once each" [ "/a"; "/b" ]
          (List.map (fun e -> e.Journal.path) r.Journal.entries));
    tc "checkpoint resets the log to a bare segment header" (fun () ->
        let dir = fresh_dir "bxck" in
        let t = service ~config:(journal_config dir) () in
        let page = get t "/examples:celsius.wiki" in
        check Alcotest.int "GET" 200 page.Bx_repo.Webui.status;
        let saved = post t "/examples:celsius" page.Bx_repo.Webui.body in
        check Alcotest.int "POST" 200 saved.Bx_repo.Webui.status;
        (match Service.checkpoint t with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "checkpoint: %s" e);
        check Alcotest.int "log = magic only" (String.length Journal.magic)
          (log_size dir);
        Service.close t);
  ]

(* ------------------------------------------------------------------ *)
(* Crash-recovery torture: fork a child that arms a crash failpoint at
   one journal seam, edits until the simulated kill -9 fires, and
   reports each acknowledged edit over a pipe.  The parent then reopens
   the journal directory and checks the recovered store: every acked
   edit survived, plus at most the one in-flight edit that had reached
   the log but whose ack never left (a crash after the write/fsync). *)

let page_path = "/examples:celsius"
let rev_re = Str.regexp "temperature[0-9]*"

let page_rev t =
  (* The edit counter the torture child embeds in the page text:
     "temperature<k>" after k edits, bare "temperature" before any. *)
  let body = (get t (page_path ^ ".wiki")).Bx_repo.Webui.body in
  ignore (Str.search_forward rev_re body 0);
  let m = Str.matched_string body in
  let digits = String.sub m 11 (String.length m - 11) in
  if digits = "" then 0 else int_of_string digits

let torture_child ~dir ~ack_fd ~run =
  (* In the forked child: no alcotest, no printing, exit only via the
     crash failpoint (or _exit 2 if it never fired — the parent treats
     that as a test failure). *)
  try
    let t = service ~config:(journal_config dir) () in
    let current = ref (get t (page_path ^ ".wiki")).Bx_repo.Webui.body in
    run t current ack_fd;
    Unix._exit 2
  with _ -> Unix._exit 3

let edit_once t current i ack_fd =
  let body =
    Str.global_replace rev_re ("temperature" ^ string_of_int i) !current
  in
  let resp = post t page_path body in
  if resp.Bx_repo.Webui.status = 200 then begin
    current := body;
    ignore (Unix.write ack_fd (Bytes.make 1 'a') 0 1)
  end

let run_torture ~run =
  let dir = fresh_dir "bxcrash" in
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      torture_child ~dir ~ack_fd:w ~run
  | pid ->
      Unix.close w;
      let acked = ref 0 in
      let buf = Bytes.create 64 in
      let rec drain () =
        match Unix.read r buf 0 64 with
        | 0 -> ()
        | n ->
            acked := !acked + n;
            drain ()
      in
      drain ();
      Unix.close r;
      let _, status = Unix.waitpid [] pid in
      check
        (Alcotest.testable
           (fun ppf -> function
             | Unix.WEXITED n -> Fmt.pf ppf "exit %d" n
             | Unix.WSIGNALED n -> Fmt.pf ppf "signal %d" n
             | Unix.WSTOPPED n -> Fmt.pf ppf "stopped %d" n)
           ( = ))
        "child died via the crash failpoint" (Unix.WEXITED 137) status;
      (dir, !acked)

let recover dir =
  let t = service ~config:(journal_config dir) () in
  let applied, failed = Service.replay_stats t in
  check Alcotest.int "no failed replays" 0 failed;
  (t, applied)

let append_seam_case site =
  tc ("crash at " ^ site ^ " loses at most the in-flight edit")
    (isolated (fun () ->
         let crash_at = 3 in
         let dir, acked =
           run_torture ~run:(fun t current ack_fd ->
               for i = 1 to 10 do
                 if i = crash_at then Fault.set site Fault.Crash;
                 edit_once t current i ack_fd
               done)
         in
         Fault.clear ();
         let t, applied = recover dir in
         check Alcotest.bool
           (Printf.sprintf "recovered %d of %d acked (+<=1)" applied acked)
           true
           (applied = acked || applied = acked + 1);
         check Alcotest.int "page text matches the recovered edit count"
           applied (page_rev t);
         Service.close t))

let checkpoint_seam_case site =
  tc ("crash at " ^ site ^ " loses nothing already acked")
    (isolated (fun () ->
         let edits = 3 in
         let dir, acked =
           run_torture ~run:(fun t current ack_fd ->
               for i = 1 to edits do
                 edit_once t current i ack_fd
               done;
               Fault.set site Fault.Crash;
               ignore (Service.checkpoint t))
         in
         Fault.clear ();
         check Alcotest.int "all edits acked before the crash" edits acked;
         let t, _applied = recover dir in
         (* Whatever mix of snapshot and log survived, replay must
            reconstruct exactly the acked state — and never double-apply
            an edit that made it into both. *)
         check Alcotest.int "recovered state = last acked state" edits
           (page_rev t);
         Service.close t))

let torture_tests =
  List.map append_seam_case
    [
      "journal.append.pre_write";
      "journal.append.pre_fsync";
      "journal.append.post_fsync";
    ]
  @ List.map checkpoint_seam_case
      [
        "journal.checkpoint.pre_save";
        "journal.checkpoint.pre_manifest";
        "journal.checkpoint.pre_swap";
        "journal.checkpoint.pre_truncate";
      ]

(* ------------------------------------------------------------------ *)
(* QCheck: a random byte clobbered anywhere after the segment header
   never yields garbage entries — recovery returns a strict prefix of
   what was written, and any shortfall is flagged torn or crc-failed. *)

let prefix_of ~full prefix =
  List.length prefix <= List.length full
  && List.for_all2 ( = ) prefix
       (List.filteri (fun i _ -> i < List.length prefix) full)

let corruption_gen =
  QCheck2.Gen.(triple (1 -- 6) (0 -- 10_000) (0 -- 255))

let corruption_test =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"random tail corruption recovers a prefix"
       corruption_gen (fun (n, pos_seed, byte) ->
         let dir = fresh_dir "bxq" in
         let entries =
           List.init n (fun i ->
               {
                 Journal.seq = i + 1;
                 path = Printf.sprintf "/p%d" i;
                 body = String.concat "\n" (List.init (i + 1) string_of_int);
               })
         in
         let oc = open_out_bin (Journal.log_file dir) in
         output_string oc Journal.magic;
         List.iter
           (fun { Journal.seq; path; body } ->
             output_string oc (Journal.encode ~seq ~path ~body))
           entries;
         close_out oc;
         let size = log_size dir in
         let header = String.length Journal.magic in
         let pos = header + (pos_seed mod (size - header)) in
         clobber_byte (Journal.log_file dir) pos (Char.chr byte);
         let r = read_exn dir in
         let ok =
           prefix_of ~full:entries r.Journal.entries
           && (List.length r.Journal.entries = n
              || r.Journal.torn || r.Journal.crc_errors > 0)
         in
         Sys.remove (Journal.log_file dir);
         Unix.rmdir dir;
         ok))

(* ------------------------------------------------------------------ *)
(* Service-level fault handling: health probes, the admin route, seam
   injection surfacing as 503/500, compaction failure accounting. *)

let service_tests =
  [
    tc "healthz is always 200; readyz follows the journal's health"
      (isolated (fun () ->
           let dir = fresh_dir "bxready" in
           let t = service ~config:(journal_config dir) () in
           check Alcotest.int "healthz" 200 (get t "/healthz").Bx_repo.Webui.status;
           check Alcotest.string "healthz body" "ok\n"
             (get t "/healthz").Bx_repo.Webui.body;
           check Alcotest.int "readyz" 200 (get t "/readyz").Bx_repo.Webui.status;
           check Alcotest.bool "ready" true (Service.ready t);
           Fault.set "journal.append.pre_write" (Fault.Error "disk gone");
           let page = (get t (page_path ^ ".wiki")).Bx_repo.Webui.body in
           check Alcotest.int "append failure surfaces as 500" 500
             (post t page_path page).Bx_repo.Webui.status;
           let ready = get t "/readyz" in
           check Alcotest.int "readyz flips" 503 ready.Bx_repo.Webui.status;
           check Alcotest.bool "names the journal" true
             (contains ~needle:"journal_unwritable" ready.Bx_repo.Webui.body);
           Fault.clear ();
           check Alcotest.int "healed append" 200
             (post t page_path page).Bx_repo.Webui.status;
           check Alcotest.int "ready again" 200
             (get t "/readyz").Bx_repo.Webui.status;
           Service.close t));
    tc "injected lock faults surface as 503 and heal"
      (isolated (fun () ->
           let t = service () in
           Fault.set "service.lock.read" (Fault.Times (1, Fault.Error "injected"));
           let r = get t "/examples:celsius" in
           check Alcotest.int "injected GET" 503 r.Bx_repo.Webui.status;
           check Alcotest.bool "names the site" true
             (contains ~needle:"service.lock.read" r.Bx_repo.Webui.body);
           check Alcotest.int "healed" 200
             (get t "/examples:celsius").Bx_repo.Webui.status;
           Fault.set "service.lock.write" (Fault.Times (1, Fault.Error "injected"));
           let page = (get t (page_path ^ ".wiki")).Bx_repo.Webui.body in
           check Alcotest.int "injected POST" 503
             (post t page_path page).Bx_repo.Webui.status;
           check Alcotest.int "healed POST" 200
             (post t page_path page).Bx_repo.Webui.status));
    tc "slens batch workers propagate injection without leaking domains"
      (isolated (fun () ->
           let lens = Bx_catalogue.Composers_string.lens in
           let sources =
             List.init 6 Bx_catalogue.Composers_string.synthetic_source
           in
           Fault.set "slens.batch.worker" (Fault.Times (1, Fault.Error "injected"));
           (match Bx_strlens.Slens.get_all ~workers:3 lens sources with
           | _ -> Alcotest.fail "expected Injected"
           | exception Fault.Injected _ -> ());
           (* The table healed; the same fan-out now succeeds, which also
              means every helper domain from the failed run was joined. *)
           check Alcotest.int "batch answers after healing" 6
             (List.length (Bx_strlens.Slens.get_all ~workers:3 lens sources))));
    tc "failpoint admin route configures, reports and clears"
      (isolated (fun () ->
           let config =
             { Service.default_config with failpoints_admin = true }
           in
           let t = service ~config () in
           let put body =
             Service.handle t ~meth:"PUT" ~path:"/debug/failpoints" ~body
           in
           check Alcotest.int "GET empty" 200
             (get t "/debug/failpoints").Bx_repo.Webui.status;
           let r = put "service.lock.read=times(1,error)" in
           check Alcotest.int "PUT" 200 r.Bx_repo.Webui.status;
           check Alcotest.bool "describes the rule" true
             (contains ~needle:"service.lock.read=times(1,error)"
                r.Bx_repo.Webui.body);
           check Alcotest.int "rule is live" 503
             (get t "/examples:celsius").Bx_repo.Webui.status;
           check Alcotest.int "bad spec" 400 (put "garbage").Bx_repo.Webui.status;
           check Alcotest.bool "bad spec left rules alone" true
             (Fault.enabled ());
           check Alcotest.int "empty body clears" 200 (put "").Bx_repo.Webui.status;
           check Alcotest.bool "cleared" false (Fault.enabled ())));
    tc "admin route is 404 unless enabled"
      (isolated (fun () ->
           let config =
             { Service.default_config with failpoints_admin = false }
           in
           let t = service ~config () in
           check Alcotest.int "GET" 404
             (get t "/debug/failpoints").Bx_repo.Webui.status));
    tc "failed compaction is counted and the service keeps serving"
      (isolated (fun () ->
           let dir = fresh_dir "bxcompact" in
           let t = service ~config:(journal_config dir) () in
           let page = (get t (page_path ^ ".wiki")).Bx_repo.Webui.body in
           check Alcotest.int "edit" 200 (post t page_path page).Bx_repo.Webui.status;
           Fault.set "journal.checkpoint.pre_save" (Fault.Error "no space");
           (match Service.checkpoint t with
           | Ok _ -> Alcotest.fail "checkpoint should have failed"
           | Error _ -> ());
           Fault.clear ();
           let m = Service.metrics_text t in
           check Alcotest.bool "failure counted" true
             (contains
                ~needle:"bxwiki_journal_compactions_total{result=\"error\"} 1" m);
           check Alcotest.bool "gauge shows last failure" true
             (contains ~needle:"bxwiki_journal_last_compaction_ok 0" m);
           check Alcotest.int "still serving" 200
             (get t "/examples:celsius").Bx_repo.Webui.status;
           (match Service.checkpoint t with
           | Ok _ -> ()
           | Error e -> Alcotest.failf "healed checkpoint: %s" e);
           check Alcotest.bool "gauge recovers" true
             (contains
                ~needle:"bxwiki_journal_last_compaction_ok 1"
                (Service.metrics_text t));
           Service.close t));
    tc "torn-tail recovery is surfaced in /metrics"
      (isolated (fun () ->
           let dir = fresh_dir "bxtornm" in
           with_log dir (fun j -> ignore (append_exn j ~path:"/a" ~body:"x"));
           let fd =
             Unix.openfile (Journal.log_file dir)
               [ Unix.O_WRONLY; Unix.O_APPEND ]
               0
           in
           ignore (Unix.write_substring fd "\x00\x00\x01\x00oops" 0 8);
           Unix.close fd;
           let t = service ~config:(journal_config dir) () in
           check Alcotest.bool "torn tail counted" true
             (contains ~needle:"bxwiki_journal_torn_tail_total 1"
                (Service.metrics_text t));
           Service.close t));
    tc "fault counters appear in /metrics"
      (isolated (fun () ->
           let t = service () in
           Fault.set "service.lock.read" (Fault.Times (1, Fault.Error "injected"));
           ignore (get t "/examples:celsius");
           ignore (get t "/examples:celsius");
           let m = Service.metrics_text t in
           check Alcotest.bool "hits" true
             (contains
                ~needle:"bxwiki_fault_hits_total{site=\"service.lock.read\"} 2" m);
           check Alcotest.bool "fired" true
             (contains
                ~needle:"bxwiki_fault_fired_total{site=\"service.lock.read\"} 1" m)));
  ]

(* ------------------------------------------------------------------ *)
(* Load shedding over real sockets: a slow worker (injected read delay),
   a tiny queue, and a burst of twice the queue capacity.  The excess
   must be answered immediately with 503 + Retry-After, and /readyz must
   flip while the queue sits at its high-water mark. *)

let raw_request port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = "GET /examples:celsius HTTP/1.1\r\nConnection: close\r\n\r\n" in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Bytes.create 65536 in
      let out = Buffer.create 1024 in
      let rec drain () =
        match Unix.read sock buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes out buf 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      Buffer.contents out)

let wait_for ?(timeout = 5.0) f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

let shedding_tests =
  [
    tc "overload sheds 503 + Retry-After and flips /readyz"
      (isolated (fun () ->
           (* Each request parks its worker for 300 ms at the read seam;
              with one worker and a queue of two, a burst of 2x queue
              capacity + in-flight must shed. *)
           Fault.set "httpd.read" (Fault.Delay 0.3);
           let config =
             { Service.default_config with queue_capacity = 2 }
           in
           let t = service ~config () in
           let server =
             Thread.create
               (fun () ->
                 match Service.serve t ~port:0 ~workers:1 ~quiet:true () with
                 | Ok () -> ()
                 | Error e -> Printf.eprintf "serve: %s\n%!" e)
               ()
           in
           check Alcotest.bool "server came up" true
             (wait_for (fun () -> Service.port t <> None));
           let port = Option.get (Service.port t) in
           let n = 8 in
           let results = Array.make n "" in
           let clients =
             List.init n (fun i ->
                 Thread.create (fun () -> results.(i) <- raw_request port) ())
           in
           let flipped = wait_for (fun () -> not (Service.ready t)) in
           List.iter Thread.join clients;
           let shed, served =
             Array.fold_left
               (fun (shed, served) r ->
                 if contains ~needle:"503" r && contains ~needle:"Retry-After" r
                 then (shed + 1, served)
                 else if contains ~needle:"200" r then (shed, served + 1)
                 else (shed, served))
               (0, 0) results
           in
           check Alcotest.bool
             (Printf.sprintf "some of %d requests shed (got %d)" n shed)
             true (shed >= 1);
           check Alcotest.bool "some requests served" true (served >= 1);
           check Alcotest.bool "readyz flipped under load" true flipped;
           check Alcotest.bool "sheds counted" true
             (contains ~needle:"bxwiki_shed_total{reason=\"queue_full\"}"
                (Service.metrics_text t));
           Fault.clear ();
           check Alcotest.bool "ready again once drained" true
             (wait_for (fun () -> Service.ready t));
           Service.shutdown t;
           Thread.join server));
  ]

let () =
  Alcotest.run "bx_fault"
    [
      ("fault points", fault_tests);
      ("journal v2", journal_tests);
      ("crash torture", torture_tests);
      ("corruption", [ corruption_test ]);
      ("service faults", service_tests);
      ("shedding", shedding_tests);
    ]
