(* End-to-end integration tests: the whole system exercised together —
   seeding, curation through to approval, verification, manuscript,
   index, filesystem round trip, and cross-library flows. *)

open Bx_repo

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let or_die = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" (Registry.error_message e)

let contains ~needle hay =
  let h = String.lowercase_ascii hay and n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  let rec scan i = i + nl <= hl && (String.sub h i nl = n || scan (i + 1)) in
  nl = 0 || scan 0

(* The full life of an entry: submitted provisional, commented on,
   machine-checked, endorsed, approved, revised, cited, exported. *)
let lifecycle_test () =
  let reg = Bx_catalogue.Catalogue.seed () in
  let composers = Result.get_ok (Identifier.of_title "COMPOSERS") in
  let reviewer = Curation.account ~role:Curation.Reviewer "A Reviewer" in
  let curator = Curation.account ~role:Curation.Curator "The Curator" in

  (* 1. The paper's state: provisional, unreviewed. *)
  let t0 = or_die (Registry.latest reg composers) in
  check Alcotest.bool "starts provisional" true (Template.is_provisional t0);

  (* 2. Machine check before endorsing (the strengthened review step). *)
  let rows =
    Result.get_ok (Bx_check.Examples_check.report_for ~count:60 "COMPOSERS")
  in
  check Alcotest.bool "claims upheld" true (Bx_check.Verify.all_upheld rows);

  (* 3. Social process. *)
  or_die (Registry.comment reg ~as_:(Curation.account "m") composers
            ~text:"Checked and read; ready.");
  or_die (Registry.endorse reg ~as_:reviewer composers);
  let v1 = or_die (Registry.approve reg ~as_:curator composers) in
  check Alcotest.string "promoted" "1.0" (Version.to_string v1);

  (* 4. A revision by one of the authors, preserving reviewers. *)
  let t1 = or_die (Registry.latest reg composers) in
  let revised =
    { t1 with Template.discussion = t1.Template.discussion ^ " Revised." }
  in
  let v2 =
    or_die
      (Registry.revise reg
         ~as_:(Curation.account "Perdita Stevens")
         composers revised)
  in
  check Alcotest.string "1.1" "1.1" (Version.to_string v2);

  (* 5. Old citations still resolve; the new one pins 1.1. *)
  let c_old = or_die (Registry.cite reg ~version:Version.initial composers) in
  let c_new = or_die (Registry.cite reg composers) in
  check Alcotest.bool "old pinned" true (contains ~needle:"version 0.1" c_old);
  check Alcotest.bool "new pinned" true (contains ~needle:"version 1.1" c_new);

  (* 6. The whole registry survives the filesystem. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bx-lifecycle-%d" (Unix.getpid ()))
  in
  let rec cleanup path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun n -> cleanup (Filename.concat path n)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  cleanup dir;
  Fun.protect
    ~finally:(fun () -> cleanup dir)
    (fun () ->
      (match Store.save ~dir reg with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let reg' = Result.get_ok (Store.load ~dir ()) in
      check Alcotest.int "entries survive" (Registry.size reg)
        (Registry.size reg');
      let vs = or_die (Registry.versions reg' composers) in
      check Alcotest.(list string) "full history survives"
        [ "0.1"; "1.0"; "1.1" ]
        (List.map Version.to_string vs))

let manuscript_integration_test () =
  let reg = Bx_catalogue.Catalogue.seed () in
  let text = Manuscript.generate reg in
  (* Every catalogue title appears in the manuscript. *)
  List.iter
    (fun t ->
      check Alcotest.bool t.Template.title true
        (contains ~needle:t.Template.title text))
    (Bx_catalogue.Catalogue.all ());
  (* And the manuscript parses back as wiki markup. *)
  check Alcotest.bool "parses" true (Result.is_ok (Markup.parse text))

let index_integration_test () =
  let reg = Bx_catalogue.Catalogue.seed () in
  (* Every entry appears somewhere in the class index. *)
  let indexed =
    List.concat_map snd (Catalogue_index.by_class reg)
    |> List.map Identifier.to_string
    |> List.sort_uniq String.compare
  in
  check Alcotest.int "all entries indexed"
    (Registry.size reg)
    (List.length indexed);
  (* The three COMPOSERS variants are mutually related (shared authors or
     sources). *)
  let composers = Result.get_ok (Identifier.of_title "COMPOSERS") in
  let related =
    List.map Identifier.to_string (Catalogue_index.related reg composers)
  in
  check Alcotest.bool "boomerang related" true
    (List.mem "COMPOSERS-BOOMERANG" related)

let wiki_edit_through_sync_test () =
  (* Edit a seeded entry's page, put it back, revise the registry with
     the result, and confirm the wiki render of the new version shows the
     edit. *)
  let reg = Bx_catalogue.Catalogue.seed () in
  let id = Result.get_ok (Identifier.of_title "LINES") in
  let t = Sync.normalise (or_die (Registry.latest reg id)) in
  let lens = Sync.lens () in
  let page = lens.Bx.Lens.get t in
  let edited =
    List.map
      (function
        | Markup.Heading (2, "Overview") -> Markup.Heading (2, "Overview")
        | b -> b)
      page
  in
  let rec replace = function
    | Markup.Heading (2, "Overview") :: Markup.Para _ :: rest ->
        Markup.Heading (2, "Overview")
        :: Markup.Para [ Markup.Text "Edited on the wiki." ]
        :: rest
    | b :: rest -> b :: replace rest
    | [] -> []
  in
  let t' = lens.Bx.Lens.put (replace edited) t in
  let v =
    or_die
      (Registry.revise reg ~as_:(Curation.account "James Cheney") id t')
  in
  check Alcotest.string "revision recorded" "0.2" (Version.to_string v);
  let rendered = Sync.wiki_text (or_die (Registry.latest reg id)) in
  check Alcotest.bool "edit visible" true
    (contains ~needle:"Edited on the wiki." rendered)

let full_verification_test () =
  (* The E1 sweep once more, through the public API, smaller sample
     count to stay fast. *)
  List.iter
    (fun (title, rows) ->
      if not (Bx_check.Verify.all_upheld rows) then
        Alcotest.failf "%s:@.%a" title Bx_check.Verify.pp_report rows)
    (Bx_check.Examples_check.all_reports ~count:60 ())

let exported_pages_all_parse_test () =
  let reg = Bx_catalogue.Catalogue.seed () in
  List.iter
    (fun (path, text) ->
      match Sync.of_wiki_text text with
      | Ok t ->
          (* Re-render and re-parse: the fixpoint property. *)
          let again = Sync.wiki_text (Sync.normalise t) in
          check Alcotest.string ("fixpoint " ^ path)
            (Sync.wiki_text (Sync.normalise t))
            again
      | Error e -> Alcotest.failf "%s: %s" path e)
    (Registry.export reg)

let approve_everything_test () =
  (* Drive the whole catalogue through review to 1.0, then check the
     archival artefacts reflect it. *)
  let reg = Bx_catalogue.Catalogue.seed () in
  let reviewer = Curation.account ~role:Curation.Reviewer "External Reviewer" in
  let curator = Curation.account ~role:Curation.Curator "The Curator" in
  List.iter
    (fun id ->
      or_die (Registry.endorse reg ~as_:reviewer id);
      let v = or_die (Registry.approve reg ~as_:curator id) in
      check Alcotest.string (Identifier.to_string id) "1.0"
        (Version.to_string v))
    (Registry.ids reg);
  (* Every entry now lists its reviewer and is no longer provisional. *)
  List.iter
    (fun id ->
      let t = or_die (Registry.latest reg id) in
      check Alcotest.bool "approved" true (not (Template.is_provisional t));
      check Alcotest.bool "reviewer recorded" true
        (List.exists
           (fun c -> c.Contributor.person_name = "External Reviewer")
           t.Template.reviewers))
    (Registry.ids reg);
  (* The manuscript credits the reviewer across all entries. *)
  let credits = Manuscript.contributors reg in
  (match List.assoc_opt "External Reviewer" credits with
  | Some ids ->
      check Alcotest.int "credited everywhere" (Registry.size reg)
        (List.length ids)
  | None -> Alcotest.fail "reviewer missing from credits");
  (* Export doubles in size (two versions per entry) and re-imports. *)
  let pages = Registry.export reg in
  check Alcotest.int "three pages per entry" (3 * Registry.size reg)
    (List.length pages);
  match Registry.import pages with
  | Ok reg' ->
      List.iter
        (fun id ->
          let vs = or_die (Registry.versions reg' id) in
          check Alcotest.(list string) "history" [ "0.1"; "1.0" ]
            (List.map Version.to_string vs))
        (Registry.ids reg')
  | Error e -> Alcotest.fail e

let search_index_agree_test () =
  (* The registry search and the catalogue index answer the same
     questions; make them agree on every property claim in use. *)
  let reg = Bx_catalogue.Catalogue.seed () in
  List.iter
    (fun (claim, indexed_ids) ->
      let searched = Registry.search reg (Registry.query ~property:claim ()) in
      check
        Alcotest.(list string)
        (Bx.Properties.claim_name claim)
        (List.map Identifier.to_string indexed_ids)
        (List.map Identifier.to_string searched))
    (Catalogue_index.by_property reg)

let () =
  Alcotest.run "bx-integration"
    [
      ( "end-to-end",
        [
          tc "entry lifecycle: submit, check, endorse, approve, revise, \
              cite, persist" lifecycle_test;
          tc "manuscript collects the whole catalogue" manuscript_integration_test;
          tc "index covers every entry and relates the variants"
            index_integration_test;
          tc "a wiki edit round-trips into a new registry version"
            wiki_edit_through_sync_test;
          tc "every catalogue claim verifies (E1 sweep)" full_verification_test;
          tc "every exported page parses and re-renders to a fixpoint"
            exported_pages_all_parse_test;
          tc "the whole catalogue survives review to 1.0 with artefacts intact"
            approve_everything_test;
          tc "registry search and the index agree on every claim"
            search_index_agree_test;
        ] );
    ]
